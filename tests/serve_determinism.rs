//! Concurrency determinism: N concurrent clients hammer the TCP ingest
//! server with interleaved, duplicated, corrupted, and stale batches at
//! shard counts 1/2/4 — every run must fold to an analysis
//! byte-identical to a sequential in-process baseline over the same
//! committed batch set.

use cbi::prelude::*;
use cbi_reports::frame::{read_ack, BatchEnvelope};
use cbi_reports::wire::encode_reports;
use cbi_reports::{AckVerdict, Report};
use cbi_serve::{render_analysis, IngestCore, ServeConfig, ServerOptions, TcpIngestServer};
use std::io::Write;
use std::net::TcpStream;

const BUGGY: &str = "fn g() -> int { if (has_input() == 0) { return 0; } return read(); }\n\
     fn main() -> int { int v = g(); print(100 / v); return 0; }";

const CLIENTS: usize = 6;
const BATCH: usize = 16;

fn trials(n: usize) -> Vec<Vec<i64>> {
    (0..n)
        .map(|i| {
            if i % 11 == 0 {
                vec![]
            } else {
                vec![(i as i64 % 9) + 1]
            }
        })
        .collect()
}

struct Fixture {
    sites: cbi::instrument::SiteTable,
    /// `(client, seq, payload)` per batch.
    batches: Vec<(u64, u64, Vec<u8>)>,
    /// A payload encoded under a salted (stale) layout hash.
    stale_payload: Vec<u8>,
}

fn fixture() -> Fixture {
    let program = parse(BUGGY).unwrap();
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(2));
    let result = cbi::workloads::run_campaign(&program, &trials(600), &config).unwrap();
    let sites = result.instrumented.sites.clone();
    let hash = sites.layout_hash();
    let counters = sites.total_counters();
    let reports: Vec<Report> = result.collector.reports().to_vec();
    let batches = reports
        .chunks(BATCH)
        .enumerate()
        .map(|(i, chunk)| {
            let client = (i % CLIENTS) as u64;
            let payload = encode_reports(chunk, hash, counters).unwrap();
            (client, i as u64, payload)
        })
        .collect();
    let stale_payload = encode_reports(&reports[..4], hash ^ 0x5a5a, counters).unwrap();
    Fixture {
        sites,
        batches,
        stale_payload,
    }
}

fn config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        queue_cap: 8,
        epoch_len: 128,
        ..ServeConfig::default()
    }
}

/// Sends one envelope and reads its ack, retrying `overloaded`/`bad
/// crc` NACKs on the same attempt like a real client.
fn send(stream: &mut TcpStream, envelope: &BatchEnvelope) -> AckVerdict {
    loop {
        stream.write_all(&envelope.encode()).unwrap();
        let ack = read_ack(stream).unwrap().expect("server closed early");
        assert_eq!(ack.client, envelope.client);
        assert_eq!(ack.seq, envelope.seq);
        match ack.verdict {
            AckVerdict::Overloaded => {
                std::thread::yield_now();
                continue;
            }
            verdict => return verdict,
        }
    }
}

#[test]
fn sharded_server_matches_in_process_baseline() {
    let fx = fixture();

    // Sequential in-process baseline: same batches through the core,
    // no sockets, one shard.
    let mut core = IngestCore::new(fx.sites.clone(), config(1)).unwrap();
    for (client, seq, payload) in &fx.batches {
        let env = BatchEnvelope::new(*client, *seq, 0, payload.clone());
        assert_eq!(core.submit(None, env, true).unwrap(), AckVerdict::Accepted);
    }
    let baseline = core.finish().unwrap();
    let golden = render_analysis(&baseline.aggregator, 10);
    assert!(golden.contains("survivors:"));
    assert!(
        golden.contains("g() == 0"),
        "culprit must survive:\n{golden}"
    );

    let mut socket_snapshots = Vec::new();
    for shards in [1usize, 2, 4] {
        let core = IngestCore::new(fx.sites.clone(), config(shards)).unwrap();
        let server = TcpIngestServer::bind(
            core,
            "127.0.0.1:0",
            ServerOptions {
                acceptors: CLIENTS,
                max_clients: CLIENTS as u64,
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        // One thread per client, all concurrent: each sends its own
        // batches, re-sends every third one (duplicate after a "lost
        // ack"), and client 0 also sends a corrupted copy and a stale
        // batch.
        let mut clients = Vec::new();
        for c in 0..CLIENTS as u64 {
            let mine: Vec<(u64, u64, Vec<u8>)> = fx
                .batches
                .iter()
                .filter(|(client, _, _)| *client == c)
                .cloned()
                .collect();
            let stale = (c == 0).then(|| fx.stale_payload.clone());
            clients.push(std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut duplicates = 0u64;
                for (client, seq, payload) in &mine {
                    let env = BatchEnvelope::new(*client, *seq, 0, payload.clone());
                    assert_eq!(send(&mut stream, &env), AckVerdict::Accepted);
                    if seq % 3 == 0 {
                        // Retransmit as a later attempt: dedup must answer
                        // without re-ingesting.
                        let retry = BatchEnvelope::new(*client, *seq, 1, payload.clone());
                        assert_eq!(send(&mut stream, &retry), AckVerdict::Duplicate);
                        duplicates += 1;
                    }
                }
                if let Some(stale_payload) = stale {
                    // Corrupted envelope: damage one payload byte after
                    // encoding, so the CRC no longer matches.
                    let (client, seq, payload) = mine.last().unwrap().clone();
                    let mut bytes = BatchEnvelope::new(client, seq + 10_000, 0, payload).encode();
                    let last = bytes.len() - 1;
                    bytes[last] ^= 0xff;
                    stream.write_all(&bytes).unwrap();
                    let ack = read_ack(&mut stream).unwrap().unwrap();
                    assert_eq!(ack.verdict, AckVerdict::BadCrc);

                    // Stale layout: typed rejection tells the client to
                    // stop.
                    let stale_env = BatchEnvelope::new(client, seq + 20_000, 0, stale_payload);
                    let verdict = send(&mut stream, &stale_env);
                    assert!(verdict.is_stale(), "expected stale, got {verdict:?}");
                }
                duplicates
            }));
        }
        let duplicates: u64 = clients.into_iter().map(|t| t.join().unwrap()).sum();
        let outcome = server_thread.join().unwrap();

        assert_eq!(outcome.summary.shards, shards);
        assert_eq!(outcome.summary.connections, CLIENTS as u64);
        assert_eq!(outcome.summary.batches, fx.batches.len() as u64);
        assert_eq!(outcome.summary.duplicates, duplicates);
        assert_eq!(outcome.summary.crc_failures, 1);
        assert_eq!(outcome.summary.rejected_batches, 1);

        let rendered = render_analysis(&outcome.aggregator, 10);
        assert_eq!(
            rendered, golden,
            "shards={shards} analysis diverged from in-process baseline"
        );
        socket_snapshots.push(outcome.aggregator.snapshots().to_vec());
    }

    // Across shard counts the *full* snapshots — cohorts, rejection
    // kinds, bytes included — must be identical, not just the render.
    assert_eq!(socket_snapshots[0], socket_snapshots[1]);
    assert_eq!(socket_snapshots[0], socket_snapshots[2]);
}

#[test]
fn backpressure_sheds_with_typed_nack_and_converges() {
    let fx = fixture();
    // A tiny queue forces sheds under concurrency; clients retry on
    // `overloaded` (inside `send`), so every batch still commits and
    // the analysis is unaffected.
    let mut cfg = config(2);
    cfg.queue_cap = 1;
    let core = IngestCore::new(fx.sites.clone(), cfg).unwrap();
    let server = TcpIngestServer::bind(
        core,
        "127.0.0.1:0",
        ServerOptions {
            acceptors: CLIENTS,
            max_clients: CLIENTS as u64,
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let mut clients = Vec::new();
    for c in 0..CLIENTS as u64 {
        let mine: Vec<(u64, u64, Vec<u8>)> = fx
            .batches
            .iter()
            .filter(|(client, _, _)| *client == c)
            .cloned()
            .collect();
        clients.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for (client, seq, payload) in &mine {
                let env = BatchEnvelope::new(*client, *seq, 0, payload.clone());
                assert_eq!(send(&mut stream, &env), AckVerdict::Accepted);
            }
        }));
    }
    for t in clients {
        t.join().unwrap();
    }
    let outcome = server_thread.join().unwrap();
    assert_eq!(outcome.summary.batches, fx.batches.len() as u64);

    let mut core = IngestCore::new(fx.sites, config(1)).unwrap();
    for (client, seq, payload) in &fx.batches {
        let env = BatchEnvelope::new(*client, *seq, 0, payload.clone());
        core.submit(None, env, true).unwrap();
    }
    let baseline = core.finish().unwrap();
    assert_eq!(
        render_analysis(&outcome.aggregator, 10),
        render_analysis(&baseline.aggregator, 10)
    );
}
