//! Telemetry must observe, never perturb: campaign output is required to
//! be byte-identical with telemetry on or off, and at any `--jobs` level.
//!
//! Telemetry state is process-global, so these tests serialize through a
//! mutex rather than relying on test-runner ordering.

use cbi::prelude::*;
use cbi::workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

fn campaign_jsonl(jobs: usize, telemetry_on: bool) -> Vec<u8> {
    if telemetry_on {
        cbi::telemetry::reset();
        cbi::telemetry::enable();
    }
    let program = ccrypt_program();
    let trials = ccrypt_trials(240, 9001, &CcryptTrialConfig::default());
    let mut config =
        CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(13)).with_jobs(jobs);
    config.seed = 77;
    let result = run_campaign(&program, &trials, &config).expect("campaign");
    if telemetry_on {
        cbi::telemetry::disable();
    }
    let mut wire = Vec::new();
    result.collector.write_jsonl(&mut wire).expect("serialize");
    wire
}

#[test]
fn collector_output_is_identical_with_telemetry_on_or_off() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let off = campaign_jsonl(1, false);
    let on = campaign_jsonl(1, true);
    let metrics = cbi::telemetry::collect();
    assert_eq!(off, on, "telemetry recording changed campaign output");
    // And the recording actually happened: the run left real measurements.
    assert!(metrics.counter("vm.runs") > 0);
    assert!(metrics.counter("campaign.trials") > 0);
}

#[test]
fn collector_output_is_identical_across_job_counts_with_telemetry_on() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let serial = campaign_jsonl(1, true);
    cbi::telemetry::collect(); // drain between runs
    let parallel = campaign_jsonl(4, true);
    let metrics = cbi::telemetry::collect();
    assert_eq!(
        serial, parallel,
        "job count changed campaign output under telemetry"
    );
    // Four logical workers each executed at least one shard.
    for worker in 1..=4u32 {
        assert!(
            metrics.worker_counter(worker, "campaign.trials") > 0,
            "worker {worker} recorded no trials"
        );
    }
}

#[test]
fn metrics_capture_is_internally_consistent() {
    let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let _ = campaign_jsonl(2, true);
    let m = cbi::telemetry::collect();

    // Every trial ran exactly one VM execution; per-worker trial counts
    // sum to the global counter.
    assert_eq!(m.counter("vm.runs"), m.counter("campaign.trials"));
    let per_worker: u64 = m
        .per_worker
        .values()
        .map(|c| c.get("campaign.trials").copied().unwrap_or(0))
        .sum();
    assert_eq!(per_worker, m.counter("campaign.trials"));

    // Phase spans cover the campaign; the ops histogram matches vm.ops.
    assert!(m.span_total_ns("campaign.execute") > 0);
    assert!(m.span_total_ns("campaign.merge") > 0);
    let h = m.histogram("vm.ops_per_run").expect("ops histogram");
    assert_eq!(h.count, m.counter("vm.runs"));
    assert_eq!(h.sum, m.counter("vm.ops"));
}
