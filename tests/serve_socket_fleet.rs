//! The fleet over a real socket: a heterogeneous community (mixed
//! densities, variants, stale binaries) on a faulty channel with lost
//! acks, driven against the TCP ingest server — the server's analysis
//! must be byte-identical to the in-memory channel fold at any shard
//! count, and the channel accounting must match coin for coin.

use cbi_fleet::{run_fleet, run_fleet_over_socket, ChannelSpec, FleetSpec, SocketOptions};
use cbi_serve::{render_analysis, IngestCore, ServeConfig, ServerOptions, TcpIngestServer};

const RARE: &str = "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
     fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }";

fn pool(n: usize) -> Vec<Vec<i64>> {
    (0..n as i64).map(|i| vec![i * 7 + 1]).collect()
}

fn spec() -> FleetSpec {
    let mut s = FleetSpec::new(10, 400);
    s.densities = vec![(2, 1.0)];
    s.batch_size = 8;
    s.epoch_len = 64;
    s.variant_fraction = 0.3;
    s.stale_fraction = 0.25;
    s.channel = ChannelSpec {
        drop: 0.2,
        truncate: 0.15,
        bit_flip: 0.1,
        max_retries: 3,
        backoff_base: 2,
    };
    s
}

#[test]
fn socket_fleet_matches_in_memory_fold_at_any_shard_count() {
    let program = cbi_minic::parse(RARE).unwrap();
    let inputs = pool(48);
    let spec = spec();

    // In-memory reference: the channel fold run_fleet has always done.
    let memory = run_fleet(&program, &inputs, &spec, None).unwrap();
    let golden = render_analysis(&memory.aggregator, 10);
    assert!(memory.summary.lost_batches > 0, "channel must bite");
    assert!(memory.summary.stale_batches > 0, "community must be mixed");

    // The server is configured with the same instrumented layout the
    // fleet derives for itself.
    let sites = cbi_instrument::instrument(&program, spec.scheme)
        .unwrap()
        .sites;

    for shards in [1usize, 4] {
        let config = ServeConfig {
            shards,
            epoch_len: spec.epoch_len,
            ..ServeConfig::default()
        };
        let core = IngestCore::new(sites.clone(), config).unwrap();
        let server = TcpIngestServer::bind(
            core,
            "127.0.0.1:0",
            ServerOptions {
                acceptors: 4,
                max_clients: spec.clients as u64,
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || server.run().unwrap());

        let options = SocketOptions {
            ack_drop: 0.35,
            streams: 4,
        };
        let socket = run_fleet_over_socket(&program, &inputs, &spec, addr, &options).unwrap();
        let outcome = server_thread.join().unwrap();

        // The committed set is coin-for-coin the in-memory one.
        assert_eq!(socket.batches, memory.summary.batches);
        assert_eq!(socket.delivered_batches, memory.summary.accepted_batches);
        assert_eq!(socket.lost_batches, memory.summary.lost_batches);
        assert_eq!(socket.stale_batches, memory.summary.stale_batches);
        assert_eq!(
            socket.rejected_deliveries,
            memory.summary.rejected_deliveries
        );
        assert_eq!(socket.retries, memory.summary.retries);
        assert_eq!(socket.backoff_ticks, memory.summary.backoff_ticks);
        assert_eq!(socket.bytes_sent, memory.summary.bytes_sent);
        assert_eq!(socket.spooled_reports, memory.summary.spooled_reports);
        // Every seeded lost ack produced exactly one idempotent
        // duplicate answer; nothing else did.
        assert!(socket.ack_retransmits > 0, "ack_drop=0.35 must fire");
        assert_eq!(socket.duplicate_acks, socket.ack_retransmits);
        assert_eq!(socket.dead_clients, 0);
        assert_eq!(socket.reconnects, 0);

        // Server-side ledger agrees.
        assert_eq!(outcome.summary.connections, spec.clients as u64);
        assert_eq!(outcome.summary.batches, memory.summary.accepted_batches);
        assert_eq!(outcome.summary.duplicates, socket.duplicate_acks);
        assert_eq!(
            outcome.summary.rejected_batches,
            memory.summary.rejected_deliveries
        );

        // And the analysis is byte-identical to the in-memory fold.
        let rendered = render_analysis(&outcome.aggregator, 10);
        assert_eq!(
            rendered, golden,
            "shards={shards}: socket fleet diverged from the in-memory fold"
        );

        // The render itself is seed-pure, so it can be golden-diffed.
        assert!(!socket.render().contains('.'), "integers only");
    }
}
