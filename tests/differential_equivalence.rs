//! Differential tests over randomly generated MiniC programs: the whole
//! instrumentation/sampling stack must be semantically transparent,
//! sampled observation counts must stay within the unconditional
//! envelope, and the slot-resolved engine must agree with the name-map
//! reference engine end to end.
//!
//! Driven by `cbi-testgen`'s seeded generator, so every failing case is
//! reproducible from its seed.

use cbi::prelude::*;
use cbi_testgen::program_for_seed;
use cbi_vm::Engine;

const CASES: u64 = 48;

fn run_plain(program: &cbi::minic::Program) -> Vec<i64> {
    let r = Vm::new(program).run().expect("vm config");
    assert!(
        r.outcome.is_success(),
        "generated program must run clean, got {:?}",
        r.outcome
    );
    r.output
}

/// Sampling never changes what the program computes — for every scheme,
/// at multiple densities.
#[test]
fn transformed_programs_compute_identically() {
    for seed in 0..CASES {
        let p = program_for_seed(seed);
        let expected = run_plain(&p);
        for scheme in [
            Scheme::Checks,
            Scheme::Returns,
            Scheme::ScalarPairs,
            Scheme::Branches,
        ] {
            let inst = instrument(&p, scheme).expect("instrument");

            // Unconditional build.
            let r = Vm::new(&inst.program)
                .with_sites(&inst.sites)
                .run()
                .expect("vm config");
            assert!(
                r.outcome.is_success(),
                "seed {seed} {scheme}: {:?}",
                r.outcome
            );
            assert_eq!(&r.output, &expected, "seed {seed} unconditional {scheme}");

            // Sampled build.
            let (sampled, _) =
                apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
            for density in [1u64, 3, 50] {
                let r = Vm::new(&sampled)
                    .with_sites(&inst.sites)
                    .with_sampling(Box::new(Geometric::new(
                        SamplingDensity::one_in(density),
                        seed,
                    )))
                    .run()
                    .expect("vm config");
                assert!(
                    r.outcome.is_success(),
                    "seed {seed} {scheme} 1/{density}: {:?}",
                    r.outcome
                );
                assert_eq!(
                    &r.output, &expected,
                    "seed {seed} sampled {scheme} 1/{density}"
                );
            }
        }
    }
}

/// Sampled counters are bounded by unconditional counters, and at
/// density 1 the sampled build observes exactly what the unconditional
/// build observes.
#[test]
fn sampled_counts_within_unconditional_envelope() {
    for seed in 0..CASES {
        let p = program_for_seed(seed);
        let inst = instrument(&p, Scheme::Checks).expect("instrument");
        let uncond = Vm::new(&inst.program)
            .with_sites(&inst.sites)
            .run()
            .expect("vm config");

        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");

        let always = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::always(), seed)))
            .run()
            .expect("vm config");
        assert_eq!(
            &always.counters, &uncond.counters,
            "seed {seed}: density 1 must observe everything"
        );

        let sparse = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(10), seed)))
            .run()
            .expect("vm config");
        for (i, (&s, &u)) in sparse.counters.iter().zip(&uncond.counters).enumerate() {
            assert!(
                s <= u,
                "seed {seed} counter {i}: sampled {s} > unconditional {u}"
            );
        }
    }
}

/// Transformation options never change semantics, only cost.
#[test]
fn all_transform_variants_agree() {
    use cbi::instrument::CountdownStorage;
    for seed in 0..CASES {
        let p = program_for_seed(seed);
        let expected = run_plain(&p);
        let inst = instrument(&p, Scheme::Checks).expect("instrument");
        let variants = [
            TransformOptions::default(),
            TransformOptions {
                coalesce: false,
                ..TransformOptions::default()
            },
            TransformOptions {
                countdown: CountdownStorage::Global,
                ..TransformOptions::default()
            },
            TransformOptions {
                regions: false,
                ..TransformOptions::default()
            },
            TransformOptions {
                interprocedural: false,
                ..TransformOptions::default()
            },
        ];
        for (vi, options) in variants.iter().enumerate() {
            let (sampled, _) = apply_sampling(&inst.program, options).expect("transform");
            let r = Vm::new(&sampled)
                .with_sites(&inst.sites)
                .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(7), 3)))
                .run()
                .expect("vm config");
            assert!(
                r.outcome.is_success(),
                "seed {seed} variant {vi}: {:?}",
                r.outcome
            );
            assert_eq!(&r.output, &expected, "seed {seed} variant {vi}");
        }
    }
}

/// The pretty-printed transformed program re-parses and still computes
/// the same results — the transformation emits genuine MiniC.
#[test]
fn transformed_source_is_real_minic() {
    for seed in 0..CASES {
        let p = program_for_seed(seed);
        let expected = run_plain(&p);
        let inst = instrument(&p, Scheme::Returns).expect("instrument");
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        let reparsed = parse(&pretty(&sampled)).expect("transformed source parses");
        cbi::minic::resolve_relaxed(&reparsed).expect("transformed source resolves");
        let r = Vm::new(&reparsed)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(5), 11)))
            .run()
            .expect("vm config");
        assert_eq!(&r.output, &expected, "seed {seed}");
    }
}

/// The full sampled pipeline produces identical reports under both
/// interpreter engines: lowering to slots is invisible to the analyses.
#[test]
fn slot_engine_is_transparent_through_the_pipeline() {
    for seed in 0..CASES {
        let p = program_for_seed(seed);
        let inst = instrument(&p, Scheme::ScalarPairs).expect("instrument");
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        let slots = cbi::minic::lower(&sampled);

        let reference = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(3), seed)))
            .with_engine(Engine::NameMap)
            .run()
            .expect("vm config");
        let fast = Vm::from_slots(&slots)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(3), seed)))
            .run()
            .expect("vm config");
        assert_eq!(reference, fast, "seed {seed}");
    }
}
