//! Seeded differential fuzzing of the bytecode dispatch engine against
//! the slot-resolved walker: over random generated programs, every
//! scheme, and a density sweep, the two engines must produce bit-equal
//! [`cbi_vm::RunResult`]s — outcome, op count, counters, output, trace.
//!
//! Trap behaviour is fuzzed separately with handwritten programs that
//! crash in every category (the generator only emits clean programs).

use cbi::prelude::*;
use cbi_testgen::program_for_seed;

const CASES: u64 = 48;

fn run_both(
    label: &str,
    program: &Program,
    sites: Option<&SiteTable>,
    density: Option<(u64, u64)>,
    input: &[i64],
) {
    let slots = cbi::minic::lower(program);
    let bytecode = cbi_vm::bytecode::compile(&slots);

    let mut slot_vm = Vm::from_slots(&slots);
    let mut bc_vm = Vm::from_bytecode(&bytecode);
    for vm in [&mut slot_vm, &mut bc_vm] {
        vm.with_input(input.to_vec()).with_trace(16);
        if let Some(t) = sites {
            vm.with_sites(t);
        }
        if let Some((d, seed)) = density {
            vm.with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(d), seed)));
        }
    }

    let s = slot_vm.run().expect("slot vm config");
    let b = bc_vm.run().expect("bytecode vm config");
    assert_eq!(s, b, "{label}: bytecode engine diverged from slot engine");
}

#[test]
fn generated_programs_agree_across_schemes_and_densities() {
    for seed in 0..CASES {
        let p = program_for_seed(seed);
        run_both(&format!("seed {seed} plain"), &p, None, None, &[]);
        for scheme in [
            Scheme::Checks,
            Scheme::Returns,
            Scheme::ScalarPairs,
            Scheme::Branches,
        ] {
            let inst = instrument(&p, scheme).expect("instrument");
            run_both(
                &format!("seed {seed} {scheme} unconditional"),
                &inst.program,
                Some(&inst.sites),
                None,
                &[],
            );
            let (sampled, _) =
                apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
            for density in [1u64, 7, 100] {
                run_both(
                    &format!("seed {seed} {scheme} 1/{density}"),
                    &sampled,
                    Some(&inst.sites),
                    Some((density, seed)),
                    &[],
                );
            }
        }
    }
}

#[test]
fn trap_programs_agree() {
    // One program per crash category, plus type errors that only dynamic
    // (unresolved) programs can reach.  Both engines must produce the
    // same outcome, op count, and partial output.
    let cases: &[(&str, &str)] = &[
        ("null_deref", "fn main() -> int { ptr p = null; return p[0]; }"),
        ("div_zero", "fn main() -> int { int a = read(); return 10 / (a - a); }"),
        ("mod_zero", "fn main() -> int { return 3 % 0; }"),
        (
            "oob_store",
            "fn main() -> int { ptr p = alloc(2); p[57] = 1; free(p); return 0; }",
        ),
        (
            "use_after_free",
            "fn main() -> int { ptr p = alloc(4); free(p); return p[0]; }",
        ),
        (
            "double_free",
            "fn main() -> int { ptr p = alloc(4); free(p); free(p); return 0; }",
        ),
        (
            "index_non_pointer",
            "fn main() -> int { int a = 4; print(1); return a[0]; }",
        ),
        (
            "store_non_pointer",
            "fn main() -> int { int a = 4; a[1] = 2; return 0; }",
        ),
        (
            "ptr_arith_mismatch",
            "fn main() -> int { ptr p = alloc(2); ptr q = alloc(2); int d = p - q; free(p); free(q); return d; }",
        ),
        (
            "compare_ptr_int",
            "fn main() -> int { ptr p = alloc(1); if (p < 3) { print(1); } free(p); return 0; }",
        ),
        (
            "exit_mid_loop",
            "fn main() -> int { int i = 0; while (1) { i = i + 1; if (i > 3) { exit(42); } } return 0; }",
        ),
        (
            "explicit_exit_code",
            "fn main() -> int { print(9); exit(7); return 0; }",
        ),
        (
            "free_non_pointer",
            "fn main() -> int { free(12); return 0; }",
        ),
        (
            "len_null",
            "fn main() -> int { return len(null); }",
        ),
        (
            "logical_non_int",
            "fn main() -> int { ptr p = alloc(1); if (p && 1) { print(1); } free(p); return 0; }",
        ),
        (
            "unary_non_int",
            "fn main() -> int { return -null; }",
        ),
        (
            "deferred_obs_arg_error",
            // `__cmp` evaluates every argument and reports the first
            // error afterwards: the print side effect must land even
            // though the middle argument crashed.
            "fn boom() -> int { return 1 / 0; } fn main() -> int { __cmp(0, boom(), print(5)); return 0; }",
        ),
        (
            "deferred_obs_both_error",
            "fn main() -> int { ptr p = null; __cmp(0, p[0], p[1]); return 0; }",
        ),
        (
            "obs_sign_arg_error",
            "fn main() -> int { __obs_sign(0, 1 / 0); print(3); return 0; }",
        ),
    ];
    for (name, src) in cases {
        let program = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        run_both(name, &program, None, None, &[3, 1]);
    }
}

#[test]
fn stack_overflow_agrees() {
    // Depth-limited rather than default: the debug-build walker eats
    // far more Rust stack per MiniC frame than the test thread has at
    // the 256-frame default, while the bytecode engine never recurses.
    let src = "fn f(int n) -> int { return f(n + 1); } fn main() -> int { return f(0); }";
    let program = parse(src).expect("parse");
    let slots = cbi::minic::lower(&program);
    let bytecode = cbi_vm::bytecode::compile(&slots);
    for depth in [1usize, 2, 64] {
        let s = Vm::from_slots(&slots)
            .with_max_depth(depth)
            .run()
            .expect("vm config");
        let b = Vm::from_bytecode(&bytecode)
            .with_max_depth(depth)
            .run()
            .expect("vm config");
        assert_eq!(s, b, "depth {depth}");
        assert!(
            matches!(
                s.outcome,
                RunOutcome::Crash(cbi_vm::CrashKind::StackOverflow)
            ),
            "depth {depth}: {:?}",
            s.outcome
        );
    }
}

#[test]
fn op_limit_aborts_agree_on_outcome() {
    // Charge fusion may alter the exact op count of a run that dies at
    // the limit (the fused charge lands at once where the walker trickles
    // it), but the outcome and everything the pipeline consumes must
    // match.
    let src = "fn main() -> int { int i = 0; while (1) { i = i + 1; } return 0; }";
    let program = parse(src).expect("parse");
    let slots = cbi::minic::lower(&program);
    let bytecode = cbi_vm::bytecode::compile(&slots);
    for limit in [10u64, 1_000, 54_321] {
        let s = Vm::from_slots(&slots)
            .with_op_limit(limit)
            .run()
            .expect("vm config");
        let b = Vm::from_bytecode(&bytecode)
            .with_op_limit(limit)
            .run()
            .expect("vm config");
        assert_eq!(s.outcome, b.outcome, "limit {limit}");
        assert_eq!(s.counters, b.counters, "limit {limit}");
        assert_eq!(s.output, b.output, "limit {limit}");
    }
}

#[test]
fn dynamic_name_semantics_agree() {
    // Unchecked programs lean on dynamic lookup: use-before-declaration,
    // locals shadowing globals only after their declaration executes,
    // undefined variables and functions.  `resolve` would reject these;
    // the engines must trap (or not) identically.
    let cases: &[(&str, &str)] = &[
        (
            "use_before_decl",
            "fn main() -> int { print(x); int x = 3; return 0; }",
        ),
        (
            "shadow_after_decl",
            "int g = 10; fn main() -> int { print(g); int g = 1; print(g); return 0; }",
        ),
        (
            "assign_before_decl",
            "fn main() -> int { x = 5; int x = 1; return 0; }",
        ),
        (
            "undefined_function",
            "fn main() -> int { print(1); return nope(3); }",
        ),
        (
            "undefined_global_write",
            "int g = 1; fn main() -> int { h = 2; return 0; }",
        ),
        (
            "arity_mismatch_extra",
            "fn f(int a) -> int { return a; } fn main() -> int { return f(1, 2, 3); }",
        ),
        (
            "arity_mismatch_missing",
            "fn f(int a, int b) -> int { return b; } fn main() -> int { return f(1); }",
        ),
    ];
    for (name, src) in cases {
        let program = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        run_both(name, &program, None, None, &[]);
    }
}
