//! Compiler edge cases: shapes that stress jump patching, charge fusion,
//! and the dual fast/slow block cloning — empty blocks, dead branches,
//! deeply nested regions, and the forward jumps the sampling
//! transformation's cloned blocks compile into.  Each case must (a)
//! execute identically on the slot walker and the bytecode engine, and
//! (b) compile to structurally valid code: every jump target resolved
//! and inside the owning function's body.

use cbi::prelude::*;
use cbi_vm::bytecode::{BcProgram, Op};

fn check_jump_targets(label: &str, bc: &BcProgram) {
    for f in &bc.functions {
        for pc in f.entry..f.end {
            let target = match bc.ops[pc as usize] {
                Op::Jump(t)
                | Op::BranchFalse(t)
                | Op::BranchTrue(t)
                | Op::DeferPush(t)
                | Op::DeferNext(t)
                | Op::CdBranch { els: t, .. }
                | Op::SynthCheck { els: t, .. }
                | Op::FusedBr { target: t, .. }
                | Op::FusedBinJ { target: t, .. }
                | Op::CdGate { els: t, .. } => t,
                _ => continue,
            };
            assert_ne!(target, u32::MAX, "{label}: unpatched jump at {pc}");
            assert!(
                target >= f.entry && target <= f.end,
                "{label}: jump at {pc} escapes fn `{}` ({target} not in {}..={})",
                f.name,
                f.entry,
                f.end
            );
        }
    }
}

fn compile_and_compare(label: &str, src: &str, input: &[i64]) -> BcProgram {
    let program = parse(src).unwrap_or_else(|e| panic!("{label}: {e}"));
    let slots = cbi::minic::lower(&program);
    let bc = cbi_vm::bytecode::compile(&slots);
    check_jump_targets(label, &bc);
    let s = Vm::from_slots(&slots)
        .with_input(input.to_vec())
        .run()
        .expect("slot vm config");
    let b = Vm::from_bytecode(&bc)
        .with_input(input.to_vec())
        .run()
        .expect("bytecode vm config");
    assert_eq!(s, b, "{label}: engines diverged");
    bc
}

#[test]
fn empty_blocks() {
    compile_and_compare(
        "empty function body",
        "fn nop() { } fn main() -> int { nop(); return 0; }",
        &[],
    );
    compile_and_compare(
        "empty if arms",
        "fn main() -> int { if (read()) { } else { } return 0; }",
        &[1],
    );
    compile_and_compare(
        "empty while body",
        "fn main() -> int { while (has_input()) { read(); } while (0) { } return 0; }",
        &[1, 2, 3],
    );
}

#[test]
fn dead_branches() {
    // Constant conditions leave one arm dead; the dead code still
    // compiles (jump targets must resolve through it) but never runs.
    compile_and_compare(
        "dead else",
        "fn main() -> int { if (1) { print(1); } else { print(2); } return 0; }",
        &[],
    );
    compile_and_compare(
        "dead then",
        "fn main() -> int { if (0) { print(1); } else { print(2); } return 0; }",
        &[],
    );
    compile_and_compare(
        "dead while with break and continue",
        "fn main() -> int { while (0) { if (read()) { break; } continue; } return 7; }",
        &[],
    );
    compile_and_compare(
        "code after return",
        "fn f() -> int { return 1; print(99); return 2; } fn main() -> int { print(f()); return 0; }",
        &[],
    );
}

#[test]
fn deeply_nested_regions() {
    // Build a 24-deep nest of if/while blocks; every level past the
    // region threshold gets its own countdown import/export pair under
    // sampling, so this stresses nested fast/slow block cloning.
    let mut body = String::from("int acc = 0; int i = 0;");
    for d in 0..24 {
        body.push_str(&format!(
            "if (n > {d}) {{ int v{d} = n - {d}; acc = acc + v{d}; while (i < {d}) {{ i = i + 1; "
        ));
    }
    body.push_str("acc = acc + 1;");
    for _ in 0..24 {
        body.push_str("} }");
    }
    body.push_str("print(acc); return acc;");
    let src =
        format!("fn work(int n) -> int {{ {body} }} fn main() -> int {{ return work(read()); }}");

    let program = parse(&src).expect("nested source parses");
    for scheme in [Scheme::Checks, Scheme::Branches] {
        let inst = instrument(&program, scheme).expect("instrument");
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        let slots = cbi::minic::lower(&sampled);
        let bc = cbi_vm::bytecode::compile(&slots);
        check_jump_targets(&format!("nested {scheme}"), &bc);
        for density in [1u64, 5, 500] {
            let mk = |use_bc: bool| {
                let mut vm = if use_bc {
                    Vm::from_bytecode(&bc)
                } else {
                    Vm::from_slots(&slots)
                };
                vm.with_sites(&inst.sites)
                    .with_input(vec![30i64])
                    .with_sampling(Box::new(Geometric::new(
                        SamplingDensity::one_in(density),
                        0xfeed,
                    )));
                vm.run().expect("vm config")
            };
            let s = mk(false);
            let b = mk(true);
            assert_eq!(s, b, "nested {scheme} 1/{density}: engines diverged");
            assert!(s.outcome.is_success(), "nested {scheme}: {:?}", s.outcome);
        }
    }
}

#[test]
fn forward_jumps_across_cloned_blocks() {
    // The sampling transformation clones instrumented regions into a
    // site-stripped fast block and a live slow block behind a threshold
    // test.  Control flow that jumps forward across the clone boundary —
    // break/continue/return from inside an instrumented loop body — must
    // patch to targets inside the selected clone.
    let src = "
        fn scan(ptr data, int n) -> int {
            int hits = 0;
            int i = 0;
            while (i < n) {
                int v = data[i];
                if (v < 0) { i = i + 1; continue; }
                if (v > 90) { break; }
                hits = hits + v;
                i = i + 1;
            }
            return hits;
        }
        fn main() -> int {
            int n = read();
            ptr data = alloc(n);
            int i = 0;
            while (i < n) { data[i] = read(); i = i + 1; }
            print(scan(data, n));
            free(data);
            return 0;
        }";
    let program = parse(src).expect("parse");
    let input = [6i64, 4, -2, 9, 95, 3, 1];
    for scheme in [
        Scheme::Checks,
        Scheme::Returns,
        Scheme::ScalarPairs,
        Scheme::Branches,
    ] {
        let inst = instrument(&program, scheme).expect("instrument");
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        let slots = cbi::minic::lower(&sampled);
        let bc = cbi_vm::bytecode::compile(&slots);
        check_jump_targets(&format!("cloned {scheme}"), &bc);
        let s = Vm::from_slots(&slots)
            .with_sites(&inst.sites)
            .with_input(&input[..])
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(2), 1)))
            .run()
            .expect("vm config");
        let b = Vm::from_bytecode(&bc)
            .with_sites(&inst.sites)
            .with_input(&input[..])
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(2), 1)))
            .run()
            .expect("vm config");
        assert_eq!(s, b, "cloned {scheme}: engines diverged");
    }
}

#[test]
fn whole_corpus_compiles_structurally_valid() {
    use cbi::workloads::{BC_SOURCE, BENCHMARK_SOURCES, CCRYPT_SOURCE};
    let mut sources: Vec<(String, String)> = BENCHMARK_SOURCES
        .iter()
        .map(|(n, s)| (n.to_string(), s.to_string()))
        .collect();
    sources.push(("ccrypt".into(), CCRYPT_SOURCE.into()));
    sources.push(("bc".into(), BC_SOURCE.into()));
    for (name, src) in sources {
        let program = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for scheme in [Scheme::Checks, Scheme::Branches] {
            let inst = instrument(&program, scheme).expect("instrument");
            let (sampled, _) =
                apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
            let bc = cbi_vm::bytecode::compile(&cbi::minic::lower(&sampled));
            check_jump_targets(&format!("{name} {scheme}"), &bc);
            // Fused countdown specs must all be referenced in-range.
            for op in &bc.ops {
                if let Op::CdDecl(s)
                | Op::CdCopy(s)
                | Op::CdUpdate(s)
                | Op::CdRefill(s)
                | Op::CdBranch { spec: s, .. } = op
                {
                    assert!(
                        (*s as usize) < bc.specs.len(),
                        "{name} {scheme}: dangling spec index {s}"
                    );
                }
            }
        }
    }
}

#[test]
fn charge_fusion_folds_adjacent_charges() {
    // `return 1 + 2;` walks five charge points (stmt, add, both leaves —
    // and the surrounding statement); fused they collapse into a single
    // Stmt op, so no two charge ops may ever be adjacent.
    let src = "fn main() -> int { return 1 + 2; }";
    let bc = cbi_vm::bytecode::compile(&cbi::minic::lower(&parse(src).expect("parse")));
    let is_charge = |op: &Op| matches!(op, Op::Charge(_) | Op::Stmt(_));
    for w in bc.ops.windows(2) {
        assert!(
            !(is_charge(&w[0]) && is_charge(&w[1])),
            "adjacent charge ops survived fusion: {:?}",
            w
        );
    }
    let main = &bc.functions[bc.main.expect("main") as usize];
    let Op::FusedBin(s) = bc.ops[main.entry as usize] else {
        panic!(
            "statement must fuse into a single superinstruction, got {:?}",
            bc.ops[main.entry as usize]
        );
    };
    let sp = bc.bins[s as usize];
    assert!(sp.stmt, "the fused op carries the statement head");
    // stmt(1) + the add node + its first leaf fold; the second leaf's
    // charge rides between the fused operands.
    assert_eq!(sp.chg_a, 3, "statement head absorbs the leading charges");
    assert_eq!(sp.chg_b, 1, "the right leaf's charge keeps its position");
}
