//! The remote-collection data path (§2.5, §5): reports serialize across
//! the "network", the collector aggregates them, and the sufficient-
//! statistics accumulator supports the same analyses without retaining raw
//! traces.

use cbi::prelude::*;
use cbi::stats::elimination::{apply, Strategy};
use cbi::workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};

fn small_campaign() -> CampaignResult {
    let program = ccrypt_program();
    let trials = ccrypt_trials(400, 17, &CcryptTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(20));
    run_campaign(&program, &trials, &config).expect("campaign")
}

#[test]
fn reports_survive_the_wire_format() {
    let result = small_campaign();
    let mut wire = Vec::new();
    result.collector.write_jsonl(&mut wire).expect("serialize");
    let back = Collector::read_jsonl(wire.as_slice()).expect("deserialize");
    assert_eq!(back.reports(), result.collector.reports());
    assert_eq!(back.failure_count(), result.collector.failure_count());
}

#[test]
fn sufficient_statistics_reproduce_elimination_results() {
    // Privacy path (§5): fold every report into aggregates, discard the
    // raw traces, and verify every elimination strategy gives identical
    // answers to the raw-report path.
    let result = small_campaign();
    let groups = result.site_groups();

    let from_raw: SufficientStats = result.collector.reports().iter().cloned().collect();

    // Simulate two collection servers, each discarding traces on arrival,
    // merged at analysis time.
    let mut server_a = SufficientStats::new(result.collector.counter_count());
    let mut server_b = SufficientStats::new(result.collector.counter_count());
    for (i, r) in result.collector.reports().iter().enumerate() {
        if i % 2 == 0 {
            server_a.update(r);
        } else {
            server_b.update(r);
        }
    }
    server_a.merge(&server_b);

    for strategy in [
        Strategy::UniversalFalsehood,
        Strategy::LackOfFailingCoverage,
        Strategy::LackOfFailingExample,
        Strategy::SuccessfulCounterexample,
    ] {
        assert_eq!(
            apply(&from_raw, strategy, &groups),
            apply(&server_a, strategy, &groups),
            "strategy {strategy} disagrees between raw and merged sufficient stats"
        );
    }
}

#[test]
fn report_size_is_independent_of_run_length() {
    // §2.5: "maintaining a vector of counters produces data for an
    // execution whose size is largely independent of the sampling density
    // or running time."
    let result = small_campaign();
    let sizes: Vec<usize> = result
        .collector
        .reports()
        .iter()
        .map(|r| r.counters.len())
        .collect();
    assert!(!sizes.is_empty());
    assert!(
        sizes.windows(2).all(|w| w[0] == w[1]),
        "all reports must have the same counter count"
    );
}

#[test]
fn collector_counts_match_labels() {
    let result = small_campaign();
    let successes = result.collector.with_label(Label::Success).count();
    let failures = result.collector.with_label(Label::Failure).count();
    assert_eq!(successes, result.collector.success_count());
    assert_eq!(failures, result.collector.failure_count());
    assert_eq!(successes + failures, result.collector.len());
}
