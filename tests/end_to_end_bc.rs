//! End-to-end reproduction of the bc case study (§3.3) at test scale.

use cbi::prelude::*;
use cbi::workloads::{bc_program, bc_trials, BcTrialConfig};
use cbi::RegressionConfig;

fn campaign(runs: usize, seed: u64, density: SamplingDensity) -> CampaignResult {
    let program = bc_program();
    let trials = bc_trials(runs, seed, &BcTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::ScalarPairs, density);
    run_campaign(&program, &trials, &config).expect("campaign")
}

#[test]
fn crash_rate_is_roughly_one_in_four() {
    let result = campaign(800, 106, SamplingDensity::one_in(100));
    let rate = result.collector.failure_count() as f64 / result.collector.len() as f64;
    assert!(
        (0.15..0.40).contains(&rate),
        "bc crash rate {rate} out of band (paper: ~0.25)"
    );
}

#[test]
fn regression_points_at_the_buggy_zeroing_loop() {
    let result = campaign(1500, 106, SamplingDensity::one_in(20));
    let study = cbi::regress(&result, &RegressionConfig::paper_proportions(1500)).unwrap();

    // The top-ranked predicates must implicate `indx` inside more_arrays.
    let top = study.top(3);
    assert!(!top.is_empty());
    for (name, _) in top {
        assert!(
            name.contains("more_arrays") && name.contains("indx"),
            "top predicate not at the buggy loop: {name} (top: {:?})",
            study.top(5)
        );
    }
    // The model actually predicts crashes.
    assert!(
        study.test_accuracy > 0.7,
        "test accuracy {}",
        study.test_accuracy
    );
}

#[test]
fn smoking_gun_is_present_but_not_first() {
    // §3.3.3: `indx > a_count` corresponds to a sampled predicate but was
    // ranked 240th, behind the redundant cluster.
    let result = campaign(1500, 106, SamplingDensity::one_in(20));
    let study = cbi::regress(&result, &RegressionConfig::paper_proportions(1500)).unwrap();
    let rank = study
        .rank_of("indx > a_count")
        .expect("smoking gun must be a sampled feature");
    assert!(rank > 0, "paper found the literal predicate NOT top-ranked");
}

#[test]
fn overrun_runs_sometimes_get_lucky() {
    // §3.3.3: "out of 320 runs in which sampling spotted indx > a_count at
    // least once, 66 did not crash."  Verify both populations exist using
    // unconditional instrumentation (which observes every crossing).
    let program = bc_program();
    let trials = bc_trials(600, 31, &BcTrialConfig::default());
    let result = run_campaign(
        &program,
        &trials,
        &CampaignConfig::unconditional(Scheme::ScalarPairs),
    )
    .expect("campaign");

    // Find the `indx > a_count` counters; several sites share the text
    // (one per assignment to indx) — the zeroing-loop increment is the one
    // that fires during an overrun, so a run "spotted the overrun" when
    // any of them recorded `>`.
    let counters: Vec<usize> = result
        .instrumented
        .sites
        .iter()
        .filter(|s| s.function == "more_arrays" && s.text == "indx\u{1}a_count")
        .map(|s| s.counter_base + 2) // the `>` slot of the lt/eq/gt triple
        .collect();
    assert!(!counters.is_empty(), "sites exist");

    let mut overrun_crashed = 0;
    let mut overrun_lucky = 0;
    for r in result.collector.reports() {
        if counters.iter().any(|&c| r.counters[c] > 0) {
            match r.label {
                Label::Failure => overrun_crashed += 1,
                Label::Success => overrun_lucky += 1,
            }
        }
    }
    assert!(overrun_crashed > 0, "some overruns crash");
    assert!(
        overrun_lucky > 0,
        "some overruns get lucky (non-determinism)"
    );
}

#[test]
fn no_predicate_survives_successful_counterexample_at_scale() {
    // §3.3: for a non-deterministic bug, with enough runs no predicate
    // survives elimination by successful counterexample.
    let result = campaign(1500, 9, SamplingDensity::one_in(10));
    let report = cbi::eliminate(&result);
    let combined = report.combined.len();
    let uf = report.independent_survivors[0];
    assert!(
        combined < uf / 4,
        "successful counterexample should wipe out most of the {uf} candidates, \
         left {combined}"
    );
}
