//! Fleet acceptance gates: the empirical detection latency of a rare
//! event in a simulated community must agree with the closed-form
//! §3.1.3 confidence bound (same tolerance as `core/deployment.rs`),
//! and stale-version clients must be rejected by the layout-hash
//! handshake and reported — never crashed, never silently dropped.

use cbi_fleet::{run_fleet, FleetSpec};
use cbi_instrument::{instrument, Scheme};
use cbi_stats::{detection_probability, runs_needed};

/// `rare() > 0` fires iff the input is divisible by 12.
const RARE: &str = "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
     fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }";

/// Inputs `i*7 + 1` for `i` in `0..240`: exactly the 20 indices with
/// `i ≡ 5 (mod 12)` trigger the event, so a uniform draw fires it at
/// rate 1/12 — the event rate the closed form is checked against.
fn pool() -> Vec<Vec<i64>> {
    (0..240i64).map(|i| vec![i * 7 + 1]).collect()
}

fn target(sites: &cbi_instrument::SiteTable) -> usize {
    (0..sites.total_counters())
        .find(|&c| sites.predicate_name(c).contains("rare() > 0"))
        .unwrap()
}

#[test]
fn community_latency_matches_the_closed_form_bound() {
    let program = cbi_minic::parse(RARE).unwrap();
    let sites = instrument(&program, Scheme::Returns).unwrap().sites;

    let mut spec = FleetSpec::new(40, 4000);
    spec.densities = vec![(10, 1.0)];
    spec.zipf_exponent = 0.0; // uniform pool: event rate is exactly 1/12
    spec.batch_size = 16;
    spec.epoch_len = 500;
    spec.jobs = 4;
    let report = run_fleet(&program, &pool(), &spec, Some(target(&sites))).unwrap();

    // §3.1.3's model: at event rate 1/12 and density 1/10, this many
    // community runs give 95%-confidence detection.
    let predicted = runs_needed(1.0 / 12.0, 0.1, 0.95) as usize;
    let latency = report
        .summary
        .target_latency
        .expect("4000 community runs must observe a 1-in-12 event at 1/10 sampling");
    assert!(
        latency <= predicted * 3,
        "latency {latency} far exceeds prediction {predicted}"
    );
    // And the closed form is calibrated at the observed latency.
    let p = detection_probability(1.0 / 12.0, 0.1, latency as u64);
    assert!(p > 0.01 && p < 0.9999, "p = {p}");

    // The epoch trajectory must agree with the end-of-stream answer.
    let last = report.epochs.last().unwrap();
    assert_eq!(last.target_latency, Some(latency));
    assert_eq!(last.runs, report.summary.accepted_reports);
}

#[test]
fn stale_clients_are_rejected_counted_and_everyone_else_is_served() {
    let program = cbi_minic::parse(RARE).unwrap();
    let sites = instrument(&program, Scheme::Returns).unwrap().sites;

    let mut spec = FleetSpec::new(30, 1200);
    spec.densities = vec![(10, 1.0)];
    spec.stale_fraction = 0.2;
    spec.batch_size = 10;
    spec.epoch_len = 300;
    let report = run_fleet(&program, &pool(), &spec, Some(target(&sites))).unwrap();
    let s = &report.summary;

    // No crash (we got here), no silent drop: every batch is accounted
    // for, and stale rejections surface in both summary and epochs.
    assert!(s.stale_clients > 0, "seeded fraction must draw stale users");
    assert!(s.stale_batches > 0);
    assert_eq!(s.stale_rejections, s.stale_batches);
    assert_eq!(
        s.accepted_batches + s.stale_batches + s.lost_batches,
        s.batches
    );
    assert_eq!(
        report.epochs.last().unwrap().stale_batches,
        s.stale_rejections
    );

    // Current-version clients still detect the event.
    assert!(s.target_latency.is_some());
    assert!(s.accepted_reports > 0);
    // Stale spool never reaches the analyzer: accepted reports all come
    // from non-stale clients.
    assert!(s.accepted_reports < s.spooled_reports);
}
