//! Golden-file test for the bytecode disassembler: the listing of every
//! `examples/*.mc` program (plain, and sampled under the `checks`
//! scheme) must match the checked-in text byte for byte.  Regenerate
//! with `UPDATE_GOLDEN=1 cargo test --test disasm_golden` after an
//! intentional compiler or disassembler change.

use cbi::prelude::*;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/disasm")
}

fn examples() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("examples directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "mc"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "examples corpus must not be empty");
    entries
        .into_iter()
        .map(|p| {
            let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&p).expect("read example");
            (stem, src)
        })
        .collect()
}

fn check(name: &str, listing: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        std::fs::write(&path, listing).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with UPDATE_GOLDEN=1", name));
    assert_eq!(
        listing, expected,
        "{name}: listing drifted from golden file (UPDATE_GOLDEN=1 to regenerate)"
    );
}

#[test]
fn example_listings_match_goldens() {
    for (name, src) in examples() {
        let program = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let plain = cbi_vm::bytecode::compile(&cbi::minic::lower(&program));
        check(&name, &cbi_vm::bytecode::disassemble(&plain));

        let inst = instrument(&program, Scheme::Checks).expect("instrument");
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        let bc = cbi_vm::bytecode::compile(&cbi::minic::lower(&sampled));
        check(
            &format!("{name}.sampled"),
            &cbi_vm::bytecode::disassemble(&bc),
        );
    }
}

#[test]
fn listing_is_deterministic() {
    for (name, src) in examples() {
        let program = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let inst = instrument(&program, Scheme::Branches).expect("instrument");
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        let a =
            cbi_vm::bytecode::disassemble(&cbi_vm::bytecode::compile(&cbi::minic::lower(&sampled)));
        let b =
            cbi_vm::bytecode::disassemble(&cbi_vm::bytecode::compile(&cbi::minic::lower(&sampled)));
        assert_eq!(a, b, "{name}: listing not deterministic");
    }
}
