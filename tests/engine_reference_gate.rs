//! Engine reference gate: the slot-resolved VM must be byte-identical to
//! the name-map reference interpreter over the whole in-tree corpus —
//! the `examples/` programs plus every workload analogue — across all
//! four observation schemes, both unconditional and sampled, with trace
//! capture on.  Full [`RunResult`] equality: outcome, op count, counter
//! vector, program output, and the bounded observation trace.

use cbi::prelude::*;
use cbi::workloads::{BC_SOURCE, BENCHMARK_SOURCES, CCRYPT_SOURCE};
use cbi_vm::Engine;

const SCHEMES: [Scheme; 4] = [
    Scheme::Checks,
    Scheme::Returns,
    Scheme::ScalarPairs,
    Scheme::Branches,
];

/// Every MiniC source the repository ships, by name.
fn corpus() -> Vec<(String, String)> {
    let mut sources = Vec::new();
    let examples = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut entries: Vec<_> = std::fs::read_dir(&examples)
        .expect("examples directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "mc"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "examples corpus must not be empty");
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("read example");
        sources.push((name, src));
    }
    for (name, src) in BENCHMARK_SOURCES {
        sources.push((format!("bench/{name}"), (*src).to_string()));
    }
    sources.push(("ccrypt".into(), CCRYPT_SOURCE.to_string()));
    sources.push(("bc".into(), BC_SOURCE.to_string()));
    sources
}

/// Runs `program` under both engines with identical configuration and
/// asserts full result equality.  Crashes are fine — both engines must
/// crash identically.
fn assert_engines_agree(label: &str, program: &Program, sites: &SiteTable, sampled: bool) {
    let input = [5i64, 3, 7, 2, 9, 1, 4, 8, 6, 10];
    let slots = cbi::minic::lower(program);

    let mut reference = Vm::new(program);
    reference
        .with_engine(Engine::NameMap)
        .with_sites(sites)
        .with_input(&input[..])
        .with_trace(16);
    let mut fast = Vm::from_slots(&slots);
    fast.with_sites(sites).with_input(&input[..]).with_trace(16);
    if sampled {
        reference.with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(3), 0xabc)));
        fast.with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(3), 0xabc)));
    }

    let r = reference.run().expect("vm config");
    let f = fast.run().expect("vm config");
    assert_eq!(r, f, "{label}: engines diverged");
}

#[test]
fn slot_engine_matches_reference_across_corpus_and_schemes() {
    for (name, src) in corpus() {
        let program = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for scheme in SCHEMES {
            let inst = instrument(&program, scheme).expect("instrument");
            assert_engines_agree(
                &format!("{name} {scheme:?} unconditional"),
                &inst.program,
                &inst.sites,
                false,
            );
            let (transformed, _) =
                apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
            assert_engines_agree(
                &format!("{name} {scheme:?} sampled"),
                &transformed,
                &inst.sites,
                true,
            );
        }
    }
}

#[test]
fn engines_agree_on_empty_input() {
    // The no-input path exercises `has_input() == 0` branches (the ccrypt
    // EOF crash among them); both engines must take them identically.
    for (name, src) in corpus() {
        let program = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let inst = instrument(&program, Scheme::Returns).expect("instrument");
        let slots = cbi::minic::lower(&inst.program);
        let r = Vm::new(&inst.program)
            .with_engine(Engine::NameMap)
            .with_sites(&inst.sites)
            .with_trace(16)
            .run()
            .expect("vm config");
        let f = Vm::from_slots(&slots)
            .with_sites(&inst.sites)
            .with_trace(16)
            .run()
            .expect("vm config");
        assert_eq!(r, f, "{name}: engines diverged on empty input");
    }
}
