//! Engine reference gate: the slot-resolved VM and the bytecode dispatch
//! VM must be byte-identical to the name-map reference interpreter over
//! the whole in-tree corpus — the `examples/` programs plus every
//! workload analogue — across all four observation schemes, both
//! unconditional and sampled, with trace capture on.  Full [`RunResult`]
//! equality: outcome, op count, counter vector, program output, and the
//! bounded observation trace.

use cbi::prelude::*;
use cbi::workloads::{BC_SOURCE, BENCHMARK_SOURCES, CCRYPT_SOURCE};
use cbi_vm::Engine;

const SCHEMES: [Scheme; 4] = [
    Scheme::Checks,
    Scheme::Returns,
    Scheme::ScalarPairs,
    Scheme::Branches,
];

/// Every MiniC source the repository ships, by name.
fn corpus() -> Vec<(String, String)> {
    let mut sources = Vec::new();
    let examples = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples");
    let mut entries: Vec<_> = std::fs::read_dir(&examples)
        .expect("examples directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "mc"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "examples corpus must not be empty");
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).expect("read example");
        sources.push((name, src));
    }
    for (name, src) in BENCHMARK_SOURCES {
        sources.push((format!("bench/{name}"), (*src).to_string()));
    }
    sources.push(("ccrypt".into(), CCRYPT_SOURCE.to_string()));
    sources.push(("bc".into(), BC_SOURCE.to_string()));
    sources
}

/// Runs `program` under all three engines with identical configuration
/// and asserts full result equality.  Crashes are fine — the engines must
/// crash identically.
fn assert_engines_agree(
    label: &str,
    program: &Program,
    sites: &SiteTable,
    density: Option<SamplingDensity>,
) {
    let input = [5i64, 3, 7, 2, 9, 1, 4, 8, 6, 10];
    let slots = cbi::minic::lower(program);
    let bytecode = cbi_vm::bytecode::compile(&slots);

    let mut reference = Vm::new(program);
    reference
        .with_engine(Engine::NameMap)
        .with_sites(sites)
        .with_input(&input[..])
        .with_trace(16);
    let mut fast = Vm::from_slots(&slots);
    fast.with_sites(sites).with_input(&input[..]).with_trace(16);
    let mut dispatch = Vm::from_bytecode(&bytecode);
    dispatch
        .with_sites(sites)
        .with_input(&input[..])
        .with_trace(16);
    if let Some(d) = density {
        reference.with_sampling(Box::new(Geometric::new(d, 0xabc)));
        fast.with_sampling(Box::new(Geometric::new(d, 0xabc)));
        dispatch.with_sampling(Box::new(Geometric::new(d, 0xabc)));
    }

    let r = reference.run().expect("vm config");
    let f = fast.run().expect("vm config");
    let b = dispatch.run().expect("vm config");
    assert_eq!(r, f, "{label}: slot engine diverged from reference");
    assert_eq!(r, b, "{label}: bytecode engine diverged from reference");
}

#[test]
fn engines_match_reference_across_corpus_and_schemes() {
    for (name, src) in corpus() {
        let program = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for scheme in SCHEMES {
            let inst = instrument(&program, scheme).expect("instrument");
            assert_engines_agree(
                &format!("{name} {scheme:?} unconditional"),
                &inst.program,
                &inst.sites,
                None,
            );
            let (transformed, _) =
                apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
            assert_engines_agree(
                &format!("{name} {scheme:?} sampled"),
                &transformed,
                &inst.sites,
                Some(SamplingDensity::one_in(3)),
            );
        }
    }
}

#[test]
fn engines_match_across_sampling_density_sweep() {
    // Density shifts which region entries take the slow path, so it
    // exercises different fast/slow block interleavings of the same
    // compiled dual-path bytecode.
    let densities = [1u64, 3, 13, 101, 1009];
    for (name, src) in corpus() {
        let program = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let inst = instrument(&program, Scheme::Branches).expect("instrument");
        let (transformed, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        for d in densities {
            assert_engines_agree(
                &format!("{name} density 1/{d}"),
                &transformed,
                &inst.sites,
                Some(SamplingDensity::one_in(d)),
            );
        }
    }
}

#[test]
fn campaign_reports_identical_across_engines_and_jobs() {
    // The whole pipeline, not just one VM: a ccrypt campaign must emit a
    // bit-identical report stream whichever engine executes the trials,
    // at any job count, for every scheme.
    use cbi::workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};
    let program = ccrypt_program();
    let trials = ccrypt_trials(90, 17, &CcryptTrialConfig::default());
    for scheme in SCHEMES {
        let config = CampaignConfig::sampled(scheme, SamplingDensity::one_in(10));
        let baseline = run_campaign(&program, &trials, &config.with_engine(Engine::Slots))
            .expect("slot campaign");
        for engine in [Engine::Bytecode, Engine::NameMap] {
            for jobs in [1usize, 2, 4] {
                let run = run_campaign(
                    &program,
                    &trials,
                    &config.with_engine(engine).with_jobs(jobs),
                )
                .expect("campaign");
                assert_eq!(
                    baseline.collector.reports(),
                    run.collector.reports(),
                    "{scheme:?} {} jobs={jobs}: report stream diverged",
                    engine.name()
                );
                assert_eq!(baseline.dropped, run.dropped, "{scheme:?} jobs={jobs}");
            }
        }
    }
}

#[test]
fn corpus_scores_identical_across_engines() {
    // The isolation-quality harness replays campaigns per corpus entry;
    // its rendered report must not depend on the engine.
    use cbi_corpus::{evaluate, generate_corpus, render_report, EvalConfig, GenerateConfig};
    let entries = generate_corpus(&GenerateConfig {
        size: 3,
        seed: 11,
        trials: 24,
    })
    .expect("corpus")
    .entries;
    let eval = |engine: Engine| {
        let report = evaluate(
            &entries,
            &EvalConfig {
                densities: vec![1, 100],
                jobs: 2,
                engine,
                ..EvalConfig::default()
            },
        )
        .expect("evaluate");
        render_report(&report)
    };
    let slot = eval(Engine::Slots);
    assert_eq!(
        slot,
        eval(Engine::Bytecode),
        "bytecode corpus eval diverged"
    );
    assert_eq!(slot, eval(Engine::NameMap), "namemap corpus eval diverged");
}

#[test]
fn engines_agree_on_empty_input() {
    // The no-input path exercises `has_input() == 0` branches (the ccrypt
    // EOF crash among them); all engines must take them identically.
    for (name, src) in corpus() {
        let program = parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let inst = instrument(&program, Scheme::Returns).expect("instrument");
        let slots = cbi::minic::lower(&inst.program);
        let bytecode = cbi_vm::bytecode::compile(&slots);
        let r = Vm::new(&inst.program)
            .with_engine(Engine::NameMap)
            .with_sites(&inst.sites)
            .with_trace(16)
            .run()
            .expect("vm config");
        let f = Vm::from_slots(&slots)
            .with_sites(&inst.sites)
            .with_trace(16)
            .run()
            .expect("vm config");
        let b = Vm::from_bytecode(&bytecode)
            .with_sites(&inst.sites)
            .with_trace(16)
            .run()
            .expect("vm config");
        assert_eq!(r, f, "{name}: slot engine diverged on empty input");
        assert_eq!(r, b, "{name}: bytecode engine diverged on empty input");
    }
}
