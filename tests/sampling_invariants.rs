//! Cross-crate invariants of the sampling infrastructure, checked over the
//! real benchmark programs:
//!
//! 1. semantic transparency — instrumentation and sampling never change
//!    program results;
//! 2. statistical fidelity — sampled observation counts approximate
//!    `density × unconditional` counts;
//! 3. cost ordering — baseline < sampled < unconditional for check-dense
//!    programs.

use cbi::prelude::*;
use cbi::workloads::all_benchmarks;

#[test]
fn instrumentation_is_semantically_transparent_on_all_benchmarks() {
    for b in all_benchmarks() {
        let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
        let baseline = strip_sites(&inst.program);
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");

        let base = Vm::new(&baseline)
            .with_op_limit(500_000_000)
            .run()
            .expect("baseline run");
        let uncond = Vm::new(&inst.program)
            .with_sites(&inst.sites)
            .with_op_limit(500_000_000)
            .run()
            .expect("unconditional run");
        let samp = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(100), 5)))
            .with_op_limit(500_000_000)
            .run()
            .expect("sampled run");

        assert_eq!(
            base.output, uncond.output,
            "{}: unconditional output",
            b.name
        );
        assert_eq!(base.output, samp.output, "{}: sampled output", b.name);
        assert!(base.outcome.is_success(), "{}", b.name);
        assert!(uncond.outcome.is_success(), "{}", b.name);
        assert!(samp.outcome.is_success(), "{}", b.name);
    }
}

#[test]
fn sampled_counts_track_density_on_a_benchmark() {
    let b = cbi::workloads::benchmark("compress").expect("benchmark");
    let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
    let (sampled, _) =
        apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");

    let uncond = Vm::new(&inst.program)
        .with_sites(&inst.sites)
        .run()
        .expect("run");
    let crossings: u64 = uncond.counters.iter().sum();
    assert!(crossings > 10_000, "enough crossings: {crossings}");

    let density = 100u64;
    let trials = 30;
    let mut total = 0u64;
    for seed in 0..trials {
        let r = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(
                SamplingDensity::one_in(density),
                seed,
            )))
            .run()
            .expect("run");
        total += r.counters.iter().sum::<u64>();
    }
    let mean = total as f64 / trials as f64;
    let expected = crossings as f64 / density as f64;
    assert!(
        (mean - expected).abs() < expected * 0.2,
        "mean sampled count {mean} should approximate {expected}"
    );
}

#[test]
fn per_site_rates_are_fair_across_sites() {
    // The fairness property at program level: every site's sampled/actual
    // ratio clusters around the density — no site is starved.
    let b = cbi::workloads::benchmark("em3d").expect("benchmark");
    let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
    let (sampled, _) =
        apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");

    let uncond = Vm::new(&inst.program)
        .with_sites(&inst.sites)
        .run()
        .expect("run");

    let mut sampled_totals = vec![0u64; uncond.counters.len()];
    let trials = 60;
    for seed in 0..trials {
        let r = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(10), seed)))
            .run()
            .expect("run");
        for (t, c) in sampled_totals.iter_mut().zip(&r.counters) {
            *t += c;
        }
    }

    for (i, (&actual, &got)) in uncond.counters.iter().zip(&sampled_totals).enumerate() {
        if actual < 3_000 {
            continue; // too rare for a tight ratio check
        }
        let rate = got as f64 / (actual as f64 * trials as f64);
        assert!(
            (0.07..0.13).contains(&rate),
            "site counter {i}: rate {rate} strays from 0.1"
        );
    }
}

#[test]
fn cost_ordering_on_check_dense_benchmarks() {
    for name in ["em3d", "compress", "ijpeg"] {
        let b = cbi::workloads::benchmark(name).expect("benchmark");
        let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
        let baseline = strip_sites(&inst.program);
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");

        let base = Vm::new(&baseline).run().expect("run").ops;
        let uncond = Vm::new(&inst.program)
            .with_sites(&inst.sites)
            .run()
            .expect("run")
            .ops;
        let samp = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(1000), 3)))
            .run()
            .expect("run")
            .ops;
        assert!(
            base < samp && samp < uncond,
            "{name}: {base} < {samp} < {uncond} violated"
        );
    }
}

#[test]
fn code_growth_is_bounded_and_real() {
    use cbi::instrument::code_growth;
    for b in all_benchmarks() {
        let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
        let (sampled, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        let growth = code_growth(&inst.program, &sampled);
        assert!(
            (0.0..=3.0).contains(&growth),
            "{}: growth {growth} out of plausible range",
            b.name
        );
    }
}
