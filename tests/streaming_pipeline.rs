//! End-to-end remote collection: a campaign transmits framed reports
//! over loopback TCP to an ingest server, and the server-side analyses
//! must agree exactly with the in-process ones — same elimination
//! survivors, same regression top-10, bit-identical report archive.
//! Streaming analysis must also stay memory-bounded: one report resident
//! at a time no matter how many trials stream through.

use cbi::prelude::*;
use cbi::RegressionConfig;

/// The quickstart bug: crashes whenever `g()` returns zero.
const BUGGY: &str = "fn g() -> int { if (has_input() == 0) { return 0; } return read(); }\n\
     fn main() -> int { int v = g(); print(100 / v); return 0; }";

fn trials(n: usize) -> Vec<Vec<i64>> {
    (0..n)
        .map(|i| {
            if i % 11 == 0 {
                vec![]
            } else {
                vec![(i as i64 % 9) + 1]
            }
        })
        .collect()
}

fn config() -> CampaignConfig {
    CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(2))
}

#[test]
fn loopback_campaign_matches_in_process_analysis() {
    let program = parse(BUGGY).unwrap();
    let trial_set = trials(400);

    // In-process baseline: collector + streaming analyzer side by side.
    let mut local_analyzer = StreamingAnalyzer::new(StreamingConfig::default());
    let mut local = Collector::default();
    let mut local_sink = (&mut local, &mut local_analyzer);
    let baseline = run_campaign_into(&program, &trial_set, &config(), &mut local_sink).unwrap();
    let local_result = run_campaign(&program, &trial_set, &config()).unwrap();
    assert_eq!(local.reports(), local_result.collector.reports());

    // Remote: server ingests into a collector + streaming analyzer.
    let server = IngestServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let expected_layout = ReportLayout {
        counters: baseline.instrumented.sites.total_counters(),
        layout_hash: baseline.instrumented.sites.layout_hash(),
    };
    let server_thread = std::thread::spawn(move || {
        let mut sink = (
            Collector::default(),
            StreamingAnalyzer::new(StreamingConfig::default()),
        );
        let summary = server.serve(1, Some(expected_layout), &mut sink).unwrap();
        (sink.0, sink.1, summary)
    });

    let mut transmit = TransmitSink::connect(addr.to_string()).unwrap();
    let run = run_campaign_into(&program, &trial_set, &config(), &mut transmit).unwrap();
    let (remote, remote_analyzer, summary) = server_thread.join().unwrap();

    // The wire preserved the stream bit-for-bit.
    assert_eq!(summary.reports as usize, run.emitted);
    assert_eq!(remote.reports(), local_result.collector.reports());

    // Elimination: streaming (remote, aggregates only) equals in-process.
    let local_elim = cbi::eliminate(&local_result);
    let remote_elim = remote_analyzer.eliminate(&baseline.instrumented.sites);
    assert_eq!(
        remote_elim.independent_survivors,
        local_elim.independent_survivors
    );
    assert_eq!(remote_elim.combined, local_elim.combined);
    assert_eq!(remote_elim.combined_names, local_elim.combined_names);
    assert!(
        remote_elim
            .combined_names
            .iter()
            .any(|p| p.contains("g() == 0")),
        "the culprit must survive: {:?}",
        remote_elim.combined_names
    );

    // Batch regression over the server's archive equals in-process.
    let n = local_result.collector.len();
    let rc = RegressionConfig::paper_proportions(n);
    let local_study = cbi::regress(&local_result, &rc).unwrap();
    let remote_result = cbi::workloads::CampaignResult {
        instrumented: baseline.instrumented,
        collector: remote,
        dropped: 0,
    };
    let remote_study = cbi::regress(&remote_result, &rc).unwrap();
    assert_eq!(remote_study.top(10), local_study.top(10));
    assert_eq!(remote_study.ranked_counters, local_study.ranked_counters);

    // Streaming regression reaches bit-identical state local vs remote:
    // the deterministic update sequence saw the same stream.
    assert_eq!(remote_analyzer.seen(), local_analyzer.seen());
    assert_eq!(remote_analyzer.ranking(), local_analyzer.ranking());
    assert_eq!(remote_analyzer.stats(), local_analyzer.stats());
}

#[test]
fn streaming_analysis_never_materializes_the_report_vector() {
    // 50k trials, serial jobs so reports flow one-at-a-time from the VM
    // into the sink: the analyzer's high-water mark must stay at one
    // resident report — O(counters) memory, independent of trial count.
    let program = parse(BUGGY).unwrap();
    let trial_set = trials(50_000);
    let mut analyzer = StreamingAnalyzer::new(StreamingConfig::default());
    let run = run_campaign_into(&program, &trial_set, &config(), &mut analyzer).unwrap();

    assert_eq!(run.emitted, 50_000);
    assert_eq!(analyzer.seen(), 50_000);
    assert_eq!(
        analyzer.high_water(),
        1,
        "streaming analysis must hold at most one report at a time"
    );
    assert!(analyzer.stats().failure_runs() > 0);
}

#[test]
fn server_rejects_campaign_from_a_different_binary() {
    let program = parse(BUGGY).unwrap();
    let trial_set = trials(40);

    // Server pinned to the Returns layout.
    let inst = instrument(&program, Scheme::Returns).unwrap();
    let pinned = ReportLayout {
        counters: inst.sites.total_counters(),
        layout_hash: inst.sites.layout_hash(),
    };
    let server = IngestServer::bind("127.0.0.1:0").unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || {
        let mut sink = Collector::default();
        let summary = server.serve(1, Some(pinned), &mut sink).unwrap();
        (sink, summary)
    });

    // Client instrumented with a different scheme: layout hash differs.
    let mut transmit = TransmitSink::connect(addr.to_string()).unwrap();
    let client = run_campaign_into(
        &program,
        &trial_set,
        &CampaignConfig::sampled(Scheme::Branches, SamplingDensity::one_in(2)),
        &mut transmit,
    );
    // The server resets the connection at the handshake; whether the
    // client notices depends on buffering, so either outcome is fine.
    let _ = client;

    // The stale stream rejects its own connection — counted, not
    // fatal — and nothing from it lands in the sink.
    let (sink, summary) = server_thread.join().unwrap();
    assert_eq!(summary.connections, 0);
    assert_eq!(summary.rejected, 1);
    assert!(sink.is_empty(), "no report may land from a rejected stream");
}
