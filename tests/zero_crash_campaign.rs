//! A campaign with zero crashes must come back empty-handed, not wedge
//! or panic: elimination yields empty survivor sets (universal falsehood
//! removes everything when no run failed), the streaming ranking stays
//! well-defined, and the regression pipeline reports a typed error
//! instead of training on nothing.

use cbi::prelude::*;

fn trials(n: usize) -> Vec<Vec<i64>> {
    (0..n)
        .map(|i| vec![i as i64 % 7, (i as i64 % 11) - 5, i as i64])
        .collect()
}

fn config() -> CampaignConfig {
    CampaignConfig::sampled(Scheme::Checks, SamplingDensity::one_in(1))
}

#[test]
fn zero_crash_campaign_yields_empty_survivor_sets() {
    // Scan testgen seeds for a program whose density-1 Checks campaign
    // has zero failures (generated index arithmetic is clamped, so most
    // seeds qualify; the scan just avoids hard-coding one).
    let trial_set = trials(64);
    let mut found = None;
    for seed in 0..200 {
        let program = cbi_testgen::program_for_seed(seed);
        let mut analyzer = StreamingAnalyzer::new(StreamingConfig::default());
        let run = run_campaign_into(&program, &trial_set, &config(), &mut analyzer).unwrap();
        if run.emitted == trial_set.len() && analyzer.stats().failure_runs() == 0 {
            found = Some((analyzer, run));
            break;
        }
    }
    let (analyzer, run) = found.expect("some testgen seed in 0..200 is crash-free");
    assert_eq!(analyzer.seen(), trial_set.len() as u64);

    let elim = analyzer.eliminate(&run.instrumented.sites);
    assert_eq!(elim.runs, trial_set.len());
    assert_eq!(elim.failures, 0);
    // Universal falsehood keeps whatever was ever observed true, but the
    // failure-facing strategies have nothing to keep, and the combined
    // UF ∧ SC set is empty: nothing observed true only outside successes.
    assert_eq!(
        elim.independent_survivors[1], 0,
        "lack of failing coverage must eliminate everything with zero failures"
    );
    assert_eq!(
        elim.independent_survivors[2], 0,
        "lack of failing example must eliminate everything with zero failures"
    );
    assert!(elim.combined.is_empty(), "combined: {:?}", elim.combined);
    assert!(elim.combined_names.is_empty());

    // The streaming ranking is still total over the counter layout: the
    // model saw only successes, but ranking must not panic or shrink.
    let ranking = analyzer.ranking();
    assert_eq!(ranking.len(), run.instrumented.sites.total_counters());
}

#[test]
fn empty_stream_and_empty_campaign_are_handled() {
    let program = cbi_testgen::program_for_seed(3);

    // Zero-trial campaign: succeeds, collects nothing, and `regress`
    // reports a typed error instead of training on an empty dataset.
    let result = run_campaign(&program, &[], &config()).unwrap();
    assert!(result.collector.is_empty());
    let err = regress(&result, &RegressionConfig::default()).unwrap_err();
    assert_eq!(err, PipelineError::NoReports);

    // Fresh sufficient statistics (no report ever folded in): the
    // elimination strategies run to completion with empty survivors.
    let sites = &result.instrumented.sites;
    let n = sites.total_counters();
    let stats = SufficientStats::new(n);
    let elim = cbi::eliminate_stats(&stats, &result.site_groups(), sites);
    assert_eq!(elim.runs, 0);
    assert_eq!(elim.failures, 0);
    assert_eq!(elim.independent_survivors[0], 0);
    assert!(elim.combined.is_empty());

    // An analyzer that began a stream but saw no reports mirrors that.
    let mut analyzer = StreamingAnalyzer::new(StreamingConfig::default());
    analyzer
        .begin(ReportLayout {
            counters: n,
            layout_hash: sites.layout_hash(),
        })
        .unwrap();
    assert_eq!(analyzer.seen(), 0);
    let elim = analyzer.eliminate(sites);
    assert_eq!(elim.runs, 0);
    assert!(elim.combined.is_empty());
    assert_eq!(analyzer.ranking().len(), n);

    // Before any `begin` there is no model: ranking is empty, not a
    // panic.
    let fresh = StreamingAnalyzer::new(StreamingConfig::default());
    assert!(fresh.ranking().is_empty());
    assert_eq!(fresh.seen(), 0);
}
