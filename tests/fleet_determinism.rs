//! Fleet determinism gate: byte-identical summaries at any `--jobs`,
//! same seed — including under injected channel faults, stale clients,
//! variant binaries, and a mixed density population.

use cbi_fleet::{render_summary, run_fleet, ChannelSpec, FleetReport, FleetSpec};
use cbi_instrument::{instrument, Scheme};

const RARE: &str = "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
     fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }";

fn pool(n: usize) -> Vec<Vec<i64>> {
    (0..n as i64).map(|i| vec![i * 7 + 1]).collect()
}

fn stormy_spec() -> FleetSpec {
    let mut spec = FleetSpec::new(24, 800);
    spec.densities = vec![(5, 2.0), (20, 1.0)];
    spec.batch_size = 12;
    spec.epoch_len = 128;
    spec.zipf_exponent = 1.1;
    spec.variant_fraction = 0.4;
    spec.stale_fraction = 0.15;
    spec.channel = ChannelSpec {
        drop: 0.25,
        truncate: 0.15,
        bit_flip: 0.1,
        max_retries: 3,
        backoff_base: 2,
    };
    spec.seed = 0xf1ee7;
    spec
}

fn target() -> usize {
    let program = cbi_minic::parse(RARE).unwrap();
    let sites = instrument(&program, Scheme::Returns).unwrap().sites;
    (0..sites.total_counters())
        .find(|&c| sites.predicate_name(c).contains("rare() > 0"))
        .unwrap()
}

fn run_at(jobs: usize) -> FleetReport {
    let program = cbi_minic::parse(RARE).unwrap();
    run_fleet(
        &program,
        &pool(96),
        &stormy_spec().with_jobs(jobs),
        Some(target()),
    )
    .unwrap()
}

#[test]
fn summaries_are_byte_identical_across_jobs_under_channel_faults() {
    let serial = run_at(1);
    let serial_text = render_summary(&serial.summary, &serial.epochs);
    // Sanity: the storm actually exercised every fault path.
    assert!(serial.summary.lost_batches > 0, "channel must lose batches");
    assert!(serial.summary.retries > 0);
    assert!(
        serial.summary.stale_batches > 0,
        "stale clients must appear"
    );
    assert!(serial.summary.rejected_deliveries > 0);
    assert!(serial.summary.variant_clients > 0);
    assert!(serial.summary.accepted_batches > 0);

    for jobs in [2, 4, 7] {
        let parallel = run_at(jobs);
        assert_eq!(serial.summary, parallel.summary, "jobs {jobs}");
        assert_eq!(serial.epochs, parallel.epochs, "jobs {jobs}");
        assert_eq!(serial.target_rank, parallel.target_rank, "jobs {jobs}");
        assert_eq!(
            serial_text,
            render_summary(&parallel.summary, &parallel.epochs),
            "jobs {jobs}: summary text must be byte-identical"
        );
    }
}

#[test]
fn repeated_runs_at_the_same_seed_are_identical() {
    let a = run_at(4);
    let b = run_at(4);
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.epochs, b.epochs);
    assert_eq!(a.profiles, b.profiles);
}

#[test]
fn different_seeds_change_the_outcome() {
    let a = run_at(1);
    let mut spec = stormy_spec();
    spec.seed ^= 0xdead_beef;
    let program = cbi_minic::parse(RARE).unwrap();
    let b = run_fleet(&program, &pool(96), &spec, Some(target())).unwrap();
    // Same sizes, different coin flips: at least the wire accounting
    // must differ under a 50% fault storm.
    assert_eq!(a.summary.runs, b.summary.runs);
    assert_ne!(
        (
            a.summary.bytes_accepted,
            a.summary.retries,
            a.summary.stale_clients
        ),
        (
            b.summary.bytes_accepted,
            b.summary.retries,
            b.summary.stale_clients
        ),
        "a reseeded storm should not replay exactly"
    );
}
