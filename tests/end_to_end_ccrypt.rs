//! End-to-end reproduction of the ccrypt case study (§3.2) at test scale.
//!
//! Smaller than the `ccrypt_study` experiment binary (which uses 6000 runs)
//! so it stays fast in debug builds, but it exercises the identical
//! pipeline: fuzz trials → returns-scheme instrumentation → sampling
//! transformation → campaign → the four elimination strategies.

use cbi::prelude::*;
use cbi::workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};

fn campaign(runs: usize, seed: u64, density: SamplingDensity) -> CampaignResult {
    let program = ccrypt_program();
    let trials = ccrypt_trials(runs, seed, &CcryptTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::Returns, density);
    run_campaign(&program, &trials, &config).expect("campaign")
}

#[test]
fn combination_isolates_the_two_paper_predicates() {
    // Denser sampling than the headline experiment compensates for the
    // smaller run count; the analysis is unchanged.
    let result = campaign(2000, 2003, SamplingDensity::one_in(25));
    let report = cbi::eliminate(&result);

    assert!(
        report
            .combined_names
            .iter()
            .any(|n| n.contains("xreadline() == 0")),
        "smoking gun missing: {:?}",
        report.combined_names
    );
    assert!(
        report
            .combined_names
            .iter()
            .any(|n| n.contains("file_exists() > 0")),
        "correlated predicate missing: {:?}",
        report.combined_names
    );
    assert!(
        report.combined.len() <= 4,
        "combination should isolate a handful of predicates, got {:?}",
        report.combined_names
    );
}

#[test]
fn crash_rate_matches_the_paper_band() {
    let result = campaign(2000, 7, SamplingDensity::one_in(100));
    let rate = result.collector.failure_count() as f64 / result.collector.len() as f64;
    assert!(
        (0.01..0.10).contains(&rate),
        "ccrypt crash rate {rate} out of band"
    );
}

#[test]
fn elimination_subset_relations_hold_on_real_data() {
    use cbi::stats::elimination::{apply, survivors, Strategy};
    let result = campaign(800, 13, SamplingDensity::one_in(25));
    let stats: SufficientStats = result.collector.reports().iter().cloned().collect();
    let groups = result.site_groups();

    let uf = survivors(&apply(&stats, Strategy::UniversalFalsehood, &groups));
    let cov = survivors(&apply(&stats, Strategy::LackOfFailingCoverage, &groups));
    let ex = survivors(&apply(&stats, Strategy::LackOfFailingExample, &groups));

    // §3.2.2: (universal falsehood) and (lack of failing coverage) each
    // eliminate a subset of what (lack of failing example) eliminates.
    for c in &ex {
        assert!(uf.contains(c), "ex ⊆ uf violated for counter {c}");
        assert!(cov.contains(c), "ex ⊆ cov violated for counter {c}");
    }
}

#[test]
fn progressive_elimination_shrinks_with_more_runs() {
    use cbi::stats::elimination::{apply, survivors, Strategy};
    use cbi::stats::{progressive_elimination, ProgressiveConfig};

    let result = campaign(1200, 19, SamplingDensity::one_in(25));
    let stats: SufficientStats = result.collector.reports().iter().cloned().collect();
    let groups = result.site_groups();
    let candidates = survivors(&apply(&stats, Strategy::UniversalFalsehood, &groups));

    let points = progressive_elimination(
        result.collector.reports(),
        &candidates,
        &ProgressiveConfig {
            step: 100,
            repetitions: 30,
            seed: 5,
        },
    );
    assert!(points.len() >= 5);
    let first = &points[0];
    let last = points.last().expect("nonempty");
    assert!(
        last.mean < first.mean,
        "candidates must shrink: {first:?} -> {last:?}"
    );
    // The two true survivors never get eliminated.
    assert!(last.mean >= 2.0 - 1e-9, "survivors floor: {last:?}");
}

#[test]
fn unconditional_and_sampled_campaigns_agree_on_labels() {
    let program = ccrypt_program();
    let trials = ccrypt_trials(300, 3, &CcryptTrialConfig::default());
    let sampled = run_campaign(
        &program,
        &trials,
        &CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(50)),
    )
    .expect("sampled campaign");
    let uncond = run_campaign(
        &program,
        &trials,
        &CampaignConfig::unconditional(Scheme::Returns),
    )
    .expect("unconditional campaign");
    // Sampling never changes control flow, only observation counts.
    let labels = |r: &CampaignResult| -> Vec<Label> {
        r.collector.reports().iter().map(|x| x.label).collect()
    };
    assert_eq!(labels(&sampled), labels(&uncond));
}
