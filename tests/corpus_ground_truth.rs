//! Acceptance gate for the fault-injection corpus: a ≥100-entry seeded
//! corpus must evaluate fully deterministically — the score report is
//! byte-identical across repeated runs and across worker counts — and at
//! density 1 the true predicate must survive combined elimination for
//! every deterministic-bug entry.
//!
//! Why density 1 guarantees survival: `__check` increments the predicate
//! counter *before* aborting, so a sampled violation always lands in a
//! failing report with the counter set (universal falsehood holds), and a
//! violated check always aborts, so no successful run ever carries a
//! nonzero violated counter (successful counterexample holds).

use cbi_corpus::{
    evaluate, generate_corpus, render_report, render_summary, EvalConfig, GenerateConfig,
};

#[test]
fn hundred_entry_corpus_evaluates_deterministically_and_truth_survives() {
    let cfg = GenerateConfig {
        size: 100,
        seed: 0xc0de,
        trials: 40,
    };
    let corpus = generate_corpus(&cfg).unwrap();
    assert!(
        corpus.entries.len() >= 100,
        "corpus came up short: {} entries",
        corpus.entries.len()
    );

    // Same seed, same corpus: sources and manifests reproduce exactly.
    let again = generate_corpus(&cfg).unwrap();
    assert_eq!(corpus.entries.len(), again.entries.len());
    for (a, b) in corpus.entries.iter().zip(&again.entries) {
        assert_eq!(a.source, b.source, "source drifted for {}", a.bug.id);
        assert_eq!(a.bug.to_json(), b.bug.to_json());
    }

    let eval = |jobs: usize| {
        evaluate(
            &corpus.entries,
            &EvalConfig {
                densities: vec![1, 100],
                jobs,
                ..EvalConfig::default()
            },
        )
        .unwrap()
    };
    let first = eval(1);
    let second = eval(1);
    let wide = eval(4);

    // Byte-identical score report across runs and across --jobs.
    assert_eq!(
        render_report(&first),
        render_report(&second),
        "two serial evaluations disagree"
    );
    assert_eq!(
        render_report(&first),
        render_report(&wide),
        "jobs=1 and jobs=4 evaluations disagree"
    );
    assert_eq!(render_summary(&first), render_summary(&wide));

    // Full sweep coverage: one score per entry per density.
    assert_eq!(first.scores.len(), corpus.entries.len() * 2);

    // Density 1: every entry crashes at least once (validation pinned
    // that), and every deterministic bug's true predicate survives.
    for score in first.scores.iter().filter(|s| s.density == 1) {
        assert!(
            score.failures > 0,
            "{} saw no failures at density 1",
            score.id
        );
        if score.deterministic {
            assert!(
                score.survived,
                "true predicate eliminated for {} ({})",
                score.id, score.operator
            );
        }
    }
}
