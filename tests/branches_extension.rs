//! The `branches` scheme extension: branch-direction observations feed
//! the same elimination machinery (this scheme became standard in the
//! CBI follow-on work; here it demonstrates that the analyses are
//! scheme-agnostic).

use cbi::prelude::*;

/// A program that crashes iff it takes the `mode == 3` branch.
const PROGRAM: &str = "fn main() -> int {
    int mode = read();
    int payload = read();
    ptr buf = alloc(4);
    if (mode == 1) {
        buf[0] = payload;
    } else if (mode == 2) {
        buf[1] = payload * 2;
    } else if (mode == 3) {
        ptr q;
        buf[2] = q[0];       // BUG: always crashes on this branch
    } else {
        buf[3] = 7;
    }
    print(buf[0] + buf[1] + buf[3]);
    free(buf);
    return 0;
}";

fn campaign(density: SamplingDensity) -> CampaignResult {
    let program = parse(PROGRAM).expect("program parses");
    // Modes cycle 0..=4; mode 3 appears in 1/5 of runs.
    let trials: Vec<Vec<i64>> = (0..600).map(|i| vec![i % 5, i * 13 % 50]).collect();
    let config = CampaignConfig::sampled(Scheme::Branches, density);
    run_campaign(&program, &trials, &config).expect("campaign")
}

#[test]
fn branch_elimination_finds_the_crashing_branch() {
    let result = campaign(SamplingDensity::always());
    assert!(result.collector.failure_count() > 50);

    let report = cbi::eliminate(&result);
    assert!(
        report
            .combined_names
            .iter()
            .any(|n| n.contains("(mode == 3)") && !n.contains('!')),
        "crashing branch not isolated: {:?}",
        report.combined_names
    );
    // The healthy branches must not be implicated.
    assert!(
        !report
            .combined_names
            .iter()
            .any(|n| n.contains("(mode == 1)") && !n.starts_with('!') && !n.contains("!(")),
        "healthy branch implicated: {:?}",
        report.combined_names
    );
}

#[test]
fn sampled_branch_observations_still_isolate_with_enough_runs() {
    let result = campaign(SamplingDensity::one_in(3));
    let report = cbi::eliminate(&result);
    assert!(
        report
            .combined_names
            .iter()
            .any(|n| n.contains("(mode == 3)")),
        "sampled isolation failed: {:?}",
        report.combined_names
    );
}

#[test]
fn branch_sites_observe_both_directions() {
    let result = campaign(SamplingDensity::always());
    let sites = &result.instrumented.sites;
    // Find the `mode == 1` branch site: across the campaign both the
    // taken and not-taken counters must fire.
    let site = sites
        .iter()
        .find(|s| s.text.contains("mode == 1"))
        .expect("branch site exists");
    let taken = site.counter_base + 2;
    let not_taken = site.counter_base + 1;
    let totals = |c: usize| -> u64 {
        result
            .collector
            .reports()
            .iter()
            .map(|r| r.counters[c])
            .sum()
    };
    assert!(totals(taken) > 0, "taken counter");
    assert!(totals(not_taken) > 0, "not-taken counter");
    assert_eq!(totals(site.counter_base), 0, "sign<0 slot stays unused");
}
