//! Crash recovery: kill the server mid-ingest — after a partial
//! journal append, including a torn final record — restart, replay,
//! and a full client retransmit sweep must end in an analysis
//! byte-identical to an uninterrupted run.

use cbi::prelude::*;
use cbi_reports::frame::BatchEnvelope;
use cbi_reports::wire::encode_reports;
use cbi_reports::{AckVerdict, Report};
use cbi_serve::{render_analysis, FsyncPolicy, IngestCore, ServeConfig};
use std::path::PathBuf;

const BUGGY: &str = "fn g() -> int { if (has_input() == 0) { return 0; } return read(); }\n\
     fn main() -> int { int v = g(); print(100 / v); return 0; }";

fn trials(n: usize) -> Vec<Vec<i64>> {
    (0..n)
        .map(|i| {
            if i % 11 == 0 {
                vec![]
            } else {
                vec![(i as i64 % 9) + 1]
            }
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cbi-serve-recovery-{}-{name}", std::process::id()));
    p
}

fn fixture() -> (cbi::instrument::SiteTable, Vec<BatchEnvelope>) {
    let program = parse(BUGGY).unwrap();
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(2));
    let result = cbi::workloads::run_campaign(&program, &trials(500), &config).unwrap();
    let sites = result.instrumented.sites.clone();
    let reports: Vec<Report> = result.collector.reports().to_vec();
    let envelopes = reports
        .chunks(16)
        .enumerate()
        .map(|(i, chunk)| {
            let payload =
                encode_reports(chunk, sites.layout_hash(), sites.total_counters()).unwrap();
            BatchEnvelope::new((i % 4) as u64, i as u64, 0, payload)
        })
        .collect();
    (sites, envelopes)
}

fn config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        epoch_len: 128,
        ..ServeConfig::default()
    }
}

#[test]
fn journal_resume_after_torn_append_is_byte_identical() {
    let (sites, envelopes) = fixture();
    let n = envelopes.len();
    assert!(n > 10, "fixture too small to interrupt meaningfully");
    let crash_at = n / 2;

    // Uninterrupted golden: every batch through a journaled core.
    let golden_path = tmp("golden.journal");
    let mut core = IngestCore::new(sites.clone(), config(2))
        .unwrap()
        .with_journal(&golden_path, FsyncPolicy::EveryN(4))
        .unwrap();
    for env in &envelopes {
        assert_eq!(
            core.submit(None, env.clone(), true).unwrap(),
            AckVerdict::Accepted
        );
    }
    let golden_outcome = core.finish().unwrap();
    let golden = render_analysis(&golden_outcome.aggregator, 10);
    assert!(golden.contains("g() == 0"), "culprit must survive");

    // Crashed run: half the batches land, then the process dies while
    // appending the next record — the journal ends in a torn record.
    let path = tmp("crash.journal");
    let mut core = IngestCore::new(sites.clone(), config(2))
        .unwrap()
        .with_journal(&path, FsyncPolicy::EveryN(4))
        .unwrap();
    for env in &envelopes[..crash_at] {
        core.submit(None, env.clone(), true).unwrap();
    }
    drop(core); // crash: no finish, no final sync
    let torn = envelopes[crash_at].encode();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&torn[..torn.len() * 2 / 3]);
    std::fs::write(&path, &bytes).unwrap();

    // Restart: replay recovers the intact half and truncates the tear.
    let mut core = IngestCore::new(sites.clone(), config(2))
        .unwrap()
        .resume(&path, FsyncPolicy::EveryN(4))
        .unwrap();

    // The client never saw acks for the tail, so it retransmits the
    // whole campaign (attempt 1).  The journaled half dedups; the torn
    // batch and the tail commit.
    let mut duplicates = 0;
    let mut accepted = 0;
    for env in &envelopes {
        let retry = BatchEnvelope::new(env.client, env.seq, 1, env.payload.clone());
        match core.submit(None, retry, true).unwrap() {
            AckVerdict::Duplicate => duplicates += 1,
            AckVerdict::Accepted => accepted += 1,
            other => panic!("unexpected verdict {other:?}"),
        }
    }
    assert_eq!(duplicates, crash_at);
    assert_eq!(accepted, n - crash_at);

    let outcome = core.finish().unwrap();
    assert_eq!(outcome.summary.replayed, crash_at as u64);
    assert!(outcome.summary.torn_tail, "the torn record must be seen");

    let resumed = render_analysis(&outcome.aggregator, 10);
    assert_eq!(
        resumed, golden,
        "resumed analysis must be byte-identical to the uninterrupted run"
    );
    // Snapshot-by-snapshot equality of everything the analysis owns.
    // (Retry attribution legitimately differs: the tail committed on
    // attempt 1 after the crash, attempt 0 in the golden run.)
    let project = |agg: &cbi::EpochAggregator| {
        agg.snapshots()
            .iter()
            .map(|s| {
                (
                    s.epoch,
                    s.runs,
                    s.failures,
                    s.observed,
                    s.survivors,
                    s.bytes,
                    s.batches,
                )
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(
        project(&outcome.aggregator),
        project(&golden_outcome.aggregator)
    );

    std::fs::remove_file(&golden_path).unwrap();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn journaled_run_matches_memory_run() {
    // The journal must be an implementation detail: with or without
    // one, the same batches fold to the same analysis.
    let (sites, envelopes) = fixture();
    let path = tmp("parity.journal");

    let mut with_journal = IngestCore::new(sites.clone(), config(2))
        .unwrap()
        .with_journal(&path, FsyncPolicy::Never)
        .unwrap();
    let mut in_memory = IngestCore::new(sites, config(2)).unwrap();
    for env in &envelopes {
        with_journal.submit(None, env.clone(), true).unwrap();
        in_memory.submit(None, env.clone(), true).unwrap();
    }
    let a = with_journal.finish().unwrap();
    let b = in_memory.finish().unwrap();
    assert_eq!(
        render_analysis(&a.aggregator, 10),
        render_analysis(&b.aggregator, 10)
    );
    assert_eq!(a.aggregator.snapshots(), b.aggregator.snapshots());
    std::fs::remove_file(&path).unwrap();
}
