//! Acceptance gate for the multi-bug iterative isolation engine.
//!
//! Pins the ISSUE-level guarantee: on a generated multi-bug corpus at
//! sampling density 1, the §3.3 elimination loop recovers every planted
//! bug into its own cluster with purity 1000‰ for the Ochiai scorer,
//! and the full rendered evaluation is byte-identical at any `--jobs`
//! setting and under either interpreter engine.

use cbi_corpus::{
    evaluate_multi, generate_multi_corpus, render_multi_report, MultiEvalConfig,
    MultiGenerateConfig,
};

fn corpus() -> Vec<cbi_corpus::CorpusEntry> {
    generate_multi_corpus(&MultiGenerateConfig {
        size: 3,
        seed: 0xc0de,
        trials: 64,
        bugs_per_entry: 2,
    })
    .expect("generate multi-bug corpus")
    .entries
}

fn config(jobs: usize) -> MultiEvalConfig {
    MultiEvalConfig {
        densities: vec![1],
        scorers: vec!["ochiai".to_string()],
        jobs,
        ..MultiEvalConfig::default()
    }
}

#[test]
fn density_one_isolates_every_planted_bug_with_pure_clusters() {
    let entries = corpus();
    assert!(!entries.is_empty(), "corpus generation produced no entries");
    let report = evaluate_multi(&entries, &config(1)).expect("evaluate");
    assert_eq!(report.scores.len(), entries.len());
    for s in &report.scores {
        assert_eq!(
            s.purity_mille, 1000,
            "{}: every cluster must contain a single bug's runs",
            s.id
        );
        assert_eq!(s.unexplained, 0, "{}: every failing run attributed", s.id);
        assert_eq!(
            s.recovered(),
            s.bugs,
            "{}: every planted bug owns a cluster",
            s.id
        );
        assert_eq!(
            s.iterations, s.bugs,
            "{}: exactly one elimination iteration per bug",
            s.id
        );
    }
}

#[test]
fn isolation_report_is_byte_identical_at_any_jobs() {
    let entries = corpus();
    let render = |jobs: usize| {
        render_multi_report(&evaluate_multi(&entries, &config(jobs)).expect("evaluate"))
    };
    let solo = render(1);
    assert_eq!(solo, render(2), "jobs 1 vs 2 diverged");
    assert_eq!(solo, render(4), "jobs 1 vs 4 diverged");
}

#[test]
fn isolation_report_is_engine_independent() {
    let entries = corpus();
    let render = |engine| {
        let cfg = MultiEvalConfig {
            engine,
            ..config(2)
        };
        render_multi_report(&evaluate_multi(&entries, &cfg).expect("evaluate"))
    };
    assert_eq!(
        render(cbi::vm::Engine::Bytecode),
        render(cbi::vm::Engine::Slots),
        "bytecode vs slot engines diverged"
    );
}
