//! Health-monitoring gate: the fleet fault storm raises the expected
//! anomaly events deterministically, and every monitor surface — the
//! health table, the Prometheus exposition, the epoch timeline, and the
//! emitted events — is byte-identical at any `--jobs`.

use cbi::{health_registry, render_health, HealthConfig, HealthEvent, HealthMonitor};
use cbi_fleet::{run_fleet, ChannelSpec, FleetReport, FleetSpec};

const RARE: &str = "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
     fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }";

fn pool(n: usize) -> Vec<Vec<i64>> {
    (0..n as i64).map(|i| vec![i * 7 + 1]).collect()
}

/// A corruption-heavy storm: enough bit flips to push the
/// corrupt-but-decodable share over the default 150‰ threshold, plus
/// stale clients feeding the rejection detectors.
fn storm_spec() -> FleetSpec {
    let mut spec = FleetSpec::new(16, 600);
    spec.densities = vec![(5, 1.0)];
    spec.batch_size = 10;
    spec.epoch_len = 100;
    spec.stale_fraction = 0.25;
    spec.channel = ChannelSpec {
        drop: 0.1,
        truncate: 0.05,
        bit_flip: 0.5,
        max_retries: 3,
        backoff_base: 1,
    };
    spec.seed = 0x0057_0121;
    spec
}

fn run_at(jobs: usize) -> FleetReport {
    let program = cbi_minic::parse(RARE).unwrap();
    run_fleet(&program, &pool(64), &storm_spec().with_jobs(jobs), None).unwrap()
}

fn monitor_of(report: &FleetReport) -> HealthMonitor {
    let mut monitor = HealthMonitor::new(HealthConfig::default(), false);
    monitor.observe_all(&report.epochs);
    monitor
}

#[test]
fn fault_storm_raises_exactly_one_corruption_spike() {
    let report = run_at(1);
    assert!(
        report.summary.corrupt_batches > 0,
        "the bit-flip storm must corrupt accepted batches"
    );
    assert!(report.summary.stale_batches > 0);

    let monitor = monitor_of(&report);
    let spikes: Vec<_> = monitor
        .events()
        .iter()
        .filter(|e| matches!(e, HealthEvent::CorruptionSpike { .. }))
        .collect();
    // The storm is sustained from epoch 0, so the edge-triggered
    // detector fires exactly once — at the first armed epoch — and
    // stays latched for the rest of the run.
    assert_eq!(
        spikes.len(),
        1,
        "sustained storm fires one spike: {:?}",
        monitor.events()
    );
    assert_eq!(
        spikes[0].epoch(),
        HealthConfig::default().warmup_epochs,
        "the spike lands at the first post-warmup epoch"
    );
}

#[test]
fn monitor_surfaces_are_byte_identical_across_jobs() {
    let serial = run_at(1);
    let serial_monitor = monitor_of(&serial);
    let serial_table = render_health(&serial_monitor);
    let serial_flight = serial.aggregator.flight_recorder().render();
    let registry = health_registry(&serial.aggregator, &serial_monitor);
    let mut serial_prom = Vec::new();
    cbi_telemetry::export::write_prometheus(&registry, &mut serial_prom).unwrap();
    let mut serial_timeline = Vec::new();
    cbi_telemetry::export::write_timeline(&registry, &mut serial_timeline).unwrap();
    assert!(!serial_table.contains('.'), "integer-only:\n{serial_table}");
    assert!(
        !String::from_utf8(serial_prom.clone())
            .unwrap()
            .contains('.'),
        "prometheus export is integer-only"
    );

    for jobs in [2, 4] {
        let parallel = run_at(jobs);
        let monitor = monitor_of(&parallel);
        assert_eq!(
            serial_monitor.events(),
            monitor.events(),
            "jobs {jobs}: emitted events"
        );
        assert_eq!(
            serial_monitor.indicators(),
            monitor.indicators(),
            "jobs {jobs}: indicators"
        );
        assert_eq!(
            serial_table,
            render_health(&monitor),
            "jobs {jobs}: health table"
        );
        assert_eq!(
            serial_flight,
            parallel.aggregator.flight_recorder().render(),
            "jobs {jobs}: flight recorder"
        );
        let registry = health_registry(&parallel.aggregator, &monitor);
        let mut prom = Vec::new();
        cbi_telemetry::export::write_prometheus(&registry, &mut prom).unwrap();
        assert_eq!(serial_prom, prom, "jobs {jobs}: prometheus exposition");
        let mut timeline = Vec::new();
        cbi_telemetry::export::write_timeline(&registry, &mut timeline).unwrap();
        assert_eq!(serial_timeline, timeline, "jobs {jobs}: epoch timeline");
    }
}

#[test]
fn calm_fleet_raises_no_traffic_anomalies() {
    let program = cbi_minic::parse(RARE).unwrap();
    let mut spec = FleetSpec::new(8, 400);
    spec.densities = vec![(5, 1.0)];
    spec.batch_size = 10;
    spec.epoch_len = 100;
    let report = run_fleet(&program, &pool(64), &spec, None).unwrap();
    let monitor = monitor_of(&report);
    assert!(
        monitor.events().iter().all(|e| matches!(
            e,
            // A clean, quickly-converging stream may legitimately stall
            // on detection progress; the traffic detectors must stay
            // silent.
            HealthEvent::DetectionStalled { .. }
        )),
        "clean channel raises no traffic anomalies: {:?}",
        monitor.events()
    );
}

#[test]
fn cohort_accounting_separates_stale_clients() {
    let report = run_at(1);
    let cohorts = report.aggregator.cohorts();
    let stale_cohorts: Vec<_> = cohorts
        .iter()
        .filter(|(label, _)| label.ends_with("+stale"))
        .collect();
    assert!(
        !stale_cohorts.is_empty(),
        "25% stale clients must form cohorts: {cohorts:?}"
    );
    // A stale binary never survives the handshake: its cohorts reject
    // everything and commit nothing.  (The converse is not an
    // invariant — a fresh batch whose header hash catches a bit flip
    // is also a layout mismatch, and a stale batch the channel
    // truncates rejects as truncation before the handshake.)
    for (label, stats) in &stale_cohorts {
        assert_eq!(stats.batches, 0, "{label} committed batches");
        assert!(stats.stale > 0, "{label} saw no handshake rejections");
        assert!(stats.stale <= stats.rejected, "{label} accounting");
    }
}
