//! Deterministic bug isolation (§3.2): the ccrypt case study, end to end.
//!
//! Reproduces the paper's process of elimination on the ccrypt analogue:
//! thousands of fuzz-style runs, sparse sampling, four elimination
//! strategies, and the combination that leaves the smoking gun.
//!
//! Run with: `cargo run --release --example deterministic_isolation`

use cbi::prelude::*;
use cbi::workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = ccrypt_program();
    println!(
        "ccrypt analogue: {} functions, the overwrite-prompt EOF bug from ccrypt-1.2",
        program.functions.len()
    );

    let trials = ccrypt_trials(6000, 42, &CcryptTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(100));
    let result = run_campaign(&program, &trials, &config)?;
    println!(
        "{} runs collected, {} crashed",
        result.collector.len(),
        result.collector.failure_count()
    );

    let report = cbi::eliminate(&result);
    let [uf, cov, ex, sc] = report.independent_survivors;
    println!();
    println!("elimination by universal falsehood leaves       {uf} candidates");
    println!("elimination by lack of failing coverage leaves  {cov} candidates");
    println!("elimination by lack of failing example leaves   {ex} candidates");
    println!("elimination by successful counterexample leaves {sc} candidates");
    println!();
    println!("combining (universal falsehood) with (successful counterexample):");
    for name in &report.combined_names {
        println!("  -> {name}");
    }
    println!();
    println!(
        "As in the paper, `xreadline() == 0` is the smoking gun (the forgotten EOF \
         check) and `file_exists() > 0` is the necessary condition that leads there."
    );
    Ok(())
}
