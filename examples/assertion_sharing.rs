//! Assertion sharing (§3.1): spread the cost of dense checks over many
//! users.
//!
//! Each simulated "user" runs the instrumented binary at 1/1000 sampling
//! and sees near-baseline performance; in aggregate, the user community
//! still observes enough assertion crossings to catch a rare violation.
//!
//! Run with: `cargo run --release --example assertion_sharing`

use cbi::prelude::*;
use cbi::stats::runs_needed;
use cbi::workloads::{benchmark, measure_overhead, OverheadConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One user's cost: overhead of the check-dense `ijpeg` analogue.
    let b = benchmark("ijpeg").expect("bundled benchmark");
    let densities = vec![SamplingDensity::one_in(100), SamplingDensity::one_in(1000)];
    let m = measure_overhead(
        b.name,
        &b.program,
        &[],
        &densities,
        &OverheadConfig::default(),
    )?;
    println!("ijpeg analogue, CCured-style checks:");
    println!("  unconditional checks: {:.2}x baseline", m.unconditional);
    for (d, r) in &m.sampled {
        println!("  sampled {d}: {r:.2}x baseline");
    }

    // 2. The community's power: how many sampled runs catch a violation?
    let inst = instrument(&b.program, Scheme::Checks)?;
    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default())?;
    let mut observed = 0u64;
    let users = 300;
    for user in 0..users {
        let bank = CountdownBank::generate(SamplingDensity::one_in(1000), 1024, user);
        let run = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(bank))
            .run()?;
        assert!(run.outcome.is_success());
        observed += run.counters.iter().sum::<u64>();
    }
    println!();
    println!(
        "{users} simulated users at 1/1000 sampling observed {observed} assertion \
         crossings in aggregate"
    );

    // 3. The paper's deployment arithmetic.
    println!();
    println!(
        "to observe a 1-in-100-runs event with 90% confidence at 1/1000 sampling: {} runs",
        runs_needed(0.01, 0.001, 0.90)
    );
    println!("(sixty million Office XP licenses produce that many runs every 19 minutes)");
    Ok(())
}
