//! Quickstart: the full cooperative-bug-isolation loop on a tiny program.
//!
//! We write a buggy MiniC program, instrument it with the `returns`
//! scheme, apply the fair-sampling transformation, "deploy" it over a few
//! hundred randomized runs, and let predicate elimination point at the
//! bug.
//!
//! Run with: `cargo run --example quickstart`

use cbi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A program with a deterministic bug: `lookup` returns -1 for missing
    // keys, and `main` uses the result as an index without checking.
    let program = parse(
        "fn lookup(ptr table, int key) -> int {
             int i = 0;
             while (i < len(table)) {
                 int entry = table[i];
                 if (entry == key) {
                     return i;
                 }
                 i = i + 1;
             }
             return -1;                      // missing key
         }
         fn main() -> int {
             ptr table = alloc(8);
             int i = 0;
             while (i < 8) {
                 table[i] = i * 3;           // keys 0,3,6,...,21
                 i = i + 1;
             }
             int key = read();
             int slot = lookup(table, key);
             table[slot] = 99;               // BUG: slot may be -1
             print(slot);
             free(table);
             return 0;
         }",
    )?;

    // Show what the instrumented source looks like.
    let inst = instrument(&program, Scheme::Returns)?;
    println!("--- instrumented (unconditional) ---");
    println!("{}", pretty(&inst.program));
    let (sampled, stats) = apply_sampling(&inst.program, &TransformOptions::default())?;
    println!(
        "--- after sampling transformation: {} threshold checks, {} AST nodes ---",
        stats
            .functions
            .iter()
            .map(|f| f.threshold_checks)
            .sum::<usize>(),
        cbi::minic::ast::program_size(&sampled),
    );

    // "Deploy": 500 runs with random keys; most hit, some miss and crash.
    let trials: Vec<Vec<i64>> = (0..500).map(|i| vec![(i * 7) % 25]).collect();
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(10));
    let result = run_campaign(&program, &trials, &config)?;
    println!(
        "campaign: {} runs, {} crashes",
        result.collector.len(),
        result.collector.failure_count()
    );

    // Analyze.
    let report = cbi::eliminate(&result);
    println!("predicates implicated by elimination:");
    for name in &report.combined_names {
        println!("  {name}");
    }
    assert!(
        report
            .combined_names
            .iter()
            .any(|n| n.contains("lookup() < 0")),
        "expected `lookup() < 0` to be isolated"
    );
    println!("=> the bug: main() uses lookup()'s result when it is negative.");
    Ok(())
}
