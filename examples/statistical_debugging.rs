//! Statistical debugging (§3.3): the bc case study, end to end.
//!
//! The `more_arrays` buffer overrun does not always crash, so no predicate
//! perfectly predicts failure; ℓ₁-regularized logistic regression finds
//! the predicates most correlated with crashing instead.
//!
//! Run with: `cargo run --release --example statistical_debugging`

use cbi::prelude::*;
use cbi::workloads::{bc_program, bc_trials, BcTrialConfig};
use cbi::RegressionConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = bc_program();
    let trials = bc_trials(4390, 106, &BcTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::ScalarPairs, SamplingDensity::one_in(100));
    let result = run_campaign(&program, &trials, &config)?;
    println!(
        "bc analogue: {} scalar-pair counters, {} runs, {:.0}% crashed",
        result.instrumented.sites.total_counters(),
        result.collector.len(),
        100.0 * result.collector.failure_count() as f64 / result.collector.len() as f64
    );

    let study = cbi::regress(&result, &RegressionConfig::paper_proportions(4390))
        .expect("campaign yields reports");
    println!(
        "trained on {} effective features; lambda = {} by cross-validation; \
         test accuracy {:.2}",
        study.effective_features, study.lambda, study.test_accuracy
    );

    println!();
    println!("top crash-predicting predicates:");
    for (i, (name, beta)) in study.top(5).iter().enumerate() {
        println!("  {}. beta={beta:+.3}  {name}", i + 1);
    }

    println!();
    if let Some(rank) = study.rank_of("indx > a_count") {
        println!(
            "the literal bug condition `indx > a_count` ranks #{} — like the paper's \
             #240, redundancy and got-lucky runs push it below the correlated cluster",
            rank + 1
        );
    }
    println!(
        "every top predicate points at `indx` on the zeroing loop of more_arrays(): \
         the copy-paste bound bug."
    );
    Ok(())
}
