//! Deployment coverage and detection latency — the paper's other
//! motivating uses (§1): "software authors may simply wish to know which
//! features are most commonly used, or … whether code not covered by
//! in-house testing is ever executed in practice."
//!
//! Run with: `cargo run --release --example deployment_coverage`

use cbi::prelude::*;
use cbi::workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = ccrypt_program();
    let trials = ccrypt_trials(2500, 42, &CcryptTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(50));
    let deployment = cbi::simulate_deployment(&program, &trials, &config)?;

    println!(
        "simulated community: {} runs at {} sampling",
        deployment.reports().len(),
        SamplingDensity::one_in(50),
    );

    // 1. Which code paths does the community actually reach?
    let report = cbi::coverage(&deployment.campaign);
    println!(
        "site coverage: {}/{} sites reached ({:.0}%)",
        report.covered_sites,
        report.total_sites,
        report.site_coverage() * 100.0
    );
    if !report.never_true_predicates.is_empty() {
        println!("behaviours the deployment never exhibited:");
        for p in report.never_true_predicates.iter().take(8) {
            println!("  {p}");
        }
    }

    // 2. How quickly does the community surface interesting events?
    for needle in [
        "xreadline() == 0",
        "file_exists() > 0",
        "key_schedule() > 0",
    ] {
        match deployment.latency_of(needle) {
            Some(runs) => println!("`{needle}` first observed after {runs} runs"),
            None => println!("`{needle}` never observed by this community"),
        }
    }

    println!();
    println!(
        "rare crash-path predicates take orders of magnitude longer to surface than \
         common ones — the deployment-scale arithmetic of §3.1.3 in action."
    );
    Ok(())
}
