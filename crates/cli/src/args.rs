//! Tiny hand-rolled argument parser (no external dependencies).
//!
//! Supports `--flag value` and `--flag=value` forms, valueless boolean
//! switches (declared up front), and positional arguments, which is all
//! the CLI needs.

use std::collections::HashMap;

/// Parsed command-line arguments: positionals in order, flags by name.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses raw arguments (without the program name).  Every `--flag`
    /// takes a value; see [`Args::parse_with_switches`] for boolean
    /// switches.
    ///
    /// # Errors
    ///
    /// Returns a message if a `--flag` is missing its value.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, String> {
        Args::parse_with_switches(raw, &[])
    }

    /// Parses raw arguments, treating the named flags as valueless
    /// boolean switches (present or absent; probe with
    /// [`Args::flag`]`.is_some()`).  A switch may still be written
    /// `--name=value` explicitly.
    ///
    /// # Errors
    ///
    /// Returns a message if a non-switch `--flag` is missing its value.
    pub fn parse_with_switches(
        raw: impl IntoIterator<Item = String>,
        switches: &[&str],
    ) -> Result<Args, String> {
        let mut args = Args::default();
        let mut it = raw.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((k, v)) = name.split_once('=') {
                    args.flags.insert(k.to_string(), v.to_string());
                } else if switches.contains(&name) {
                    args.flags.insert(name.to_string(), "true".to_string());
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} requires a value"))?;
                    args.flags.insert(name.to_string(), v);
                }
            } else {
                args.positionals.push(a);
            }
        }
        Ok(args)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// A flag's raw value.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A flag parsed to a type, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for --{name}: {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["run", "prog.mc", "--density", "100", "--seed=7"]);
        assert_eq!(a.positional(0), Some("run"));
        assert_eq!(a.positional(1), Some("prog.mc"));
        assert_eq!(a.positional_count(), 2);
        assert_eq!(a.flag("density"), Some("100"));
        assert_eq!(a.flag("seed"), Some("7"));
        assert_eq!(a.flag("missing"), None);
    }

    #[test]
    fn flag_or_defaults_and_parses() {
        let a = parse(&["--runs", "250"]);
        assert_eq!(a.flag_or("runs", 10usize).unwrap(), 250);
        assert_eq!(a.flag_or("seed", 42u64).unwrap(), 42);
        assert!(a.flag_or::<usize>("runs", 0).is_ok());
        let bad = parse(&["--runs", "abc"]);
        assert!(bad.flag_or::<usize>("runs", 0).is_err());
    }

    #[test]
    fn missing_flag_value_is_an_error() {
        assert!(Args::parse(vec!["--density".to_string()]).is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let raw: Vec<String> = ["run", "p.mc", "--metrics", "--density", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = Args::parse_with_switches(raw, &["metrics"]).unwrap();
        assert_eq!(a.flag("metrics"), Some("true"));
        assert_eq!(a.flag("density"), Some("5"));
        assert_eq!(a.positional(1), Some("p.mc"));
        // A trailing switch needs no value either.
        let raw: Vec<String> = ["--metrics".to_string()].to_vec();
        let a = Args::parse_with_switches(raw, &["metrics"]).unwrap();
        assert_eq!(a.flag("metrics"), Some("true"));
    }
}
