//! CLI subcommand implementations.

use crate::args::Args;
use cbi::prelude::*;
use cbi::reports::wire;
use cbi::{EliminationReport, RegressionConfig, RegressionStudy};
use std::fs;
use std::io::Write as _;

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage:
  cbi instrument <file.mc> [--scheme checks|returns|scalar-pairs|branches]
  cbi transform  <file.mc> [--scheme S] [--global-countdown] [--no-regions]
  cbi disasm     <file.mc> [--stage source|instrument|sample] [--scheme S]
                 [--global-countdown] [--no-regions]
  cbi run        <file.mc> [--scheme S] [--density D] [--seed N] [--input \"1 2 3\"]
                 [--engine E] [--global-countdown] [--no-regions] [--metrics]
                 [--metrics-out metrics.jsonl] [--trace-out trace.json]
  cbi campaign   <file.mc> <inputs.txt> [--scheme S] [--density D] [--seed N]
                 [--jobs N] [--engine E] [--out reports.jsonl] [--spool reports.cbr]
                 [--transmit HOST:PORT] [--metrics]
                 [--metrics-out metrics.jsonl] [--trace-out trace.json]
  cbi profile    <file.mc> <inputs.txt> [--scheme S] [--density D] [--seed N]
                 [--jobs N] [--engine E] [--analyze eliminate|regress|none]
                 [--metrics-out metrics.jsonl] [--trace-out trace.json]
  cbi analyze    <reports.jsonl|.cbr> <file.mc> [--scheme S]
                 [--mode eliminate|regress]
  cbi serve      <file.mc> [--scheme S] [--addr 127.0.0.1:0] [--max-clients 1]
                 [--shards N] [--queue-cap N] [--acceptors N] [--epoch-len N]
                 [--journal FILE | --resume FILE] [--fsync never|batch|every:N]
                 [--mode eliminate|regress|both] [--spool reports.cbr]
                 [--flight-cap N] [--metrics] [--metrics-out metrics.jsonl]
  cbi transmit   <reports.jsonl|.cbr> --to HOST:PORT [<file.mc>] [--scheme S]
  cbi corpus     generate <dir> [--size N] [--seed N] [--trials N] [--bugs N]
  cbi corpus     evaluate <dir> [--densities 1,10,100,1000] [--jobs N] [--engine E]
                 [--scorer ochiai|tarantula|jaccard|increase|importance|posterior|odds]
                 [--out report.txt] [--summary-out summary.txt]
  cbi isolate    <file.mc> <inputs.txt> [--scheme S] [--density D] [--seed N]
                 [--jobs N] [--engine E] [--scorer S] [--top N]
  cbi isolate    --corpus <dir> [--densities 1,10,100] [--scorers ochiai,importance]
                 [--jobs N] [--engine E] [--out report.txt] [--summary-out summary.txt]
  cbi fleet      <file.mc> <inputs.txt> [--scheme S] [--clients N] [--runs N]
                 [--batch-size N] [--epoch-len N] [--densities 100:1,1000:3]
                 [--zipf S] [--variant-fraction F] [--stale-fraction F]
                 [--drop F] [--truncate F] [--bit-flip F] [--max-retries N]
                 [--target PRED] [--seed N] [--jobs N] [--engine E] [--summary-out FILE]
                 [--flight-cap N] [--prom-out FILE] [--timeline-out FILE]
                 [--metrics] [--metrics-out metrics.jsonl] [--trace-out trace.json]
  cbi fleet      --corpus <dir> [--entry ID] [--pool N] [same knobs]
  cbi fleet      <file.mc> <inputs.txt> --serve HOST:PORT [--ack-drop F]
                 [--streams N] [same fleet knobs]
  cbi monitor    <file.mc> <inputs.txt> [same fleet knobs] [--warmup N]
                 [--corruption-pm N] [--rejection-pm N] [--stale-pm N]
                 [--stall-epochs N] [--flight-cap N] [--health-out FILE]
                 [--prom-out FILE] [--timeline-out FILE]
  cbi monitor    --corpus <dir> [--entry ID] [--pool N] [same knobs]
  cbi monitor    --replay <spool.cbr|journal.cbij> <file.mc> [--scheme S]
                 [--epoch-len N] [--batch-size N] [same health knobs]

  --engine E picks the interpreter: `bytecode` (default — programs are
  compiled once to flat instructions and dispatched by a straight-line
  loop), `slot` (the slot-resolved tree walker), or `namemap` (the
  name-map reference walker).  Every engine produces bit-identical
  output; the flag is a throughput knob.  `cbi disasm` prints the
  bytecode listing of a program — raw (--stage source), after
  unconditional instrumentation (--stage instrument), or after the
  sampling transformation (--stage sample), where the fast/slow region
  clones and fused countdown ops are visible.

  --jobs N shards campaign trials over N worker threads (reports are
  bit-identical at any job count).  --metrics prints a telemetry summary,
  --metrics-out / --trace-out dump JSONL metrics and a chrome://tracing
  span file; `cbi profile` runs a campaign with telemetry on and prints
  the phase/worker breakdown.

  Remote collection: `cbi serve` binds the production ingest server for
  the given instrumented program (it prints `listening on ADDR`),
  validates each client stream's layout hash, routes batches to
  `client mod --shards` worker shards over bounded queues (--queue-cap;
  a full queue sheds with an `overloaded` NACK and the client retries),
  dedups retransmits by (client, seq), and at shutdown folds every
  committed batch in canonical order — the analysis is byte-identical
  at any shard count.  --journal FILE appends every batch to a
  crash-safe journal before acking it (--fsync picks the durability
  level); after a crash, --resume FILE replays the journal, truncates a
  torn final record, and continues where the server died.  --max-conns
  is a deprecated alias for --max-clients.  `cbi campaign --transmit
  ADDR` streams reports to such a server in the compact binary wire
  format; `cbi fleet --serve ADDR` drives the whole simulated community
  against it over real sockets (--ack-drop loses acks to exercise
  retransmit dedup, --streams bounds client concurrency); `--spool
  FILE` writes accepted reports to disk; `cbi transmit` replays a saved
  JSONL or spool file to a server.  `cbi analyze` accepts both JSONL
  and binary spool files, and `cbi monitor --replay` additionally walks
  serve journals with full per-batch provenance.

  Ground-truth corpus: `cbi corpus generate` plants one labeled bug per
  program into seeded testgen programs and the ccrypt/bc workloads,
  validating each by an instrumented campaign, and writes
  <dir>/manifest.jsonl plus <dir>/programs/.  With --bugs N (2 or 3)
  it instead plants N interacting deterministic bugs per program and
  writes a schema-2 multi-bug manifest.  `cbi corpus evaluate` replays
  a campaign per entry across the density sweep, scoring elimination
  survival, regression rank, recall@k, and wasted effort against the
  manifest; --scorer swaps the float regression ranking for a pure
  integer statistical scorer (byte-identical at any --jobs).

  Iterative isolation: `cbi isolate` runs the paper's multi-bug
  redundancy-elimination loop — rank all predicates with --scorer
  (default ochiai), attribute the top predicate to a bug cluster,
  discard the failing runs it explains, re-rank, repeat until no
  failures remain.  Program mode streams a campaign over an input file
  and prints the per-iteration trace; --corpus mode sweeps every
  manifest entry across --densities x --scorers and scores cluster
  purity, per-bug rank, and iterations-to-isolation against planted
  ground truth.  All output is integer-only and byte-identical at any
  --jobs value.

  Fleet simulation: `cbi fleet` drives a seeded community of simulated
  clients through the whole remote pipeline — each client draws a
  sampling density from the --densities mix, possibly a single-function
  variant binary (--variant-fraction) or a stale version
  (--stale-fraction, rejected at the layout handshake and counted),
  picks inputs Zipf(--zipf)-skewed from the pool, spools reports, and
  transmits batches over a lossy channel (--drop/--truncate/--bit-flip
  per attempt, bounded retry with exponential backoff).  The server
  folds surviving batches into per-epoch aggregates (--epoch-len) and
  prints an integer-only summary that is byte-identical at any --jobs.
  With --corpus the fleet runs a generated corpus entry and tracks its
  planted bug's detection latency and rank against ground truth.

  Health monitoring: `cbi monitor` drives the same fleet (or replays a
  binary spool with --replay) and watches the epoch stream with seeded
  anomaly detectors — corruption spikes, rejection spikes, stale-version
  surges, and detection stalls, thresholds in integer per-mille
  (--corruption-pm etc.) after --warmup epochs.  It prints an
  integer-only health table; when any event fires it also dumps the
  server's flight recorder (the last --flight-cap ingest events).
  --prom-out writes a Prometheus text exposition of the deployment
  metrics and --timeline-out a JSONL epoch timeline; both flags also
  work on `cbi fleet` directly.  Every surface is byte-identical at any
  --jobs.";

/// Valueless boolean switches accepted by the subcommands.
const SWITCHES: &[&str] = &["global-countdown", "no-regions", "metrics"];

/// Dispatches a raw argument vector to a subcommand.
///
/// # Errors
///
/// Returns a user-facing message for any parse, I/O, or pipeline failure.
pub fn dispatch(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse_with_switches(raw, SWITCHES)?;
    match args.positional(0) {
        Some("instrument") => cmd_instrument(&args),
        Some("transform") => cmd_transform(&args),
        Some("disasm") => cmd_disasm(&args),
        Some("run") => cmd_run(&args),
        Some("campaign") => cmd_campaign(&args),
        Some("profile") => cmd_profile(&args),
        Some("analyze") => cmd_analyze(&args),
        Some("serve") => cmd_serve(&args),
        Some("transmit") => cmd_transmit(&args),
        Some("corpus") => cmd_corpus(&args),
        Some("isolate") => cmd_isolate(&args),
        Some("fleet") => cmd_fleet(&args),
        Some("monitor") => cmd_monitor(&args),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("missing subcommand".to_string()),
    }
}

fn load_program(args: &Args, at: usize) -> Result<Program, String> {
    let path = args
        .positional(at)
        .ok_or_else(|| "missing program file argument".to_string())?;
    let src = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = parse(&src).map_err(|e| format!("{path}: {e}"))?;
    resolve(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn scheme_of(args: &Args) -> Result<Scheme, String> {
    match args.flag("scheme").unwrap_or("checks") {
        "checks" => Ok(Scheme::Checks),
        "returns" => Ok(Scheme::Returns),
        "scalar-pairs" => Ok(Scheme::ScalarPairs),
        "branches" => Ok(Scheme::Branches),
        other => Err(format!(
            "unknown scheme `{other}` (expected checks, returns, scalar-pairs, or branches)"
        )),
    }
}

fn transform_options(args: &Args) -> TransformOptions {
    TransformOptions {
        countdown: if args.flag("global-countdown").is_some() {
            cbi::instrument::CountdownStorage::Global
        } else {
            cbi::instrument::CountdownStorage::Local
        },
        regions: args.flag("no-regions").is_none(),
        ..TransformOptions::default()
    }
}

fn cmd_instrument(args: &Args) -> Result<(), String> {
    let program = load_program(args, 1)?;
    let scheme = scheme_of(args)?;
    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    println!(
        "// {} sites, {} counters",
        inst.sites.len(),
        inst.sites.total_counters()
    );
    for site in &inst.sites {
        println!("// {}  [{}]", site.predicate_name(0), site.kind);
    }
    println!();
    println!("{}", pretty(&inst.program));
    Ok(())
}

fn cmd_transform(args: &Args) -> Result<(), String> {
    let program = load_program(args, 1)?;
    let scheme = scheme_of(args)?;
    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    let (sampled, stats) =
        apply_sampling(&inst.program, &transform_options(args)).map_err(|e| e.to_string())?;
    println!(
        "// {} site-containing functions, {} weightless, avg threshold weight {:.1}",
        stats.functions_with_sites(),
        stats.weightless_functions(),
        stats.avg_threshold_weight()
    );
    println!("{}", pretty(&sampled));
    Ok(())
}

/// Parses `--engine` (default: the bytecode dispatch engine).
fn engine_of(args: &Args) -> Result<Engine, String> {
    match args.flag("engine") {
        None => Ok(Engine::Bytecode),
        Some(name) => Engine::parse(name).ok_or_else(|| {
            format!("unknown engine `{name}` (expected bytecode, slot, or namemap)")
        }),
    }
}

/// `cbi disasm`: print the deterministic bytecode listing of a program,
/// optionally after instrumentation or the full sampling transformation.
fn cmd_disasm(args: &Args) -> Result<(), String> {
    let program = load_program(args, 1)?;
    let stage = args.flag("stage").unwrap_or("source");
    let lowered = match stage {
        "source" => cbi::minic::lower(&program),
        "instrument" => {
            let inst = instrument(&program, scheme_of(args)?).map_err(|e| e.to_string())?;
            cbi::minic::lower(&inst.program)
        }
        "sample" => {
            let inst = instrument(&program, scheme_of(args)?).map_err(|e| e.to_string())?;
            let (sampled, _) = apply_sampling(&inst.program, &transform_options(args))
                .map_err(|e| e.to_string())?;
            cbi::minic::lower(&sampled)
        }
        other => {
            return Err(format!(
                "unknown --stage `{other}` (expected source, instrument, or sample)"
            ))
        }
    };
    let bc = cbi::vm::bytecode::compile(&lowered);
    print!("{}", cbi::vm::bytecode::disassemble(&bc));
    Ok(())
}

fn parse_input(raw: &str) -> Result<Vec<i64>, String> {
    raw.split_whitespace()
        .map(|t| t.parse().map_err(|_| format!("bad input token `{t}`")))
        .collect()
}

/// Parses and validates `--jobs` (default 1).
fn jobs_of(args: &Args) -> Result<usize, String> {
    let jobs: usize = args.flag_or("jobs", 1)?;
    if jobs == 0 {
        return Err(
            "--jobs must be a positive integer (got 0); use --jobs 1 for serial execution"
                .to_string(),
        );
    }
    Ok(jobs)
}

/// Telemetry-related flags shared by `run`, `campaign`, and `profile`.
struct TelemetryOpts<'a> {
    summary: bool,
    metrics_out: Option<&'a str>,
    trace_out: Option<&'a str>,
}

impl<'a> TelemetryOpts<'a> {
    fn from_args(args: &'a Args) -> Self {
        TelemetryOpts {
            summary: args.flag("metrics").is_some(),
            metrics_out: args.flag("metrics-out"),
            trace_out: args.flag("trace-out"),
        }
    }

    fn wanted(&self) -> bool {
        self.summary || self.metrics_out.is_some() || self.trace_out.is_some()
    }

    /// Enables the telemetry sink if any output was requested.  Returns
    /// whether recording is on so callers can skip the collect step.
    fn begin(&self) -> bool {
        if self.wanted() {
            cbi::telemetry::reset();
            cbi::telemetry::enable();
        }
        self.wanted()
    }

    /// Collects buffered telemetry and writes every requested output:
    /// summary to stderr (report streams own stdout), JSONL metrics and
    /// chrome trace to their files.
    fn finish(&self) -> Result<cbi::telemetry::Metrics, String> {
        cbi::telemetry::disable();
        let metrics = cbi::telemetry::collect();
        if self.summary {
            eprint!("{}", cbi::telemetry::export::summary(&metrics));
        }
        if let Some(path) = self.metrics_out {
            let mut buf = Vec::new();
            cbi::telemetry::export::write_jsonl(&metrics, &mut buf).map_err(|e| e.to_string())?;
            fs::write(path, buf).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("metrics written to {path}");
        }
        if let Some(path) = self.trace_out {
            let mut buf = Vec::new();
            cbi::telemetry::export::write_chrome_trace(&metrics, &mut buf)
                .map_err(|e| e.to_string())?;
            fs::write(path, buf).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("chrome trace written to {path} (open in chrome://tracing)");
        }
        Ok(metrics)
    }
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let telemetry = TelemetryOpts::from_args(args);
    let recording = telemetry.begin();

    let (result, inst) = {
        let program = cbi::telemetry::time("phase.parse", || load_program(args, 1))?;
        let scheme = scheme_of(args)?;
        let density: u64 = args.flag_or("density", 100)?;
        let seed: u64 = args.flag_or("seed", 42)?;
        let engine = engine_of(args)?;
        let input = parse_input(args.flag("input").unwrap_or(""))?;

        let inst = cbi::telemetry::time("phase.instrument", || instrument(&program, scheme))
            .map_err(|e| e.to_string())?;
        let (sampled, _) = cbi::telemetry::time("phase.transform", || {
            apply_sampling(&inst.program, &transform_options(args))
        })
        .map_err(|e| e.to_string())?;
        let bank = CountdownBank::generate(SamplingDensity::one_in(density), 1024, seed);
        let result = cbi::telemetry::time("phase.execute", || {
            Vm::new(&sampled)
                .with_engine(engine)
                .with_sites(&inst.sites)
                .with_sampling(Box::new(bank))
                .with_input(input)
                .run()
        })
        .map_err(|e| e.to_string())?;
        (result, inst)
    };

    println!("outcome: {}", result.outcome);
    println!("ops: {}", result.ops);
    println!("output: {:?}", result.output);
    println!("observations:");
    for (i, &c) in result.counters.iter().enumerate() {
        if c > 0 {
            println!("  {:>6}x  {}", c, inst.sites.predicate_name(i));
        }
    }
    if recording {
        telemetry.finish()?;
    }
    Ok(())
}

/// Parses the shared campaign inputs: program, trial list, and config.
fn campaign_setup(args: &Args) -> Result<(Program, Vec<Vec<i64>>, CampaignConfig), String> {
    let program = cbi::telemetry::time("phase.parse", || load_program(args, 1))?;
    let inputs_path = args
        .positional(2)
        .ok_or_else(|| "missing inputs file".to_string())?;
    let scheme = scheme_of(args)?;
    let density: u64 = args.flag_or("density", 100)?;
    let seed: u64 = args.flag_or("seed", 42)?;
    let jobs = jobs_of(args)?;

    let raw =
        fs::read_to_string(inputs_path).map_err(|e| format!("cannot read {inputs_path}: {e}"))?;
    let trials: Vec<Vec<i64>> = raw
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_input)
        .collect::<Result<_, _>>()?;

    let mut config = CampaignConfig::sampled(scheme, SamplingDensity::one_in(density))
        .with_jobs(jobs)
        .with_engine(engine_of(args)?);
    config.seed = seed;
    Ok((program, trials, config))
}

/// Parses the shared campaign inputs and runs the campaign with phase
/// spans around parse and execution.
fn run_campaign_from_args(args: &Args) -> Result<cbi::workloads::CampaignResult, String> {
    let (program, trials, config) = campaign_setup(args)?;
    cbi::telemetry::time("phase.campaign", || {
        run_campaign(&program, &trials, &config)
    })
    .map_err(|e| e.to_string())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let telemetry = TelemetryOpts::from_args(args);
    let recording = telemetry.begin();

    let (program, trials, config) = campaign_setup(args)?;

    // Reports land in the collector (for the summary and JSONL outputs)
    // and simultaneously in an optional spool file and transmit socket.
    let spool = match args.flag("spool") {
        Some(path) => {
            Some(SpoolSink::create(path).map_err(|e| format!("cannot create spool {path}: {e}"))?)
        }
        None => None,
    };
    let transmit = match args.flag("transmit") {
        Some(addr) => Some(
            TransmitSink::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?,
        ),
        None => None,
    };
    let remote = spool.is_some() || transmit.is_some();
    let mut sink = (Collector::default(), (spool, transmit));

    let run = cbi::telemetry::time("phase.campaign", || {
        run_campaign_into(&program, &trials, &config, &mut sink)
    })
    .map_err(|e| e.to_string())?;
    let (collector, (spool, transmit)) = sink;

    eprintln!(
        "{} runs: {} success, {} failure, {} dropped",
        collector.len(),
        collector.success_count(),
        collector.failure_count(),
        run.dropped
    );
    if let (Some(path), Some(s)) = (args.flag("spool"), &spool) {
        eprintln!(
            "{} reports ({} bytes) spooled to {path}",
            s.reports_written(),
            s.bytes_written()
        );
    }
    if let (Some(addr), Some(t)) = (args.flag("transmit"), &transmit) {
        eprintln!(
            "{} reports ({} bytes) transmitted to {addr}",
            t.reports_written(),
            t.bytes_written()
        );
    }

    match args.flag("out") {
        Some(path) => {
            let mut buf = Vec::new();
            collector.write_jsonl(&mut buf).map_err(|e| e.to_string())?;
            fs::write(path, buf).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("reports written to {path}");
        }
        // With a spool or transmit destination the reports already went
        // somewhere durable; only bare campaigns dump JSONL to stdout.
        None if !remote => {
            collector
                .write_jsonl(std::io::stdout().lock())
                .map_err(|e| e.to_string())?;
        }
        None => {}
    }
    if recording {
        telemetry.finish()?;
    }
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let file = args
        .positional(1)
        .ok_or_else(|| "missing program file argument".to_string())?
        .to_string();
    let analyze = args.flag("analyze").unwrap_or("eliminate");
    if !matches!(analyze, "eliminate" | "regress" | "none") {
        return Err(format!(
            "unknown --analyze mode `{analyze}` (expected eliminate, regress, or none)"
        ));
    }
    let telemetry = TelemetryOpts::from_args(args);

    // `profile` is the always-on variant: telemetry records regardless of
    // the output flags.
    cbi::telemetry::reset();
    cbi::telemetry::enable();
    let result = run_campaign_from_args(args)?;
    match analyze {
        "eliminate" => {
            let _ = cbi::eliminate(&result);
        }
        "regress" => {
            let n = result.collector.len();
            let _ = cbi::regress(&result, &RegressionConfig::paper_proportions(n))
                .map_err(|e| e.to_string())?;
        }
        _ => {}
    }
    let metrics = telemetry.finish()?;

    print_profile(&file, &result, &metrics, jobs_of(args)?);
    Ok(())
}

/// Renders the `cbi profile` breakdown: per-phase wall-clock, per-worker
/// shard statistics, and VM/sampling totals.
fn print_profile(
    file: &str,
    result: &cbi::workloads::CampaignResult,
    m: &cbi::telemetry::Metrics,
    jobs: usize,
) {
    use cbi::telemetry::export::{fmt_ns, worker_name};

    println!(
        "profile: {file} — {} runs ({} success, {} failure, {} dropped), jobs={jobs}",
        result.collector.len() + result.dropped,
        result.collector.success_count(),
        result.collector.failure_count(),
        result.dropped,
    );

    println!();
    println!("phases:");
    let phases = m.span_summary();
    let width = phases.iter().map(|(n, _, _)| n.len()).max().unwrap_or(0);
    for (name, count, total_ns) in &phases {
        println!("  {name:<width$}  {:>12}  x{count}", fmt_ns(*total_ns));
    }

    println!();
    println!("workers:");
    println!(
        "  {:<12}  {:>8}  {:>8}  {:>12}  {:>12}",
        "worker", "trials", "dropped", "queue-wait", "shard wall"
    );
    for worker in m.per_worker.keys() {
        let trials = m.worker_counter(*worker, "campaign.trials");
        if trials == 0 {
            continue;
        }
        let shard_ns: u64 = m
            .spans
            .iter()
            .filter(|s| s.worker == *worker && s.name == "campaign.shard")
            .map(|s| s.dur_ns)
            .sum();
        println!(
            "  {:<12}  {:>8}  {:>8}  {:>12}  {:>12}",
            worker_name(*worker),
            trials,
            m.worker_counter(*worker, "campaign.dropped"),
            fmt_ns(m.worker_counter(*worker, "campaign.queue_wait_ns")),
            fmt_ns(shard_ns),
        );
    }

    println!();
    println!("vm totals:");
    println!(
        "  runs {}   steps {}   ops {}",
        m.counter("vm.runs"),
        m.counter("vm.steps"),
        m.counter("vm.ops"),
    );
    println!(
        "  region entries: {} fast-path, {} slow-path",
        m.counter("vm.region.fast_entries"),
        m.counter("vm.region.slow_entries"),
    );
    println!(
        "  sampling: {} samples taken, {} countdown refills, {} bank reseeds",
        m.counter("vm.samples_taken"),
        m.counter("sampler.refills"),
        m.counter("sampler.bank_reseeds"),
    );
    if let Some(h) = m.histogram("vm.ops_per_run") {
        println!(
            "  ops per run: mean {:.0}, p50~{}, p99~{}, max {}",
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99),
            h.max,
        );
    }
}

/// Renders an elimination report in the shared format used by `analyze`
/// and `serve`, so local and remote analyses diff cleanly.
fn print_elimination(report: &EliminationReport) {
    let [uf, cov, ex, sc] = report.independent_survivors;
    println!("universal falsehood:        {uf} survivors");
    println!("lack of failing coverage:   {cov} survivors");
    println!("lack of failing example:    {ex} survivors");
    println!("successful counterexample:  {sc} survivors");
    println!("combined (falsehood ∧ counterexample):");
    for name in &report.combined_names {
        println!("  {name}");
    }
}

/// Renders a regression study in the shared format used by `analyze`
/// and `serve`.
fn print_regression(study: &RegressionStudy) {
    println!(
        "lambda {} (cv), test accuracy {:.3}, {} effective features",
        study.lambda, study.test_accuracy, study.effective_features
    );
    for (i, (name, beta)) in study.top(10).iter().enumerate() {
        println!("{:>3}. beta={beta:+.4}  {name}", i + 1);
    }
}

/// Loads a report archive, accepting both JSONL and the binary spool
/// format (detected by the `CBIR` magic).  Returns the collector and,
/// for binary spools, the stream's layout hash.
fn load_reports(path: &str) -> Result<(Collector, Option<u64>), String> {
    let raw = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if raw.starts_with(&wire::MAGIC) {
        let (collector, header) =
            wire::read_collector(raw.as_slice()).map_err(|e| format!("{path}: {e}"))?;
        Ok((collector, Some(header.layout_hash)))
    } else {
        let collector =
            Collector::read_jsonl(raw.as_slice()).map_err(|e| format!("{path}: {e}"))?;
        Ok((collector, None))
    }
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let reports_path = args
        .positional(1)
        .ok_or_else(|| "missing reports file".to_string())?;
    let program = load_program(args, 2)?;
    let scheme = scheme_of(args)?;
    let mode = args.flag("mode").unwrap_or("eliminate");

    let (collector, spool_hash) = load_reports(reports_path)?;
    eprintln!(
        "{} reports ({} failures)",
        collector.len(),
        collector.failure_count()
    );

    // Rebuild the site table so predicates can be named; the counter
    // layout must match the instrumented binary that produced the reports.
    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    if inst.sites.total_counters() != collector.counter_count() {
        return Err(format!(
            "report layout mismatch: program has {} counters, reports have {}",
            inst.sites.total_counters(),
            collector.counter_count()
        ));
    }
    // Binary spools carry the producer's layout hash: reject a stream
    // recorded from a different instrumented binary even when the counter
    // counts coincide.
    if let Some(got) = spool_hash {
        let expected = inst.sites.layout_hash();
        if got != expected {
            return Err(format!(
                "report layout mismatch: spool was recorded from a different \
                 instrumented binary (layout hash {got:#018x}, program has {expected:#018x})"
            ));
        }
    }
    let result = cbi::workloads::CampaignResult {
        instrumented: inst,
        collector,
        dropped: 0,
    };

    match mode {
        "eliminate" => print_elimination(&cbi::eliminate(&result)),
        "regress" => {
            let n = result.collector.len();
            let study = cbi::regress(&result, &RegressionConfig::paper_proportions(n))
                .map_err(|e| e.to_string())?;
            print_regression(&study);
        }
        other => return Err(format!("unknown mode `{other}`")),
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let program = load_program(args, 1)?;
    let scheme = scheme_of(args)?;
    let addr = args.flag("addr").unwrap_or("127.0.0.1:0");

    // Every flag is validated before the listener binds, so a typo
    // never claims a port.  --max-conns survives as a deprecated alias
    // for --max-clients.
    let max_clients: u64 = match (args.flag("max-clients"), args.flag("max-conns")) {
        (Some(_), _) => args.flag_or("max-clients", 1u64)?,
        (None, Some(_)) => {
            let n = args.flag_or("max-conns", 1u64)?;
            if n == 0 {
                return Err("--max-conns must be a positive integer (got 0)".to_string());
            }
            eprintln!("note: --max-conns is deprecated; use --max-clients");
            n
        }
        (None, None) => 1,
    };
    if max_clients == 0 {
        return Err("--max-clients must be a positive integer (got 0)".to_string());
    }
    let mode = args.flag("mode").unwrap_or("eliminate");
    if !matches!(mode, "eliminate" | "regress" | "both") {
        return Err(format!(
            "unknown --mode `{mode}` (expected eliminate, regress, or both)"
        ));
    }
    let shards: usize = args.flag_or("shards", 1usize)?;
    if shards == 0 {
        return Err("--shards must be a positive integer (got 0)".to_string());
    }
    let queue_cap: usize = args.flag_or("queue-cap", 64usize)?;
    if queue_cap == 0 {
        return Err("--queue-cap must be a positive integer (got 0)".to_string());
    }
    let epoch_len: u64 = args.flag_or("epoch-len", 256u64)?;
    if epoch_len == 0 {
        return Err("--epoch-len must be a positive integer (got 0)".to_string());
    }
    let acceptors: usize = args.flag_or("acceptors", 0usize)?;
    let fsync = match args.flag("fsync") {
        Some(s) => cbi_serve::FsyncPolicy::parse(s).map_err(|e| format!("--fsync: {e}"))?,
        None => cbi_serve::FsyncPolicy::EveryBatch,
    };
    if args.flag("journal").is_some() && args.flag("resume").is_some() {
        return Err(
            "--journal and --resume are mutually exclusive (--resume reopens an existing journal)"
                .to_string(),
        );
    }
    let telemetry = TelemetryOpts::from_args(args);
    let recording = telemetry.begin();

    // The server pins the layout of the binary it was started for:
    // clients built from anything else are rejected at the handshake.
    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    let config = cbi_serve::ServeConfig {
        shards,
        queue_cap,
        epoch_len,
        streaming: StreamingConfig::default(),
        flight_capacity: args.flag_or("flight-cap", 64usize)?,
        target_counter: None,
        keep_reports: args.flag("spool").is_some() || matches!(mode, "regress" | "both"),
    };
    let core = cbi_serve::IngestCore::new(inst.sites.clone(), config).map_err(|e| e.to_string())?;
    let core = match (args.flag("journal"), args.flag("resume")) {
        (Some(path), None) => core.with_journal(path, fsync).map_err(|e| e.to_string())?,
        (None, Some(path)) => core.resume(path, fsync).map_err(|e| e.to_string())?,
        _ => core,
    };

    let options = cbi_serve::ServerOptions {
        acceptors,
        max_clients,
    };
    let server = cbi_serve::TcpIngestServer::bind(core, addr, options)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!("listening on {bound}");
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    let outcome = server.run().map_err(|e| e.to_string())?;
    eprint!("{}", outcome.summary.render());

    if let Some(path) = args.flag("spool") {
        let collector = outcome
            .collector
            .as_ref()
            .expect("keep_reports is set whenever --spool is");
        let mut spool =
            SpoolSink::create(path).map_err(|e| format!("cannot create spool {path}: {e}"))?;
        spool
            .begin(ReportLayout {
                counters: inst.sites.total_counters(),
                layout_hash: inst.sites.layout_hash(),
            })
            .map_err(|e| e.to_string())?;
        for report in collector.reports() {
            spool.accept(report.clone()).map_err(|e| e.to_string())?;
        }
        spool.finish().map_err(|e| e.to_string())?;
        eprintln!("{} reports spooled to {path}", spool.reports_written());
    }

    // The canonical analysis (byte-identical at any shard count), then
    // the shared elimination/regression blocks `cbi analyze` also
    // prints, so local and remote analyses diff cleanly.
    print!("{}", cbi_serve::render_analysis(&outcome.aggregator, 10));
    if matches!(mode, "eliminate" | "both") {
        print_elimination(&outcome.aggregator.analyzer().eliminate(&inst.sites));
    }
    if matches!(mode, "regress" | "both") {
        let collector = outcome
            .collector
            .expect("keep_reports is set for regression modes");
        let n = collector.len();
        let result = cbi::workloads::CampaignResult {
            instrumented: inst,
            collector,
            dropped: 0,
        };
        let study = cbi::regress(&result, &RegressionConfig::paper_proportions(n))
            .map_err(|e| e.to_string())?;
        print_regression(&study);
    }
    if recording {
        telemetry.finish()?;
    }
    Ok(())
}

fn cmd_transmit(args: &Args) -> Result<(), String> {
    let reports_path = args
        .positional(1)
        .ok_or_else(|| "missing reports file".to_string())?;
    let addr = args
        .flag("to")
        .ok_or_else(|| "missing --to HOST:PORT".to_string())?;

    let (collector, spool_hash) = load_reports(reports_path)?;
    // The stream header needs the producing binary's layout hash: binary
    // spools carry it; JSONL archives need the program to recompute it.
    let layout_hash = match (spool_hash, args.positional(2)) {
        (_, Some(_)) => {
            let program = load_program(args, 2)?;
            let inst = instrument(&program, scheme_of(args)?).map_err(|e| e.to_string())?;
            if inst.sites.total_counters() != collector.counter_count() {
                return Err(format!(
                    "report layout mismatch: program has {} counters, reports have {}",
                    inst.sites.total_counters(),
                    collector.counter_count()
                ));
            }
            inst.sites.layout_hash()
        }
        (Some(hash), None) => hash,
        (None, None) => {
            return Err(
                "JSONL archives carry no layout hash; pass the instrumented \
                 program as `cbi transmit <reports.jsonl> --to ADDR <file.mc>`"
                    .to_string(),
            )
        }
    };

    let mut sink =
        TransmitSink::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    sink.begin(ReportLayout {
        counters: collector.counter_count(),
        layout_hash,
    })
    .map_err(|e| e.to_string())?;
    for report in collector.reports() {
        sink.accept(report.clone()).map_err(|e| e.to_string())?;
    }
    sink.finish().map_err(|e| e.to_string())?;
    eprintln!(
        "{} reports ({} bytes) transmitted to {addr}",
        sink.reports_written(),
        sink.bytes_written()
    );
    Ok(())
}

fn cmd_corpus(args: &Args) -> Result<(), String> {
    match args.positional(1) {
        Some("generate") => cmd_corpus_generate(args),
        Some("evaluate") => cmd_corpus_evaluate(args),
        Some(other) => Err(format!(
            "unknown corpus action `{other}` (expected generate or evaluate)"
        )),
        None => Err("missing corpus action (expected generate or evaluate)".to_string()),
    }
}

fn corpus_dir(args: &Args) -> Result<&str, String> {
    args.positional(2)
        .ok_or_else(|| "missing corpus directory argument".to_string())
}

fn cmd_corpus_generate(args: &Args) -> Result<(), String> {
    let dir = corpus_dir(args)?;
    let bugs: usize = args.flag_or("bugs", 1usize)?;
    if bugs > 1 {
        return cmd_corpus_generate_multi(args, dir, bugs);
    }
    let config = cbi_corpus::GenerateConfig {
        size: args.flag_or("size", 100usize)?,
        seed: args.flag_or("seed", 0xc0deu64)?,
        trials: args.flag_or("trials", 48usize)?,
    };
    if config.size == 0 || config.trials == 0 {
        return Err("--size and --trials must be positive".to_string());
    }
    let corpus = cbi_corpus::generate_corpus(&config).map_err(|e| e.to_string())?;
    for note in &corpus.log {
        eprintln!("note: {note}");
    }
    cbi_corpus::write_corpus(std::path::Path::new(dir), &corpus).map_err(|e| e.to_string())?;
    let dets = corpus
        .entries
        .iter()
        .filter(|e| e.bug.deterministic())
        .count();
    println!(
        "{} entries written to {dir} ({} deterministic, {} input-conditioned or sampling-dependent)",
        corpus.entries.len(),
        dets,
        corpus.entries.len() - dets
    );
    Ok(())
}

fn cmd_corpus_evaluate(args: &Args) -> Result<(), String> {
    let dir = corpus_dir(args)?;
    let densities: Vec<u64> = args
        .flag("densities")
        .unwrap_or("1,10,100,1000")
        .split(',')
        .map(|t| {
            let t = t.trim();
            t.parse::<u64>()
                .ok()
                .filter(|&d| d > 0)
                .ok_or_else(|| format!("bad density `{t}` (expected positive integers)"))
        })
        .collect::<Result<_, _>>()?;
    let config = cbi_corpus::EvalConfig {
        densities,
        jobs: jobs_of(args)?,
        engine: engine_of(args)?,
        scorer: args.flag("scorer").map(str::to_string),
    };
    let entries = cbi_corpus::load_corpus(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    eprintln!("evaluating {} entries from {dir}", entries.len());
    let report = cbi_corpus::evaluate(&entries, &config).map_err(|e| e.to_string())?;

    let rendered = cbi_corpus::render_report(&report);
    match args.flag("out") {
        Some(path) => {
            fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("score report written to {path}");
        }
        None => print!("{rendered}"),
    }
    let summary = cbi_corpus::render_summary(&report);
    match args.flag("summary-out") {
        Some(path) => {
            fs::write(path, &summary).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("summary written to {path}");
        }
        None => print!("{summary}"),
    }
    Ok(())
}

fn cmd_corpus_generate_multi(args: &Args, dir: &str, bugs: usize) -> Result<(), String> {
    let config = cbi_corpus::MultiGenerateConfig {
        size: args.flag_or("size", 12usize)?,
        seed: args.flag_or("seed", 0xc0deu64)?,
        trials: args.flag_or("trials", 96usize)?,
        bugs_per_entry: bugs,
    };
    if config.size == 0 || config.trials == 0 {
        return Err("--size and --trials must be positive".to_string());
    }
    let corpus = cbi_corpus::generate_multi_corpus(&config).map_err(|e| e.to_string())?;
    for note in &corpus.log {
        eprintln!("note: {note}");
    }
    cbi_corpus::write_corpus(std::path::Path::new(dir), &corpus).map_err(|e| e.to_string())?;
    let faults: usize = corpus.entries.iter().map(|e| e.bug.faults.len()).sum();
    println!(
        "{} multi-bug entries written to {dir} ({} planted faults, schema {})",
        corpus.entries.len(),
        faults,
        cbi_corpus::MANIFEST_SCHEMA
    );
    Ok(())
}

/// Comma-separated scorer names, each validated against the registry.
fn scorer_list(args: &Args, default: &str) -> Result<Vec<String>, String> {
    args.flag("scorers")
        .unwrap_or(default)
        .split(',')
        .map(|t| {
            let t = t.trim();
            cbi_scoring::scorer_by_name(t)
                .map(|_| t.to_string())
                .ok_or_else(|| {
                    format!(
                        "unknown scorer `{t}` (expected one of {})",
                        cbi_scoring::SCORER_NAMES.join(", ")
                    )
                })
        })
        .collect()
}

fn cmd_isolate(args: &Args) -> Result<(), String> {
    if let Some(dir) = args.flag("corpus") {
        return cmd_isolate_corpus(args, dir);
    }
    let (program, trials, config) = campaign_setup(args)?;
    let scheme = scheme_of(args)?;
    let scorer_name = args.flag("scorer").unwrap_or("ochiai");
    let scorer = cbi_scoring::scorer_by_name(scorer_name).ok_or_else(|| {
        format!(
            "unknown scorer `{scorer_name}` (expected one of {})",
            cbi_scoring::SCORER_NAMES.join(", ")
        )
    })?;
    let top: usize = args.flag_or("top", 5usize)?;

    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    let sites = &inst.sites;
    let groups: Vec<(usize, usize)> = sites
        .iter()
        .map(|s| (s.counter_base, s.kind.arity()))
        .collect();

    let mut index = cbi_scoring::FailureIndex::new();
    run_campaign_into(&program, &trials, &config, &mut index).map_err(|e| e.to_string())?;
    eprintln!(
        "{} runs: {} failing retained, {} successes folded",
        index.failure_runs() + index.success_runs(),
        index.failure_runs(),
        index.success_runs()
    );

    let run = cbi_scoring::isolate(&index, &groups, scorer);
    println!("isolation trace ({} scorer, scores in per-mille):", run.scorer);
    println!();
    println!("initial ranking (top {top}):");
    for &(c, score) in run.initial_ranking.iter().take(top) {
        println!("  {score:>6}  {}", sites.predicate_name(c));
    }
    println!();
    if run.steps.is_empty() {
        println!("no iterations: no positively-scored predicate covers a failure");
    }
    for step in &run.steps {
        println!(
            "iteration {}: {} failing runs -> {}",
            step.iteration, step.failures_before, step.failures_after
        );
        println!(
            "  bug cluster: {} runs explained by [{}] (score {})",
            step.cluster.trials.len(),
            sites.predicate_name(step.cluster.counter),
            step.cluster.score
        );
    }
    println!();
    if run.is_complete() {
        println!(
            "complete: every failing run attributed in {} iterations",
            run.iterations()
        );
    } else {
        println!(
            "{} failing runs unexplained (trials {:?})",
            run.unexplained.len(),
            run.unexplained
        );
    }
    Ok(())
}

fn cmd_isolate_corpus(args: &Args, dir: &str) -> Result<(), String> {
    let densities: Vec<u64> = args
        .flag("densities")
        .unwrap_or("1,10,100")
        .split(',')
        .map(|t| {
            let t = t.trim();
            t.parse::<u64>()
                .ok()
                .filter(|&d| d > 0)
                .ok_or_else(|| format!("bad density `{t}` (expected positive integers)"))
        })
        .collect::<Result<_, _>>()?;
    let config = cbi_corpus::MultiEvalConfig {
        densities,
        scorers: scorer_list(args, "ochiai,importance")?,
        jobs: jobs_of(args)?,
        engine: engine_of(args)?,
    };
    let entries = cbi_corpus::load_corpus(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    eprintln!("isolating {} entries from {dir}", entries.len());
    let report = cbi_corpus::evaluate_multi(&entries, &config).map_err(|e| e.to_string())?;

    let rendered = cbi_corpus::render_multi_report(&report);
    match args.flag("out") {
        Some(path) => {
            fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("isolation report written to {path}");
        }
        None => print!("{rendered}"),
    }
    if let Some(path) = args.flag("summary-out") {
        let summary = cbi_corpus::render_multi_summary(&report);
        fs::write(path, &summary).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("summary written to {path}");
    }
    Ok(())
}

/// Parses the `--densities` mix: `100:1,1000:3` pairs (weight defaults
/// to 1 when omitted, as in `100,1000`).
fn density_mix(args: &Args) -> Result<Vec<(u64, f64)>, String> {
    args.flag("densities")
        .unwrap_or("100")
        .split(',')
        .map(|t| {
            let t = t.trim();
            let (den, weight) = match t.split_once(':') {
                Some((d, w)) => (d, w),
                None => (t, "1"),
            };
            let d = den
                .parse::<u64>()
                .ok()
                .filter(|&d| d > 0)
                .ok_or_else(|| format!("bad density `{t}` (expected D or D:WEIGHT)"))?;
            let w = weight
                .parse::<f64>()
                .ok()
                .filter(|w| w.is_finite() && *w > 0.0)
                .ok_or_else(|| format!("bad density weight `{t}` (expected D:WEIGHT)"))?;
            Ok((d, w))
        })
        .collect()
}

/// Builds a [`cbi_fleet::FleetSpec`] from the shared fleet flags.
fn fleet_spec(args: &Args) -> Result<cbi_fleet::FleetSpec, String> {
    let clients = args.flag_or("clients", 32usize)?;
    let runs = args.flag_or("runs", 2000usize)?;
    let fraction = |name: &str| -> Result<f64, String> {
        let v: f64 = args.flag_or(name, 0.0)?;
        if (0.0..=1.0).contains(&v) {
            Ok(v)
        } else {
            Err(format!("--{name} must be in [0, 1], got {v}"))
        }
    };
    let mut spec = cbi_fleet::FleetSpec::new(clients, runs);
    spec.batch_size = args.flag_or("batch-size", 16usize)?;
    spec.epoch_len = args.flag_or("epoch-len", 256u64)?;
    spec.zipf_exponent = args.flag_or("zipf", 0.0f64)?;
    spec.densities = density_mix(args)?;
    spec.variant_fraction = fraction("variant-fraction")?;
    spec.stale_fraction = fraction("stale-fraction")?;
    spec.scheme = scheme_of(args)?;
    spec.channel = cbi_fleet::ChannelSpec {
        drop: fraction("drop")?,
        truncate: fraction("truncate")?,
        bit_flip: fraction("bit-flip")?,
        max_retries: args.flag_or("max-retries", 3u32)?,
        backoff_base: args.flag_or("backoff-base", 1u64)?,
    };
    spec.seed = args.flag_or("seed", 0x5eedu64)?;
    spec.jobs = jobs_of(args)?;
    spec.flight_recorder = args.flag_or("flight-cap", 64usize)?;
    spec.engine = engine_of(args)?;
    Ok(spec)
}

/// Runs the fleet described by the shared fleet flags (program or
/// `--corpus` mode).  Returns the report and whether a ground-truth
/// target was tracked.
fn fleet_report(args: &Args) -> Result<(cbi_fleet::FleetReport, bool), String> {
    if let Some(dir) = args.flag("corpus") {
        let entries =
            cbi_corpus::load_corpus(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
        let entry = match args.flag("entry") {
            Some(id) => entries
                .iter()
                .find(|e| e.bug.id == id)
                .ok_or_else(|| format!("no corpus entry `{id}` in {dir}"))?,
            None => entries
                .first()
                .ok_or_else(|| format!("corpus {dir} is empty"))?,
        };
        let spec = fleet_spec(args)?;
        let pool = args.flag_or("pool", 128usize)?;
        eprintln!(
            "fleet vs corpus entry {} ({}, {})",
            entry.bug.id,
            entry.bug.operator_label(),
            entry.bug.primary().trigger
        );
        let report = cbi::telemetry::time("phase.fleet", || {
            cbi_fleet::run_corpus_fleet(entry, pool, &spec)
        })
        .map_err(|e| e.to_string())?;
        Ok((report, true))
    } else {
        let program = cbi::telemetry::time("phase.parse", || load_program(args, 1))?;
        let inputs_path = args
            .positional(2)
            .ok_or_else(|| "missing inputs file (the community's input pool)".to_string())?;
        let raw = fs::read_to_string(inputs_path)
            .map_err(|e| format!("cannot read {inputs_path}: {e}"))?;
        let pool: Vec<Vec<i64>> = raw
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(parse_input)
            .collect::<Result<_, _>>()?;
        let spec = fleet_spec(args)?;
        let target = match args.flag("target") {
            Some(needle) => {
                let sites = instrument(&program, spec.scheme)
                    .map_err(|e| e.to_string())?
                    .sites;
                let c = (0..sites.total_counters())
                    .find(|&c| sites.predicate_name(c).contains(needle))
                    .ok_or_else(|| format!("no predicate matching `{needle}`"))?;
                eprintln!("target: {}", sites.predicate_name(c));
                Some(c)
            }
            None => None,
        };
        let tracked = target.is_some();
        let report = cbi::telemetry::time("phase.fleet", || {
            cbi_fleet::run_fleet(&program, &pool, &spec, target)
        })
        .map_err(|e| e.to_string())?;
        Ok((report, tracked))
    }
}

/// Drives the fleet against a live `cbi serve` ingest server instead of
/// the in-memory channel fold.  The committed set — and therefore the
/// server's analysis — is coin-for-coin identical to the in-memory run
/// of the same spec.
fn socket_fleet(args: &Args, addr: &str) -> Result<(), String> {
    if args.flag("corpus").is_some() {
        return Err(
            "--serve drives a program fleet over a socket; --corpus is not supported".into(),
        );
    }
    let program = cbi::telemetry::time("phase.parse", || load_program(args, 1))?;
    let inputs_path = args
        .positional(2)
        .ok_or_else(|| "missing inputs file (the community's input pool)".to_string())?;
    let raw =
        fs::read_to_string(inputs_path).map_err(|e| format!("cannot read {inputs_path}: {e}"))?;
    let pool: Vec<Vec<i64>> = raw
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_input)
        .collect::<Result<_, _>>()?;
    let spec = fleet_spec(args)?;
    let ack_drop: f64 = args.flag_or("ack-drop", 0.0)?;
    if !(0.0..=1.0).contains(&ack_drop) {
        return Err(format!("--ack-drop must be in [0, 1], got {ack_drop}"));
    }
    let streams: usize = args.flag_or("streams", 8usize)?;
    if streams == 0 {
        return Err("--streams must be a positive integer (got 0)".to_string());
    }
    let options = cbi_fleet::SocketOptions { ack_drop, streams };
    let summary = cbi::telemetry::time("phase.fleet", || {
        cbi_fleet::run_fleet_over_socket(&program, &pool, &spec, addr, &options)
    })
    .map_err(|e| e.to_string())?;
    let rendered = summary.render();
    match args.flag("summary-out") {
        Some(path) => {
            fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("fleet summary written to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

fn cmd_fleet(args: &Args) -> Result<(), String> {
    let telemetry = TelemetryOpts::from_args(args);
    let recording = telemetry.begin();

    if let Some(addr) = args.flag("serve") {
        socket_fleet(args, addr)?;
        if recording {
            telemetry.finish()?;
        }
        return Ok(());
    }

    let (report, target_tracked) = fleet_report(args)?;

    if let Some(rank) = report.target_rank {
        eprintln!("target rank: {rank} (0-based, regression ordering)");
    }
    let summary = cbi_fleet::render_summary(&report.summary, &report.epochs);
    match args.flag("summary-out") {
        Some(path) => {
            fs::write(path, &summary).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("fleet summary written to {path}");
        }
        None => print!("{summary}"),
    }

    // The deployment-metric exports ride along without the full monitor:
    // a default-config health pass supplies the detector gauges.
    if args.flag("prom-out").is_some() || args.flag("timeline-out").is_some() {
        let mut monitor = cbi::HealthMonitor::new(health_config(args)?, target_tracked);
        monitor.observe_all(&report.epochs);
        let registry = cbi::health_registry(&report.aggregator, &monitor);
        write_metric_exports(args, &registry)?;
    }

    if recording {
        telemetry.finish()?;
    }
    Ok(())
}

/// Builds a [`cbi::HealthConfig`] from the detector-threshold flags.
fn health_config(args: &Args) -> Result<cbi::HealthConfig, String> {
    let defaults = cbi::HealthConfig::default();
    let config = cbi::HealthConfig {
        warmup_epochs: args.flag_or("warmup", defaults.warmup_epochs)?,
        corruption_spike_pm: args.flag_or("corruption-pm", defaults.corruption_spike_pm)?,
        rejection_spike_pm: args.flag_or("rejection-pm", defaults.rejection_spike_pm)?,
        stale_surge_pm: args.flag_or("stale-pm", defaults.stale_surge_pm)?,
        stall_epochs: args.flag_or("stall-epochs", defaults.stall_epochs)?,
        ..defaults
    };
    if config.stall_epochs == 0 {
        return Err("--stall-epochs must be a positive integer (got 0)".to_string());
    }
    Ok(config)
}

/// Writes the `--prom-out` / `--timeline-out` exports of a registry.
fn write_metric_exports(args: &Args, registry: &cbi::telemetry::Registry) -> Result<(), String> {
    if let Some(path) = args.flag("prom-out") {
        let mut buf = Vec::new();
        cbi::telemetry::export::write_prometheus(registry, &mut buf).map_err(|e| e.to_string())?;
        fs::write(path, buf).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("prometheus metrics written to {path}");
    }
    if let Some(path) = args.flag("timeline-out") {
        let mut buf = Vec::new();
        cbi::telemetry::export::write_timeline(registry, &mut buf).map_err(|e| e.to_string())?;
        fs::write(path, buf).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("epoch timeline written to {path}");
    }
    Ok(())
}

/// Replays a binary spool through a fresh [`cbi::EpochAggregator`]: the
/// stream's reports fold in spool order, and every `--batch-size`
/// reports are accounted as one clean batch (spools carry no channel
/// provenance, so the transport-side counters stay at their floor).
fn replay_spool(args: &Args, path: &str) -> Result<cbi::EpochAggregator, String> {
    use cbi::reports::{DecodeOutcome, Provenance};

    let program = load_program(args, 1)?;
    let inst = instrument(&program, scheme_of(args)?).map_err(|e| e.to_string())?;
    let layout = ReportLayout {
        counters: inst.sites.total_counters(),
        layout_hash: inst.sites.layout_hash(),
    };
    let epoch_len: u64 = args.flag_or("epoch-len", 256u64)?;
    if epoch_len == 0 {
        return Err("--epoch-len must be a positive integer (got 0)".to_string());
    }
    let batch_size: u64 = args.flag_or("batch-size", 16u64)?;
    if batch_size == 0 {
        return Err("--batch-size must be a positive integer (got 0)".to_string());
    }

    let file = fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut reader =
        wire::WireReader::new(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    reader
        .expect_layout(layout.layout_hash, layout.counters)
        .map_err(|e| format!("{path}: {e}"))?;

    let mut aggregator = cbi::EpochAggregator::new(
        inst.sites.clone(),
        epoch_len,
        StreamingConfig::default(),
        None,
    )
    .with_flight_capacity(args.flag_or("flight-cap", 64usize)?);
    aggregator.begin(layout).map_err(|e| e.to_string())?;

    loop {
        let mut group = Vec::new();
        let before = reader.bytes_read();
        while (group.len() as u64) < batch_size {
            match reader.read_report().map_err(|e| format!("{path}: {e}"))? {
                Some(report) => group.push(report),
                None => break,
            }
        }
        if group.is_empty() {
            break;
        }
        // Batch accounting lands before its reports, mirroring the live
        // ingest order (the server notes the delivery, then commits).
        aggregator.note_batch(
            &Provenance::new(0, 0),
            DecodeOutcome::Clean,
            reader.bytes_read() - before,
        );
        for report in group {
            aggregator.accept(report).map_err(|e| e.to_string())?;
        }
    }
    eprintln!(
        "{} reports ({} bytes) replayed from {path}",
        reader.reports_read(),
        reader.bytes_read()
    );
    if aggregator
        .snapshots()
        .last()
        .is_none_or(|s| s.runs != aggregator.runs())
    {
        aggregator.snapshot_now();
    }
    Ok(aggregator)
}

/// Replays a `cbi serve` journal (detected by the `CBIJ` magic) through
/// the server's own ordered fold, read-only: intact records fold with
/// their real per-envelope provenance (client id, attempt), so the
/// flight recorder and retry columns reflect what actually happened on
/// the wire — unlike a report spool, which carries none of that.
fn replay_journal(args: &Args, path: &str) -> Result<cbi::EpochAggregator, String> {
    let program = load_program(args, 1)?;
    let inst = instrument(&program, scheme_of(args)?).map_err(|e| e.to_string())?;
    let epoch_len: u64 = args.flag_or("epoch-len", 256u64)?;
    if epoch_len == 0 {
        return Err("--epoch-len must be a positive integer (got 0)".to_string());
    }
    let config = cbi_serve::ServeConfig {
        epoch_len,
        flight_capacity: args.flag_or("flight-cap", 64usize)?,
        ..cbi_serve::ServeConfig::default()
    };
    let outcome = cbi_serve::IngestCore::new(inst.sites, config)
        .map_err(|e| e.to_string())?
        .load_journal(path)
        .map_err(|e| format!("{path}: {e}"))?
        .finish()
        .map_err(|e| e.to_string())?;
    let s = &outcome.summary;
    eprintln!(
        "{} batches ({} reports, {} payload bytes) replayed from {path}{}{}",
        s.replayed,
        s.reports,
        s.bytes,
        if s.torn_tail {
            "; torn tail ignored"
        } else {
            ""
        },
        if s.journal_skipped_crc > 0 {
            "; crc-damaged records skipped"
        } else {
            ""
        },
    );
    Ok(outcome.aggregator)
}

fn cmd_monitor(args: &Args) -> Result<(), String> {
    let config = health_config(args)?;
    let (epochs, aggregator, target_tracked) = match args.flag("replay") {
        Some(path) => {
            let magic = {
                let mut head = [0u8; 4];
                let mut file =
                    fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                std::io::Read::read_exact(&mut file, &mut head)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                head
            };
            let aggregator = if magic == cbi_serve::journal::JOURNAL_MAGIC {
                replay_journal(args, path)?
            } else {
                replay_spool(args, path)?
            };
            (aggregator.snapshots().to_vec(), aggregator, false)
        }
        None => {
            let (report, tracked) = fleet_report(args)?;
            (report.epochs, report.aggregator, tracked)
        }
    };

    let mut monitor = cbi::HealthMonitor::new(config, target_tracked);
    let events = monitor.observe_all(&epochs);
    let mut rendered = cbi::render_health(&monitor);
    // Any anomaly gets the black box: the last ingest events the server
    // saw, so the operator can inspect what led up to it.
    if !events.is_empty() {
        rendered.push_str(&aggregator.flight_recorder().render());
    }
    match args.flag("health-out") {
        Some(path) => {
            fs::write(path, &rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("health report written to {path}");
        }
        None => print!("{rendered}"),
    }

    let registry = cbi::health_registry(&aggregator, &monitor);
    write_metric_exports(args, &registry)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str, contents: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("cbi-cli-test-{name}"));
        fs::write(&path, contents).expect("write temp file");
        path
    }

    const PROG: &str = "fn g() -> int { if (has_input() == 0) { return 0; } return read(); }\n\
         fn main() -> int { int v = g(); print(100 / v); return 0; }";

    fn dispatch_strs(parts: &[&str]) -> Result<(), String> {
        dispatch(parts.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn instrument_and_transform_commands_work() {
        let p = tmp("prog1.mc", PROG);
        dispatch_strs(&["instrument", p.to_str().unwrap(), "--scheme", "returns"]).unwrap();
        dispatch_strs(&["transform", p.to_str().unwrap(), "--scheme", "returns"]).unwrap();
        dispatch_strs(&[
            "transform",
            p.to_str().unwrap(),
            "--global-countdown",
            "--no-regions",
        ])
        .unwrap();
    }

    #[test]
    fn jobs_validation() {
        let p = tmp("prog-jobs.mc", PROG);
        let inputs = tmp("inputs-jobs.txt", "5\n4\n");
        let base = [
            "campaign",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--out",
            "/dev/null",
        ];
        let with_jobs = |v: &str| {
            let mut a: Vec<&str> = base.to_vec();
            a.extend(["--jobs", v]);
            dispatch_strs(&a)
        };
        let err = with_jobs("0").unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        assert!(err.contains("positive"), "{err}");
        let err = with_jobs("abc").unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let err = with_jobs("-2").unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        with_jobs("2").unwrap();
    }

    #[test]
    fn profile_rejects_unknown_analyze_mode() {
        let p = tmp("prog-prof.mc", PROG);
        let inputs = tmp("inputs-prof.txt", "5\n");
        let err = dispatch_strs(&[
            "profile",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--analyze",
            "bogus",
        ])
        .unwrap_err();
        assert!(err.contains("--analyze"), "{err}");
    }

    #[test]
    fn disasm_prints_a_listing_at_every_stage() {
        let p = tmp("prog-disasm.mc", PROG);
        dispatch_strs(&["disasm", p.to_str().unwrap()]).unwrap();
        dispatch_strs(&[
            "disasm",
            p.to_str().unwrap(),
            "--stage",
            "instrument",
            "--scheme",
            "returns",
        ])
        .unwrap();
        dispatch_strs(&["disasm", p.to_str().unwrap(), "--stage", "sample"]).unwrap();
        let err = dispatch_strs(&["disasm", p.to_str().unwrap(), "--stage", "bogus"]).unwrap_err();
        assert!(err.contains("--stage"), "{err}");
    }

    #[test]
    fn engine_flag_is_accepted_and_validated() {
        let p = tmp("prog-engine.mc", PROG);
        let inputs = tmp("inputs-engine.txt", "5\n4\n");
        for engine in ["bytecode", "slot", "namemap"] {
            dispatch_strs(&[
                "campaign",
                p.to_str().unwrap(),
                inputs.to_str().unwrap(),
                "--engine",
                engine,
                "--out",
                "/dev/null",
            ])
            .unwrap();
        }
        let err = dispatch_strs(&["run", p.to_str().unwrap(), "--engine", "bogus"]).unwrap_err();
        assert!(err.contains("engine"), "{err}");
    }

    #[test]
    fn run_command_works() {
        let p = tmp("prog2.mc", PROG);
        dispatch_strs(&[
            "run",
            p.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--input",
            "5",
        ])
        .unwrap();
    }

    #[test]
    fn campaign_and_analyze_round_trip() {
        let p = tmp("prog3.mc", PROG);
        let inputs = tmp("inputs3.txt", "5\n4\n\n3\n2\n1\n"); // all succeed
        let out = std::env::temp_dir().join("cbi-cli-test-reports3.jsonl");
        dispatch_strs(&[
            "campaign",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--jobs",
            "3",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        dispatch_strs(&[
            "analyze",
            out.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
        ])
        .unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(dispatch_strs(&[]).is_err());
        assert!(dispatch_strs(&["bogus"]).is_err());
        assert!(dispatch_strs(&["run", "/nonexistent.mc"]).is_err());
        let p = tmp("prog4.mc", PROG);
        assert!(dispatch_strs(&["run", p.to_str().unwrap(), "--scheme", "bogus"]).is_err());
        assert!(dispatch_strs(&["run", p.to_str().unwrap(), "--density", "x"]).is_err());
    }

    #[test]
    fn campaign_spools_binary_reports_that_analyze_reads() {
        let p = tmp("prog6.mc", PROG);
        let inputs = tmp("inputs6.txt", "5\n4\n\n3\n2\n1\n");
        let spool = std::env::temp_dir().join("cbi-cli-test-reports6.cbr");
        let out = std::env::temp_dir().join("cbi-cli-test-reports6.jsonl");
        dispatch_strs(&[
            "campaign",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--spool",
            spool.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        // The spool is binary (magic-prefixed) and strictly smaller than
        // the JSONL archive of the same campaign.
        let binary = fs::read(&spool).unwrap();
        assert_eq!(&binary[..4], b"CBIR");
        assert!(binary.len() < fs::metadata(&out).unwrap().len() as usize);
        // `analyze` accepts the spool directly.
        dispatch_strs(&[
            "analyze",
            spool.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
        ])
        .unwrap();
        // ... and rejects it against a different instrumentation scheme
        // with a layout diagnostic.
        let err = dispatch_strs(&[
            "analyze",
            spool.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "branches",
        ])
        .unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn transmit_requires_program_for_jsonl() {
        let reports = tmp(
            "reports7.jsonl",
            "{\"run_id\":0,\"label\":\"Success\",\"counters\":[0]}\n",
        );
        let err = dispatch_strs(&["transmit", reports.to_str().unwrap(), "--to", "127.0.0.1:1"])
            .unwrap_err();
        assert!(err.contains("layout hash"), "{err}");
    }

    #[test]
    fn serve_validates_flags_before_binding() {
        let p = tmp("prog8.mc", PROG);
        let err = dispatch_strs(&["serve", p.to_str().unwrap(), "--mode", "bogus"]).unwrap_err();
        assert!(err.contains("--mode"), "{err}");
        let err = dispatch_strs(&["serve", p.to_str().unwrap(), "--max-conns", "0"]).unwrap_err();
        assert!(err.contains("--max-conns"), "{err}");
    }

    #[test]
    fn serve_validates_sharding_and_journal_flags_before_binding() {
        let p = tmp("prog-serve-flags.mc", PROG);
        let prog = p.to_str().unwrap();
        let err = dispatch_strs(&["serve", prog, "--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = dispatch_strs(&["serve", prog, "--queue-cap", "0"]).unwrap_err();
        assert!(err.contains("--queue-cap"), "{err}");
        let err = dispatch_strs(&["serve", prog, "--max-clients", "0"]).unwrap_err();
        assert!(err.contains("--max-clients"), "{err}");
        let err = dispatch_strs(&["serve", prog, "--epoch-len", "0"]).unwrap_err();
        assert!(err.contains("--epoch-len"), "{err}");
        let err = dispatch_strs(&["serve", prog, "--fsync", "sometimes"]).unwrap_err();
        assert!(err.contains("--fsync"), "{err}");
        let err = dispatch_strs(&["serve", prog, "--journal", "/tmp/j", "--resume", "/tmp/j"])
            .unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn fleet_serve_rejects_bad_arguments() {
        let p = tmp("prog-fleet-serve.mc", PROG);
        let inputs = tmp("inputs-fleet-serve.txt", "5\n");
        let err =
            dispatch_strs(&["fleet", "--corpus", "/tmp/x", "--serve", "127.0.0.1:1"]).unwrap_err();
        assert!(err.contains("--corpus"), "{err}");
        let base = [
            "fleet",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--serve",
            "127.0.0.1:1",
        ];
        let with = |extra: &[&str]| {
            let mut a: Vec<&str> = base.to_vec();
            a.extend_from_slice(extra);
            dispatch_strs(&a)
        };
        let err = with(&["--ack-drop", "1.5"]).unwrap_err();
        assert!(err.contains("--ack-drop"), "{err}");
        let err = with(&["--streams", "0"]).unwrap_err();
        assert!(err.contains("--streams"), "{err}");
    }

    #[test]
    fn monitor_replays_a_serve_journal() {
        let p = tmp("prog-mon-journal.mc", PROG);
        let program = parse(PROG).unwrap();
        resolve(&program).unwrap();
        let inst = instrument(&program, Scheme::Returns).unwrap();
        let hash = inst.sites.layout_hash();
        let n = inst.sites.total_counters();
        let journal = std::env::temp_dir().join("cbi-cli-test-mon-journal.cbij");
        let mut j =
            cbi_serve::Journal::create(&journal, hash, cbi_serve::FsyncPolicy::Never).unwrap();
        for run in 0..4u64 {
            let label = if run == 3 {
                Label::Failure
            } else {
                Label::Success
            };
            let report = Report::new(run, label, vec![1; n]);
            let payload = wire::encode_reports(&[report], hash, n).unwrap();
            j.append(&cbi::reports::BatchEnvelope::new(run % 2, run, 1, payload))
                .unwrap();
        }
        drop(j);
        let health = std::env::temp_dir().join("cbi-cli-test-mon-journal-health.txt");
        dispatch_strs(&[
            "monitor",
            "--replay",
            journal.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
            "--epoch-len",
            "2",
            "--health-out",
            health.to_str().unwrap(),
        ])
        .unwrap();
        let text = fs::read_to_string(&health).unwrap();
        assert!(text.contains("epoch"), "{text}");
        // A journal from a different instrumented binary is rejected at
        // the layout handshake, like a spool.
        let err = dispatch_strs(&[
            "monitor",
            "--replay",
            journal.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "branches",
        ])
        .unwrap_err();
        assert!(err.contains("layout"), "{err}");
        fs::remove_file(&journal).ok();
        fs::remove_file(&health).ok();
    }

    #[test]
    fn corpus_generate_and_evaluate_round_trip() {
        let dir = std::env::temp_dir().join("cbi-cli-test-corpus");
        let _ = fs::remove_dir_all(&dir);
        dispatch_strs(&[
            "corpus",
            "generate",
            dir.to_str().unwrap(),
            "--size",
            "3",
            "--seed",
            "9",
            "--trials",
            "16",
        ])
        .unwrap();
        assert!(dir.join("manifest.jsonl").exists());
        let summary = dir.join("summary.txt");
        dispatch_strs(&[
            "corpus",
            "evaluate",
            dir.to_str().unwrap(),
            "--densities",
            "1",
            "--summary-out",
            summary.to_str().unwrap(),
            "--out",
            dir.join("report.txt").to_str().unwrap(),
        ])
        .unwrap();
        let text = fs::read_to_string(&summary).unwrap();
        assert!(text.contains("corpus summary"), "{text}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corpus_rejects_bad_arguments() {
        assert!(dispatch_strs(&["corpus"]).is_err());
        assert!(dispatch_strs(&["corpus", "bogus"]).is_err());
        assert!(dispatch_strs(&["corpus", "generate"]).is_err());
        let err =
            dispatch_strs(&["corpus", "evaluate", "/tmp/x", "--densities", "1,0"]).unwrap_err();
        assert!(err.contains("density"), "{err}");
    }

    #[test]
    fn fleet_runs_and_writes_a_summary() {
        let p = tmp("prog-fleet.mc", PROG);
        let inputs = tmp("inputs-fleet.txt", "5\n4\n9\n2\n7\n");
        let summary = std::env::temp_dir().join("cbi-cli-test-fleet-summary.txt");
        dispatch_strs(&[
            "fleet",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--clients",
            "6",
            "--runs",
            "200",
            "--batch-size",
            "8",
            "--epoch-len",
            "50",
            "--densities",
            "5:2,20:1",
            "--drop",
            "0.1",
            "--stale-fraction",
            "0.1",
            "--jobs",
            "2",
            "--summary-out",
            summary.to_str().unwrap(),
        ])
        .unwrap();
        let text = fs::read_to_string(&summary).unwrap();
        assert!(text.contains("fleet: 6 clients"), "{text}");
        assert!(text.contains("epoch"), "{text}");
        fs::remove_file(&summary).ok();
    }

    #[test]
    fn fleet_rejects_bad_arguments() {
        let p = tmp("prog-fleet-bad.mc", PROG);
        let inputs = tmp("inputs-fleet-bad.txt", "5\n");
        let base = ["fleet", p.to_str().unwrap(), inputs.to_str().unwrap()];
        let with = |extra: &[&str]| {
            let mut a: Vec<&str> = base.to_vec();
            a.extend_from_slice(extra);
            dispatch_strs(&a)
        };
        let err = with(&["--densities", "0:1"]).unwrap_err();
        assert!(err.contains("density"), "{err}");
        let err = with(&["--densities", "100:nope"]).unwrap_err();
        assert!(err.contains("weight"), "{err}");
        let err = with(&["--drop", "1.5"]).unwrap_err();
        assert!(err.contains("--drop"), "{err}");
        let err = with(&["--target", "no_such_predicate"]).unwrap_err();
        assert!(err.contains("no predicate"), "{err}");
        let err = dispatch_strs(&["fleet", p.to_str().unwrap()]).unwrap_err();
        assert!(err.contains("inputs"), "{err}");
    }

    #[test]
    fn monitor_renders_health_and_writes_exports() {
        let p = tmp("prog-mon.mc", PROG);
        let inputs = tmp("inputs-mon.txt", "5\n4\n9\n2\n7\n");
        let dir = std::env::temp_dir();
        let health = dir.join("cbi-cli-test-mon-health.txt");
        let prom = dir.join("cbi-cli-test-mon.prom");
        let timeline = dir.join("cbi-cli-test-mon-timeline.jsonl");
        dispatch_strs(&[
            "monitor",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--clients",
            "6",
            "--runs",
            "200",
            "--batch-size",
            "8",
            "--epoch-len",
            "50",
            "--bit-flip",
            "0.2",
            "--stale-fraction",
            "0.2",
            "--jobs",
            "2",
            "--health-out",
            health.to_str().unwrap(),
            "--prom-out",
            prom.to_str().unwrap(),
            "--timeline-out",
            timeline.to_str().unwrap(),
        ])
        .unwrap();
        let text = fs::read_to_string(&health).unwrap();
        assert!(text.contains("epoch"), "{text}");
        assert!(!text.contains('.'), "health table is integer-only:\n{text}");
        let prom_text = fs::read_to_string(&prom).unwrap();
        assert!(
            prom_text.contains("# TYPE cbi_runs_total counter"),
            "{prom_text}"
        );
        let tl = fs::read_to_string(&timeline).unwrap();
        assert!(tl.lines().all(|l| l.starts_with("{\"epoch\":")), "{tl}");
        for f in [&health, &prom, &timeline] {
            fs::remove_file(f).ok();
        }
    }

    #[test]
    fn monitor_replays_a_spool() {
        let p = tmp("prog-mon-replay.mc", PROG);
        let inputs = tmp("inputs-mon-replay.txt", "5\n4\n\n3\n2\n1\n");
        let spool = std::env::temp_dir().join("cbi-cli-test-mon-replay.cbr");
        dispatch_strs(&[
            "campaign",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--spool",
            spool.to_str().unwrap(),
        ])
        .unwrap();
        let health = std::env::temp_dir().join("cbi-cli-test-mon-replay-health.txt");
        dispatch_strs(&[
            "monitor",
            "--replay",
            spool.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
            "--epoch-len",
            "2",
            "--batch-size",
            "2",
            "--health-out",
            health.to_str().unwrap(),
        ])
        .unwrap();
        let text = fs::read_to_string(&health).unwrap();
        assert!(text.contains("epoch"), "{text}");
        // A mismatched scheme is rejected at the layout handshake.
        let err = dispatch_strs(&[
            "monitor",
            "--replay",
            spool.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "branches",
        ])
        .unwrap_err();
        assert!(err.contains("layout"), "{err}");
        fs::remove_file(&spool).ok();
        fs::remove_file(&health).ok();
    }

    #[test]
    fn monitor_rejects_bad_arguments() {
        let p = tmp("prog-mon-bad.mc", PROG);
        let inputs = tmp("inputs-mon-bad.txt", "5\n");
        let base = ["monitor", p.to_str().unwrap(), inputs.to_str().unwrap()];
        let with = |extra: &[&str]| {
            let mut a: Vec<&str> = base.to_vec();
            a.extend_from_slice(extra);
            dispatch_strs(&a)
        };
        let err = with(&["--stall-epochs", "0"]).unwrap_err();
        assert!(err.contains("--stall-epochs"), "{err}");
        let err = with(&["--warmup", "x"]).unwrap_err();
        assert!(err.contains("--warmup"), "{err}");
    }

    #[test]
    fn analyze_rejects_layout_mismatch() {
        let p = tmp("prog5.mc", PROG);
        let reports = tmp(
            "reports5.jsonl",
            "{\"run_id\":0,\"label\":\"Success\",\"counters\":[0]}\n",
        );
        let err = dispatch_strs(&[
            "analyze",
            reports.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
        ])
        .unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }
}
