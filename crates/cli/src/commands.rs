//! CLI subcommand implementations.

use crate::args::Args;
use cbi::prelude::*;
use cbi::RegressionConfig;
use std::fs;

/// Usage text shown on errors.
pub const USAGE: &str = "\
usage:
  cbi instrument <file.mc> [--scheme checks|returns|scalar-pairs|branches]
  cbi transform  <file.mc> [--scheme S] [--global-countdown] [--no-regions]
  cbi run        <file.mc> [--scheme S] [--density D] [--seed N] [--input \"1 2 3\"]
  cbi campaign   <file.mc> <inputs.txt> [--scheme S] [--density D] [--seed N]
                 [--jobs N] [--out reports.jsonl]
  cbi analyze    <reports.jsonl> <file.mc> [--scheme S] [--mode eliminate|regress]";

/// Dispatches a raw argument vector to a subcommand.
///
/// # Errors
///
/// Returns a user-facing message for any parse, I/O, or pipeline failure.
pub fn dispatch(raw: Vec<String>) -> Result<(), String> {
    let args = Args::parse(raw)?;
    match args.positional(0) {
        Some("instrument") => cmd_instrument(&args),
        Some("transform") => cmd_transform(&args),
        Some("run") => cmd_run(&args),
        Some("campaign") => cmd_campaign(&args),
        Some("analyze") => cmd_analyze(&args),
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("missing subcommand".to_string()),
    }
}

fn load_program(args: &Args, at: usize) -> Result<Program, String> {
    let path = args
        .positional(at)
        .ok_or_else(|| "missing program file argument".to_string())?;
    let src = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let program = parse(&src).map_err(|e| format!("{path}: {e}"))?;
    resolve(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn scheme_of(args: &Args) -> Result<Scheme, String> {
    match args.flag("scheme").unwrap_or("checks") {
        "checks" => Ok(Scheme::Checks),
        "returns" => Ok(Scheme::Returns),
        "scalar-pairs" => Ok(Scheme::ScalarPairs),
        "branches" => Ok(Scheme::Branches),
        other => Err(format!(
            "unknown scheme `{other}` (expected checks, returns, scalar-pairs, or branches)"
        )),
    }
}

fn transform_options(args: &Args) -> TransformOptions {
    TransformOptions {
        countdown: if args.flag("global-countdown").is_some() {
            cbi::instrument::CountdownStorage::Global
        } else {
            cbi::instrument::CountdownStorage::Local
        },
        regions: args.flag("no-regions").is_none(),
        ..TransformOptions::default()
    }
}

fn cmd_instrument(args: &Args) -> Result<(), String> {
    let program = load_program(args, 1)?;
    let scheme = scheme_of(args)?;
    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    println!(
        "// {} sites, {} counters",
        inst.sites.len(),
        inst.sites.total_counters()
    );
    for site in &inst.sites {
        println!("// {}  [{}]", site.predicate_name(0), site.kind);
    }
    println!();
    println!("{}", pretty(&inst.program));
    Ok(())
}

fn cmd_transform(args: &Args) -> Result<(), String> {
    let program = load_program(args, 1)?;
    let scheme = scheme_of(args)?;
    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    let (sampled, stats) =
        apply_sampling(&inst.program, &transform_options(args)).map_err(|e| e.to_string())?;
    println!(
        "// {} site-containing functions, {} weightless, avg threshold weight {:.1}",
        stats.functions_with_sites(),
        stats.weightless_functions(),
        stats.avg_threshold_weight()
    );
    println!("{}", pretty(&sampled));
    Ok(())
}

fn parse_input(raw: &str) -> Result<Vec<i64>, String> {
    raw.split_whitespace()
        .map(|t| t.parse().map_err(|_| format!("bad input token `{t}`")))
        .collect()
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let program = load_program(args, 1)?;
    let scheme = scheme_of(args)?;
    let density: u64 = args.flag_or("density", 100)?;
    let seed: u64 = args.flag_or("seed", 42)?;
    let input = parse_input(args.flag("input").unwrap_or(""))?;

    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    let (sampled, _) =
        apply_sampling(&inst.program, &transform_options(args)).map_err(|e| e.to_string())?;
    let bank = CountdownBank::generate(SamplingDensity::one_in(density), 1024, seed);
    let result = Vm::new(&sampled)
        .with_sites(&inst.sites)
        .with_sampling(Box::new(bank))
        .with_input(input)
        .run()
        .map_err(|e| e.to_string())?;

    println!("outcome: {}", result.outcome);
    println!("ops: {}", result.ops);
    println!("output: {:?}", result.output);
    println!("observations:");
    for (i, &c) in result.counters.iter().enumerate() {
        if c > 0 {
            println!("  {:>6}x  {}", c, inst.sites.predicate_name(i));
        }
    }
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let program = load_program(args, 1)?;
    let inputs_path = args
        .positional(2)
        .ok_or_else(|| "missing inputs file".to_string())?;
    let scheme = scheme_of(args)?;
    let density: u64 = args.flag_or("density", 100)?;
    let seed: u64 = args.flag_or("seed", 42)?;
    let jobs: usize = args.flag_or("jobs", 1)?;

    let raw =
        fs::read_to_string(inputs_path).map_err(|e| format!("cannot read {inputs_path}: {e}"))?;
    let trials: Vec<Vec<i64>> = raw
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_input)
        .collect::<Result<_, _>>()?;

    let mut config =
        CampaignConfig::sampled(scheme, SamplingDensity::one_in(density)).with_jobs(jobs);
    config.seed = seed;
    let result = run_campaign(&program, &trials, &config).map_err(|e| e.to_string())?;
    eprintln!(
        "{} runs: {} success, {} failure, {} dropped",
        result.collector.len(),
        result.collector.success_count(),
        result.collector.failure_count(),
        result.dropped
    );

    match args.flag("out") {
        Some(path) => {
            let mut buf = Vec::new();
            result
                .collector
                .write_jsonl(&mut buf)
                .map_err(|e| e.to_string())?;
            fs::write(path, buf).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("reports written to {path}");
        }
        None => {
            result
                .collector
                .write_jsonl(std::io::stdout().lock())
                .map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_analyze(args: &Args) -> Result<(), String> {
    let reports_path = args
        .positional(1)
        .ok_or_else(|| "missing reports file".to_string())?;
    let program = load_program(args, 2)?;
    let scheme = scheme_of(args)?;
    let mode = args.flag("mode").unwrap_or("eliminate");

    let raw =
        fs::read_to_string(reports_path).map_err(|e| format!("cannot read {reports_path}: {e}"))?;
    let collector = Collector::read_jsonl(raw.as_bytes()).map_err(|e| e.to_string())?;
    eprintln!(
        "{} reports ({} failures)",
        collector.len(),
        collector.failure_count()
    );

    // Rebuild the site table so predicates can be named; the counter
    // layout must match the instrumented binary that produced the reports.
    let inst = instrument(&program, scheme).map_err(|e| e.to_string())?;
    if inst.sites.total_counters() != collector.counter_count() {
        return Err(format!(
            "report layout mismatch: program has {} counters, reports have {}",
            inst.sites.total_counters(),
            collector.counter_count()
        ));
    }
    let result = cbi::workloads::CampaignResult {
        instrumented: inst,
        collector,
        dropped: 0,
    };

    match mode {
        "eliminate" => {
            let report = cbi::eliminate(&result);
            let [uf, cov, ex, sc] = report.independent_survivors;
            println!("universal falsehood:        {uf} survivors");
            println!("lack of failing coverage:   {cov} survivors");
            println!("lack of failing example:    {ex} survivors");
            println!("successful counterexample:  {sc} survivors");
            println!("combined (falsehood ∧ counterexample):");
            for name in &report.combined_names {
                println!("  {name}");
            }
        }
        "regress" => {
            let n = result.collector.len();
            let study = cbi::regress(&result, &RegressionConfig::paper_proportions(n));
            println!(
                "lambda {} (cv), test accuracy {:.3}, {} effective features",
                study.lambda, study.test_accuracy, study.effective_features
            );
            for (i, (name, beta)) in study.top(10).iter().enumerate() {
                println!("{:>3}. beta={beta:+.4}  {name}", i + 1);
            }
        }
        other => return Err(format!("unknown mode `{other}`")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str, contents: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("cbi-cli-test-{name}"));
        fs::write(&path, contents).expect("write temp file");
        path
    }

    const PROG: &str = "fn g() -> int { if (has_input() == 0) { return 0; } return read(); }\n\
         fn main() -> int { int v = g(); print(100 / v); return 0; }";

    fn dispatch_strs(parts: &[&str]) -> Result<(), String> {
        dispatch(parts.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn instrument_and_transform_commands_work() {
        let p = tmp("prog1.mc", PROG);
        dispatch_strs(&["instrument", p.to_str().unwrap(), "--scheme", "returns"]).unwrap();
        dispatch_strs(&["transform", p.to_str().unwrap(), "--scheme", "returns"]).unwrap();
        dispatch_strs(&[
            "transform",
            p.to_str().unwrap(),
            "--global-countdown",
            "1",
            "--no-regions",
            "1",
        ])
        .unwrap();
    }

    #[test]
    fn run_command_works() {
        let p = tmp("prog2.mc", PROG);
        dispatch_strs(&[
            "run",
            p.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--input",
            "5",
        ])
        .unwrap();
    }

    #[test]
    fn campaign_and_analyze_round_trip() {
        let p = tmp("prog3.mc", PROG);
        let inputs = tmp("inputs3.txt", "5\n4\n\n3\n2\n1\n"); // all succeed
        let out = std::env::temp_dir().join("cbi-cli-test-reports3.jsonl");
        dispatch_strs(&[
            "campaign",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--jobs",
            "3",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        dispatch_strs(&[
            "analyze",
            out.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
        ])
        .unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(dispatch_strs(&[]).is_err());
        assert!(dispatch_strs(&["bogus"]).is_err());
        assert!(dispatch_strs(&["run", "/nonexistent.mc"]).is_err());
        let p = tmp("prog4.mc", PROG);
        assert!(dispatch_strs(&["run", p.to_str().unwrap(), "--scheme", "bogus"]).is_err());
        assert!(dispatch_strs(&["run", p.to_str().unwrap(), "--density", "x"]).is_err());
    }

    #[test]
    fn analyze_rejects_layout_mismatch() {
        let p = tmp("prog5.mc", PROG);
        let reports = tmp(
            "reports5.jsonl",
            "{\"run_id\":0,\"label\":\"Success\",\"counters\":[0]}\n",
        );
        let err = dispatch_strs(&[
            "analyze",
            reports.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
        ])
        .unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }
}
