//! `cbi` — cooperative bug isolation from the command line.
//!
//! ```text
//! cbi instrument <file.mc> [--scheme checks|returns|scalar-pairs|branches]
//!     Print the instrumented program (unconditional) and its site table.
//!
//! cbi transform <file.mc> [--scheme S] [--global-countdown] [--no-regions]
//!     Print the sampling-transformed program.
//!
//! cbi disasm <file.mc> [--stage source|instrument|sample] [--scheme S]
//!     Print the deterministic bytecode listing — raw, instrumented, or
//!     after the sampling transformation (fast/slow clones and fused
//!     countdown ops visible).
//!
//! cbi run <file.mc> [--scheme S] [--density D] [--seed N] [--input "1 2 3"]
//!         [--engine bytecode|slot|namemap]
//!     Run one sampled execution; print outcome, ops, output, and the
//!     nonzero counters.  Every engine gives bit-identical results; the
//!     bytecode dispatch loop is the default.
//!
//! cbi campaign <file.mc> <inputs.txt> [--scheme S] [--density D] [--seed N]
//!              [--jobs N] [--out reports.jsonl] [--spool reports.cbr]
//!              [--transmit HOST:PORT]
//!     Run a campaign: one run per input line, writing reports as JSONL.
//!     `--jobs N` shards trials over N worker threads; the report stream
//!     is bit-identical at any job count.  `--spool` archives the binary
//!     wire frames to disk; `--transmit` streams them to a `cbi serve`
//!     ingest server.
//!
//! cbi analyze <reports.jsonl|.cbr> <file.mc> [--scheme S]
//!             [--mode eliminate|regress]
//!     Run the §3.2 elimination or §3.3 regression analysis over reports
//!     (JSONL or binary spool, detected by the `CBIR` magic).
//!
//! cbi serve <file.mc> [--scheme S] [--addr 127.0.0.1:0] [--max-conns N]
//!           [--mode eliminate|regress|both] [--spool reports.cbr]
//!     Run a loopback ingest server pinned to the program's instrumented
//!     layout; analyze the ingested stream after the last connection.
//!
//! cbi transmit <reports.jsonl|.cbr> --to HOST:PORT [<file.mc>] [--scheme S]
//!     Replay an archived report stream to an ingest server.
//!
//! cbi corpus generate <dir> [--size N] [--seed N] [--trials N]
//!     Plant one validated, labeled bug per program (seeded testgen
//!     programs plus ccrypt/bc) and write the ground-truth manifest.
//!
//! cbi corpus evaluate <dir> [--densities 1,10,100,1000] [--jobs N]
//!                     [--out report.txt] [--summary-out summary.txt]
//!     Score elimination and regression against the manifest across the
//!     sampling-density sweep; output is byte-identical at any --jobs.
//! ```
//!
//! Inputs for `campaign` are given as a text file with one run per line,
//! each line whitespace-separated integers.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(raw) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
