//! End-to-end tests of the compiled `cbi` binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn cbi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cbi"))
}

fn tmp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("cbi-bin-test-{name}"));
    fs::write(&path, contents).expect("write temp file");
    path
}

const PROG: &str = "fn parse_mode(int raw) -> int { if (raw > 2) { return -1; } return raw; }\n\
     fn main() -> int {\n\
         int mode = parse_mode(read());\n\
         ptr buf = alloc(4);\n\
         buf[mode] = 1;\n\
         print(buf[mode]);\n\
         free(buf);\n\
         return 0;\n\
     }";

#[test]
fn instrument_prints_sites_and_source() {
    let p = tmp("bin1.mc", PROG);
    let out = cbi()
        .args(["instrument", p.to_str().unwrap(), "--scheme", "returns"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("__obs_sign"), "{stdout}");
    assert!(stdout.contains("parse_mode()"), "{stdout}");
}

#[test]
fn run_reports_outcome_and_observations() {
    let p = tmp("bin2.mc", PROG);
    let out = cbi()
        .args([
            "run",
            p.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--input",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("outcome: success"), "{stdout}");
    assert!(stdout.contains("parse_mode() > 0"), "{stdout}");
}

#[test]
fn crashing_run_is_reported_not_an_error() {
    let p = tmp("bin3.mc", PROG);
    // mode 3 -> parse_mode returns -1 -> buf[-1] segfaults.
    let out = cbi()
        .args(["run", p.to_str().unwrap(), "--density", "1", "--input", "3"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "a failure is data, not a CLI failure");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Under the default `checks` scheme, the sampled bounds check catches
    // the bad index before the segfault: an assertion failure at density 1.
    assert!(stdout.contains("assertion failure"), "{stdout}");
    assert!(stdout.contains("!(0 <= mode < len(buf))"), "{stdout}");
}

#[test]
fn campaign_then_analyze_pipeline() {
    let p = tmp("bin4.mc", PROG);
    let inputs = tmp("bin4-inputs.txt", "0\n1\n2\n3\n0\n1\n3\n2\n");
    let reports = std::env::temp_dir().join("cbi-bin-test-reports4.jsonl");
    let out = cbi()
        .args([
            "campaign",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--out",
            reports.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("8 runs"), "{stderr}");

    let out = cbi()
        .args([
            "analyze",
            reports.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The crashing condition is parse_mode() < 0.
    assert!(stdout.contains("parse_mode() < 0"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = cbi().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
    // The usage text documents every subcommand, including profile.
    assert!(stderr.contains("cbi profile"), "{stderr}");
    assert!(stderr.contains("--jobs"), "{stderr}");
    assert!(stderr.contains("--trace-out"), "{stderr}");
}

#[test]
fn jobs_zero_and_non_numeric_are_rejected() {
    let p = tmp("bin5.mc", PROG);
    let inputs = tmp("bin5-inputs.txt", "0\n1\n2\n3\n");
    for bad in ["0", "many"] {
        let out = cbi()
            .args([
                "campaign",
                p.to_str().unwrap(),
                inputs.to_str().unwrap(),
                "--jobs",
                bad,
            ])
            .output()
            .expect("spawn");
        assert!(!out.status.success(), "--jobs {bad} should be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--jobs") || stderr.contains("jobs"),
            "{stderr}"
        );
    }
}

#[test]
fn profile_prints_phase_worker_and_vm_breakdown() {
    let p = tmp("bin6.mc", PROG);
    let inputs = tmp("bin6-inputs.txt", "0\n1\n2\n3\n0\n1\n3\n2\n");
    let out = cbi()
        .args([
            "profile",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--jobs",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("profile:"), "{stdout}");
    assert!(stdout.contains("jobs=2"), "{stdout}");
    assert!(stdout.contains("phases:"), "{stdout}");
    assert!(stdout.contains("phase.campaign"), "{stdout}");
    assert!(stdout.contains("workers:"), "{stdout}");
    assert!(stdout.contains("worker-1"), "{stdout}");
    assert!(stdout.contains("vm totals:"), "{stdout}");
    assert!(stdout.contains("steps"), "{stdout}");
    assert!(stdout.contains("fast-path"), "{stdout}");
    assert!(stdout.contains("samples taken"), "{stdout}");
}

#[test]
fn campaign_metrics_and_trace_outputs() {
    let p = tmp("bin7.mc", PROG);
    let inputs = tmp("bin7-inputs.txt", "0\n1\n2\n3\n");
    let metrics = std::env::temp_dir().join("cbi-bin-test-metrics7.jsonl");
    let trace = std::env::temp_dir().join("cbi-bin-test-trace7.json");
    let out = cbi()
        .args([
            "campaign",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--density",
            "1",
            "--jobs",
            "2",
            "--out",
            "/dev/null",
            "--metrics",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // --metrics prints the summary table on stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("campaign.trials"), "{stderr}");

    // JSONL dump: every non-empty line is a JSON object with a type tag.
    let jsonl = fs::read_to_string(&metrics).expect("metrics file");
    assert!(!jsonl.trim().is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"type\":"), "{line}");
    }
    assert!(jsonl.contains("\"vm.steps\""), "{jsonl}");

    // Chrome trace: a traceEvents array with span (X) events.
    let chrome = fs::read_to_string(&trace).expect("trace file");
    assert!(chrome.contains("\"traceEvents\""), "{chrome}");
    assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
    assert!(chrome.contains("campaign.shard"), "{chrome}");
}
