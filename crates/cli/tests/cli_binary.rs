//! End-to-end tests of the compiled `cbi` binary.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn cbi() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cbi"))
}

fn tmp(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("cbi-bin-test-{name}"));
    fs::write(&path, contents).expect("write temp file");
    path
}

const PROG: &str = "fn parse_mode(int raw) -> int { if (raw > 2) { return -1; } return raw; }\n\
     fn main() -> int {\n\
         int mode = parse_mode(read());\n\
         ptr buf = alloc(4);\n\
         buf[mode] = 1;\n\
         print(buf[mode]);\n\
         free(buf);\n\
         return 0;\n\
     }";

#[test]
fn instrument_prints_sites_and_source() {
    let p = tmp("bin1.mc", PROG);
    let out = cbi()
        .args(["instrument", p.to_str().unwrap(), "--scheme", "returns"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("__obs_sign"), "{stdout}");
    assert!(stdout.contains("parse_mode()"), "{stdout}");
}

#[test]
fn run_reports_outcome_and_observations() {
    let p = tmp("bin2.mc", PROG);
    let out = cbi()
        .args([
            "run",
            p.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--input",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("outcome: success"), "{stdout}");
    assert!(stdout.contains("parse_mode() > 0"), "{stdout}");
}

#[test]
fn crashing_run_is_reported_not_an_error() {
    let p = tmp("bin3.mc", PROG);
    // mode 3 -> parse_mode returns -1 -> buf[-1] segfaults.
    let out = cbi()
        .args(["run", p.to_str().unwrap(), "--density", "1", "--input", "3"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "a failure is data, not a CLI failure");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Under the default `checks` scheme, the sampled bounds check catches
    // the bad index before the segfault: an assertion failure at density 1.
    assert!(stdout.contains("assertion failure"), "{stdout}");
    assert!(stdout.contains("!(0 <= mode < len(buf))"), "{stdout}");
}

#[test]
fn campaign_then_analyze_pipeline() {
    let p = tmp("bin4.mc", PROG);
    let inputs = tmp("bin4-inputs.txt", "0\n1\n2\n3\n0\n1\n3\n2\n");
    let reports = std::env::temp_dir().join("cbi-bin-test-reports4.jsonl");
    let out = cbi()
        .args([
            "campaign",
            p.to_str().unwrap(),
            inputs.to_str().unwrap(),
            "--scheme",
            "returns",
            "--density",
            "1",
            "--out",
            reports.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("8 runs"), "{stderr}");

    let out = cbi()
        .args([
            "analyze",
            reports.to_str().unwrap(),
            p.to_str().unwrap(),
            "--scheme",
            "returns",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The crashing condition is parse_mode() < 0.
    assert!(stdout.contains("parse_mode() < 0"), "{stdout}");
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = cbi().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}
