//! Structural stress tests for the sampling transformation: deep nesting,
//! mixed boundaries, and the exact placement rules of §2.2–§2.4.

use cbi_instrument::{
    apply_sampling, count_sites_block, instrument, resolve_instrumented, single_function_variants,
    strip_sites, CountdownStorage, Scheme, TransformOptions,
};
use cbi_minic::{parse, pretty};

fn transform(
    src: &str,
    options: &TransformOptions,
) -> (cbi_minic::Program, cbi_instrument::TransformStats, String) {
    let p = parse(src).unwrap();
    let (q, stats) = apply_sampling(&p, options).unwrap();
    resolve_instrumented(&q).unwrap_or_else(|e| panic!("{e}\n{}", pretty(&q)));
    let s = pretty(&q);
    (q, stats, s)
}

#[test]
fn triple_nested_loops_get_checks_at_every_level() {
    let src = "fn f(int n) {\n\
        __check(0, n > 0);\n\
        int i = 0;\n\
        while (i < n) {\n\
            __check(1, i < n);\n\
            int j = 0;\n\
            while (j < n) {\n\
                __check(2, j < n);\n\
                int k = 0;\n\
                while (k < n) {\n\
                    __check(3, k < n);\n\
                    k = k + 1;\n\
                }\n\
                j = j + 1;\n\
            }\n\
            i = i + 1;\n\
        }\n\
    }";
    let (_, stats, s) = transform(src, &TransformOptions::default());
    let f = &stats.functions[0];
    // One region per nesting level: entry + each loop body prefix + each
    // loop body suffix region as segmentation dictates; at minimum 4.
    assert!(f.threshold_checks >= 4, "stats: {f:?}\n{s}");
    assert_eq!(f.sites, 4);
}

#[test]
fn if_containing_loop_forces_recursion_but_keeps_outer_segments() {
    let src = "fn f(int n) {\n\
        __check(0, n > 0);\n\
        if (n > 10) {\n\
            int i = 0;\n\
            while (i < n) { __check(1, i < 100); i = i + 1; }\n\
        }\n\
        __check(2, n < 1000);\n\
    }";
    let (_, stats, s) = transform(src, &TransformOptions::default());
    let f = &stats.functions[0];
    // Segment before the if, the loop-body region inside, segment after.
    assert_eq!(f.threshold_checks, 3, "{s}");
    // The leading and trailing checks have weight 1 each, the loop body 1.
    assert_eq!(f.total_threshold_weight, 3, "{s}");
}

#[test]
fn else_branch_sites_counted_in_weights() {
    let src = "fn f(int n) {\n\
        if (n > 0) { __check(0, n < 50); } else { __check(1, n > -50); __check(2, n > -90); }\n\
        __check(3, n != 7);\n\
    }";
    let (_, stats, _) = transform(src, &TransformOptions::default());
    let f = &stats.functions[0];
    assert_eq!(f.threshold_checks, 1);
    // max(1, 2) from the branches + 1 after = weight 3 in one region.
    assert_eq!(f.total_threshold_weight, 3);
}

#[test]
fn consecutive_heavy_calls_create_one_region_per_gap() {
    let src = "fn h(int x) -> int { __obs_sign(0, x); return x; }\n\
        fn f(int x) {\n\
            __check(1, x > 0);\n\
            int a = h(x);\n\
            int b = h(a);\n\
            int c = h(b);\n\
            __check(2, c > 0);\n\
        }";
    let (_, stats, s) = transform(src, &TransformOptions::default());
    let f = stats.functions.iter().find(|f| f.name == "f").unwrap();
    // Regions: before first call, and after last call.  The gaps between
    // calls contain no sites, so no threshold checks appear there.
    assert_eq!(f.threshold_checks, 2, "{s}");
    // Exports and imports wrap each call.
    assert!(s.matches("__gcd = __cd;").count() >= 3, "{s}");
}

#[test]
fn break_and_continue_survive_cloning() {
    let src = "fn f(int n) {\n\
        int i = 0;\n\
        while (i < n) {\n\
            __check(0, i < 100);\n\
            if (i == 3) { i = i + 2; continue; }\n\
            if (i > 7) { break; }\n\
            i = i + 1;\n\
        }\n\
    }";
    let (q, _, s) = transform(src, &TransformOptions::default());
    // Both paths of the dual region keep the control-flow statements.
    assert!(s.matches("continue;").count() >= 2, "{s}");
    assert!(s.matches("break;").count() >= 2, "{s}");
    resolve_instrumented(&q).unwrap();
}

#[test]
fn devolved_mode_counts_no_thresholds_anywhere() {
    let src =
        "fn f(int n) { int i = 0; while (i < n) { __check(0, 1); __check(1, 1); i = i + 1; } }";
    let opts = TransformOptions {
        regions: false,
        ..TransformOptions::default()
    };
    let (_, stats, s) = transform(src, &opts);
    assert_eq!(stats.functions[0].threshold_checks, 0);
    assert_eq!(stats.functions[0].total_threshold_weight, 0);
    assert!(!s.contains("> 2"), "no weight-2 threshold: {s}");
}

#[test]
fn global_mode_emits_no_local_countdown_anywhere() {
    let src = "fn h(int x) -> int { __obs_sign(0, x); return x; }\n\
        fn f(int x) { __check(1, x > 0); int y = h(x); __check(2, y > 0); }";
    let opts = TransformOptions {
        countdown: CountdownStorage::Global,
        ..TransformOptions::default()
    };
    let (_, _, s) = transform(src, &opts);
    assert!(!s.contains("__cd"), "{s}");
    assert!(s.contains("__gcd"), "{s}");
}

#[test]
fn site_only_in_loop_means_zero_weight_entry_region() {
    // The function-entry region has no sites; §2.2 discards zero-weight
    // threshold checks, so the only check is inside the loop.
    let src = "fn f(int n) { int i = 0; while (i < n) { __check(0, 1); i = i + 1; } print(n); }";
    let (_, stats, s) = transform(src, &TransformOptions::default());
    assert_eq!(stats.functions[0].threshold_checks, 1);
    let while_pos = s.find("while").unwrap();
    let check_pos = s.find("if (__cd >").unwrap();
    assert!(check_pos > while_pos, "check must be inside the loop: {s}");
}

#[test]
fn variants_cover_each_function_and_preserve_other_code() {
    let src = "fn a(int x) { __check(0, x > 0); }\n\
        fn b(int x) { __check(1, x > 1); __check(2, x > 2); }\n\
        fn c(int x) -> int { return x * 2; }";
    let p = parse(src).unwrap();
    let inst = instrument(&strip_sites(&p), Scheme::Checks).unwrap();
    let _ = inst; // `p` already carries handwritten sites; build variants on it.
    let fake = cbi_instrument::Instrumented {
        program: p.clone(),
        sites: {
            let mut t = cbi_instrument::SiteTable::new();
            t.add(
                "a",
                cbi_minic::Span::new(1, 1),
                cbi_instrument::SiteKind::Assert,
                "x > 0".into(),
            );
            t.add(
                "b",
                cbi_minic::Span::new(2, 1),
                cbi_instrument::SiteKind::Assert,
                "x > 1".into(),
            );
            t.add(
                "b",
                cbi_minic::Span::new(2, 2),
                cbi_instrument::SiteKind::Assert,
                "x > 2".into(),
            );
            t
        },
        scheme: Scheme::Checks,
    };
    let variants = single_function_variants(&fake);
    assert_eq!(variants.len(), 2);
    for v in &variants {
        let kept: usize = v
            .program
            .functions
            .iter()
            .map(|f| count_sites_block(&f.body))
            .sum();
        let own = count_sites_block(&v.program.function(&v.function).unwrap().body);
        assert_eq!(kept, own, "variant keeps only its own sites");
        assert!(
            v.program.function("c").is_some(),
            "uninstrumented code kept"
        );
    }
}

#[test]
fn transformation_depth_is_robust_to_pathological_nesting() {
    // 12 nested loops, site at the innermost level.
    let mut src = String::from("fn f(int n) {\n");
    for d in 0..12 {
        src.push_str(&format!("int i{d} = 0;\nwhile (i{d} < 2) {{\n"));
    }
    src.push_str("__check(0, 1);\n");
    for d in 0..12 {
        src.push_str(&format!("i{d} = i{d} + 1;\n}}\n"));
    }
    src.push('}');
    let (q, stats, _) = transform(&src, &TransformOptions::default());
    assert_eq!(stats.functions[0].sites, 1);
    assert!(stats.functions[0].threshold_checks >= 1);
    resolve_instrumented(&q).unwrap();
}
