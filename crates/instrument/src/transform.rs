//! The sampling transformation (§2.2–§2.4).
//!
//! Given a program whose instrumentation sites have been inserted by a
//! scheme (as `__check`/`__cmp`/`__obs_sign` statements), this pass rewrites
//! every site-containing function so that sites fire according to the
//! next-sample countdown:
//!
//! * the function body is decomposed into *acyclic segments*, broken at
//!   loops containing instrumentation and at calls to non-weightless
//!   functions (§2.2, §2.3);
//! * each segment with site weight `w > 0` gets a *threshold check*
//!   `if (cd > w)` selecting between a cloned **fast path** (sites replaced
//!   by countdown decrements, coalesced where possible) and a **slow path**
//!   (each site guarded by `cd -= 1; if (cd == 0) { observe; cd = __next_cd(); }`);
//! * loop bodies are transformed recursively, which places a threshold
//!   check along every loop back edge;
//! * with [`CountdownStorage::Local`] the countdown is kept in a local
//!   variable, imported from the global `__gcd` at entry and exported at
//!   returns and around calls to non-weightless functions (§2.4) — this is
//!   what lets decrements coalesce;
//! * weightless functions (§2.3) are left completely untouched.
//!
//! Setting [`TransformOptions::regions`] to `false` produces the "devolved"
//! pattern of §3.2.5 — a countdown check at each and every site, with no
//! dual paths — which is also the ablation baseline for region weighting.

use crate::sites::site_stmt;
use crate::weightless::weightless_functions;
use crate::InstrumentError;
use cbi_minic::ast::*;
use cbi_minic::builtins::{GLOBAL_COUNTDOWN, LOCAL_COUNTDOWN};
use cbi_minic::{Builtin, Span};
use std::collections::HashSet;

/// Where the next-sample countdown lives during function execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CountdownStorage {
    /// A per-function local copy, imported/exported at boundaries (§2.4).
    /// Enables decrement coalescing.
    #[default]
    Local,
    /// The global countdown is read and written directly at every
    /// decrement.  Models the paper's observation that conservative
    /// aliasing assumptions prevent the native compiler from coalescing;
    /// coalescing is therefore disabled in this mode.
    Global,
}

/// Options controlling the sampling transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformOptions {
    /// Countdown storage strategy (§2.4).
    pub countdown: CountdownStorage,
    /// Merge adjacent fast-path decrements into one (requires local
    /// countdown storage to take effect).
    pub coalesce: bool,
    /// Run the interprocedural weightless-function analysis (§2.3).  With
    /// `false`, every call conservatively breaks acyclic regions, as under
    /// separate compilation (§3.2.5).
    pub interprocedural: bool,
    /// Amortize countdown checks over acyclic regions (§2.2).  With
    /// `false`, each site individually checks the countdown.
    pub regions: bool,
}

impl Default for TransformOptions {
    fn default() -> Self {
        TransformOptions {
            countdown: CountdownStorage::Local,
            coalesce: true,
            interprocedural: true,
            regions: true,
        }
    }
}

/// Per-function statistics from the transformation, feeding Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionStats {
    /// Function name.
    pub name: String,
    /// Number of instrumentation sites directly contained.
    pub sites: usize,
    /// Number of threshold check points placed.
    pub threshold_checks: usize,
    /// Sum of the weights of all threshold checks.
    pub total_threshold_weight: u64,
    /// Whether the function was weightless (left untouched).
    pub weightless: bool,
}

/// Whole-program transformation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransformStats {
    /// One entry per function, in program order.
    pub functions: Vec<FunctionStats>,
}

impl TransformStats {
    /// Functions that directly contain at least one site.
    pub fn functions_with_sites(&self) -> usize {
        self.functions.iter().filter(|f| f.sites > 0).count()
    }

    /// Number of weightless functions.
    pub fn weightless_functions(&self) -> usize {
        self.functions.iter().filter(|f| f.weightless).count()
    }

    /// Average sites per site-containing function (Table 1 "sites").
    pub fn avg_sites(&self) -> f64 {
        ratio(
            self.functions.iter().map(|f| f.sites).sum::<usize>() as f64,
            self.functions_with_sites() as f64,
        )
    }

    /// Average threshold checks per site-containing function.
    pub fn avg_threshold_checks(&self) -> f64 {
        ratio(
            self.functions
                .iter()
                .map(|f| f.threshold_checks)
                .sum::<usize>() as f64,
            self.functions_with_sites() as f64,
        )
    }

    /// Average weight over all threshold checks.
    pub fn avg_threshold_weight(&self) -> f64 {
        ratio(
            self.functions
                .iter()
                .map(|f| f.total_threshold_weight)
                .sum::<u64>() as f64,
            self.functions
                .iter()
                .map(|f| f.threshold_checks)
                .sum::<usize>() as f64,
        )
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Applies the sampling transformation.
///
/// Returns the transformed program (with the `__gcd` countdown global
/// added) and per-function statistics.
///
/// # Errors
///
/// Returns [`InstrumentError`] if the program was already transformed
/// (it declares `__gcd`).
pub fn apply_sampling(
    program: &Program,
    options: &TransformOptions,
) -> Result<(Program, TransformStats), InstrumentError> {
    if program.global(GLOBAL_COUNTDOWN).is_some() {
        return Err(InstrumentError::new(
            "program already contains the sampling countdown; refusing to transform twice",
        ));
    }

    let weightless = weightless_functions(program, options.interprocedural);
    let defined: HashSet<String> = program.functions.iter().map(|f| f.name.clone()).collect();

    let mut out = program.clone();
    out.globals.push(Global {
        name: GLOBAL_COUNTDOWN.to_string(),
        ty: Type::Int,
        init: 0,
        span: Span::synthesized(),
    });

    let mut stats = TransformStats::default();
    for f in &mut out.functions {
        let sites = count_sites_block(&f.body);
        let is_weightless = weightless.contains(&f.name);
        if sites == 0 {
            // No cloning or countdown plumbing needed (§2.3/§3.1.2): the
            // function has nothing to sample.  Calls inside it to
            // instrumented functions are handled by those functions
            // themselves.
            stats.functions.push(FunctionStats {
                name: f.name.clone(),
                sites: 0,
                threshold_checks: 0,
                total_threshold_weight: 0,
                weightless: is_weightless,
            });
            continue;
        }
        let mut tx = Transformer {
            options: *options,
            weightless: &weightless,
            defined: &defined,
            threshold_checks: 0,
            total_threshold_weight: 0,
        };
        let mut body = tx.transform_block(&f.body);
        if options.countdown == CountdownStorage::Local {
            body = add_local_plumbing(body);
        }
        f.body = body;
        stats.functions.push(FunctionStats {
            name: f.name.clone(),
            sites,
            threshold_checks: tx.threshold_checks,
            total_threshold_weight: tx.total_threshold_weight,
            weightless: is_weightless,
        });
    }
    Ok((out, stats))
}

/// Counts instrumentation sites in a block, recursively.
pub fn count_sites_block(b: &Block) -> usize {
    b.stmts.iter().map(count_sites_stmt).sum()
}

fn count_sites_stmt(s: &Stmt) -> usize {
    if site_stmt(s).is_some() {
        return 1;
    }
    match s {
        Stmt::If {
            then_block,
            else_block,
            ..
        } => count_sites_block(then_block) + else_block.as_ref().map_or(0, count_sites_block),
        Stmt::While { body, .. } => count_sites_block(body),
        _ => 0,
    }
}

/// The maximum number of sites on any path through an acyclic segment —
/// the segment's *weight* (§2.2).
pub fn segment_weight(stmts: &[Stmt]) -> u64 {
    stmts.iter().map(stmt_weight).sum()
}

fn stmt_weight(s: &Stmt) -> u64 {
    if site_stmt(s).is_some() {
        return 1;
    }
    match s {
        Stmt::If {
            then_block,
            else_block,
            ..
        } => {
            let t = segment_weight(&then_block.stmts);
            let e = else_block.as_ref().map_or(0, |b| segment_weight(&b.stmts));
            t.max(e)
        }
        // A `While` inside a segment is necessarily site-free (otherwise it
        // would be a region boundary), so it contributes no weight — §2.2:
        // "any cycle … without instrumentation is weightless".
        Stmt::While { .. } => 0,
        _ => 0,
    }
}

enum Class {
    /// Plain segment material.
    Segment,
    /// A root call to a non-weightless user function.
    HeavyCall,
    /// A loop or conditional whose interior must be transformed recursively.
    Recurse,
}

struct Transformer<'a> {
    options: TransformOptions,
    weightless: &'a HashSet<String>,
    defined: &'a HashSet<String>,
    threshold_checks: usize,
    total_threshold_weight: u64,
}

impl Transformer<'_> {
    fn cd_name(&self) -> &'static str {
        match self.options.countdown {
            CountdownStorage::Local => LOCAL_COUNTDOWN,
            CountdownStorage::Global => GLOBAL_COUNTDOWN,
        }
    }

    fn is_heavy_call_name(&self, name: &str) -> bool {
        if let Some(b) = Builtin::from_name(name) {
            return !b.is_weightless();
        }
        if self.defined.contains(name) {
            return !self.weightless.contains(name);
        }
        true
    }

    fn expr_has_heavy_call(&self, e: &Expr) -> bool {
        let mut names = Vec::new();
        e.called_names(&mut names);
        names.iter().any(|n| self.is_heavy_call_name(n))
    }

    fn stmt_has_heavy_call(&self, s: &Stmt) -> bool {
        match s {
            Stmt::Decl { init, .. } => init.as_ref().is_some_and(|e| self.expr_has_heavy_call(e)),
            Stmt::Assign { value, .. } => self.expr_has_heavy_call(value),
            Stmt::Store { index, value, .. } => {
                self.expr_has_heavy_call(index) || self.expr_has_heavy_call(value)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                self.expr_has_heavy_call(cond)
                    || then_block.stmts.iter().any(|s| self.stmt_has_heavy_call(s))
                    || else_block
                        .as_ref()
                        .is_some_and(|b| b.stmts.iter().any(|s| self.stmt_has_heavy_call(s)))
            }
            Stmt::While { cond, body, .. } => {
                self.expr_has_heavy_call(cond)
                    || body.stmts.iter().any(|s| self.stmt_has_heavy_call(s))
            }
            Stmt::Return { value, .. } => {
                value.as_ref().is_some_and(|e| self.expr_has_heavy_call(e))
            }
            Stmt::Break { .. } | Stmt::Continue { .. } => false,
            Stmt::Check { cond, .. } => self.expr_has_heavy_call(cond),
            Stmt::Expr { expr, .. } => self.expr_has_heavy_call(expr),
        }
    }

    fn classify(&self, s: &Stmt) -> Class {
        if site_stmt(s).is_some() {
            return Class::Segment;
        }
        match s {
            Stmt::While { body, .. } => {
                if count_sites_block(body) > 0 || self.stmt_has_heavy_call(s) {
                    Class::Recurse
                } else {
                    Class::Segment
                }
            }
            Stmt::If { .. } => {
                if self.contains_instrumented_loop(s) || self.stmt_has_heavy_call(s) {
                    Class::Recurse
                } else {
                    Class::Segment
                }
            }
            Stmt::Decl { .. } | Stmt::Assign { .. } | Stmt::Expr { .. } => {
                if self.stmt_has_heavy_call(s) {
                    Class::HeavyCall
                } else {
                    Class::Segment
                }
            }
            _ => Class::Segment,
        }
    }

    /// Does the statement contain (at any depth) a loop whose body has
    /// instrumentation?  Such a loop needs back-edge threshold checks and
    /// forces recursion.
    fn contains_instrumented_loop(&self, s: &Stmt) -> bool {
        match s {
            Stmt::While { body, .. } => count_sites_block(body) > 0,
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                then_block
                    .stmts
                    .iter()
                    .any(|s| self.contains_instrumented_loop(s))
                    || else_block
                        .as_ref()
                        .is_some_and(|b| b.stmts.iter().any(|s| self.contains_instrumented_loop(s)))
            }
            _ => false,
        }
    }

    fn transform_block(&mut self, b: &Block) -> Block {
        let mut out: Vec<Stmt> = Vec::new();
        let mut seg: Vec<Stmt> = Vec::new();
        for s in &b.stmts {
            match self.classify(s) {
                Class::Segment => seg.push(s.clone()),
                Class::HeavyCall => {
                    self.flush(&mut seg, &mut out);
                    if self.options.countdown == CountdownStorage::Local {
                        out.push(export_stmt());
                        out.push(s.clone());
                        out.push(import_stmt());
                    } else {
                        out.push(s.clone());
                    }
                }
                Class::Recurse => {
                    self.flush(&mut seg, &mut out);
                    match s {
                        Stmt::While { cond, body, span } => out.push(Stmt::While {
                            cond: cond.clone(),
                            body: self.transform_block(body),
                            span: *span,
                        }),
                        Stmt::If {
                            cond,
                            then_block,
                            else_block,
                            span,
                        } => out.push(Stmt::If {
                            cond: cond.clone(),
                            then_block: self.transform_block(then_block),
                            else_block: else_block.as_ref().map(|e| self.transform_block(e)),
                            span: *span,
                        }),
                        _ => unreachable!("only loops and conditionals recurse"),
                    }
                }
            }
        }
        self.flush(&mut seg, &mut out);
        Block::new(out)
    }

    fn flush(&mut self, seg: &mut Vec<Stmt>, out: &mut Vec<Stmt>) {
        if seg.is_empty() {
            return;
        }
        let stmts = std::mem::take(seg);
        let w = segment_weight(&stmts);
        if w == 0 {
            // Zero-weight threshold checks are discarded (§2.2).
            out.extend(stmts);
            return;
        }
        if self.options.regions {
            self.threshold_checks += 1;
            self.total_threshold_weight += w;
            let fast = self.fast_copy(&stmts);
            let slow = self.slow_copy(&stmts);
            out.push(Stmt::If {
                cond: Expr::binary(BinOp::Gt, Expr::var(self.cd_name()), Expr::int(w as i64)),
                then_block: fast,
                else_block: Some(slow),
                span: Span::synthesized(),
            });
        } else {
            // Devolved pattern: a countdown check at each and every site.
            let slow = self.slow_copy(&stmts);
            out.extend(slow.stmts);
        }
    }

    fn decrement(&self, k: u64) -> Stmt {
        Stmt::Assign {
            name: self.cd_name().to_string(),
            value: Expr::binary(BinOp::Sub, Expr::var(self.cd_name()), Expr::int(k as i64)),
            span: Span::synthesized(),
        }
    }

    fn fast_copy(&self, stmts: &[Stmt]) -> Block {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            if site_stmt(s).is_some() {
                out.push(self.decrement(1));
                continue;
            }
            match s {
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_block: self.fast_copy(&then_block.stmts),
                    else_block: else_block.as_ref().map(|b| self.fast_copy(&b.stmts)),
                    span: *span,
                }),
                other => out.push(other.clone()),
            }
        }
        let mut block = Block::new(out);
        if self.options.coalesce && self.options.countdown == CountdownStorage::Local {
            block = coalesce_decrements(block, self.cd_name());
        }
        block
    }

    fn slow_copy(&self, stmts: &[Stmt]) -> Block {
        let mut out = Vec::with_capacity(stmts.len() * 2);
        for s in stmts {
            if site_stmt(s).is_some() {
                // cd -= 1; if (cd == 0) { <site>; cd = __next_cd(); }
                out.push(self.decrement(1));
                out.push(Stmt::If {
                    cond: Expr::binary(BinOp::Eq, Expr::var(self.cd_name()), Expr::int(0)),
                    then_block: Block::new(vec![
                        s.clone(),
                        Stmt::Assign {
                            name: self.cd_name().to_string(),
                            value: Expr::call(Builtin::NextCountdown.name(), vec![]),
                            span: Span::synthesized(),
                        },
                    ]),
                    else_block: None,
                    span: Span::synthesized(),
                });
                continue;
            }
            match s {
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_block: self.slow_copy(&then_block.stmts),
                    else_block: else_block.as_ref().map(|b| self.slow_copy(&b.stmts)),
                    span: *span,
                }),
                other => out.push(other.clone()),
            }
        }
        Block::new(out)
    }
}

fn export_stmt() -> Stmt {
    Stmt::Assign {
        name: GLOBAL_COUNTDOWN.to_string(),
        value: Expr::var(LOCAL_COUNTDOWN),
        span: Span::synthesized(),
    }
}

fn import_stmt() -> Stmt {
    Stmt::Assign {
        name: LOCAL_COUNTDOWN.to_string(),
        value: Expr::var(GLOBAL_COUNTDOWN),
        span: Span::synthesized(),
    }
}

/// Wraps a transformed body with local-countdown import/export (§2.4):
/// `int __cd = __gcd;` at entry, `__gcd = __cd;` before every `return` and
/// at fall-through exit.
fn add_local_plumbing(body: Block) -> Block {
    let mut stmts = vec![Stmt::Decl {
        ty: Type::Int,
        name: LOCAL_COUNTDOWN.to_string(),
        init: Some(Expr::var(GLOBAL_COUNTDOWN)),
        span: Span::synthesized(),
    }];
    stmts.extend(export_before_returns(body).stmts);
    stmts.push(export_stmt());
    Block::new(stmts)
}

fn export_before_returns(b: Block) -> Block {
    let mut out = Vec::with_capacity(b.stmts.len());
    for s in b.stmts {
        match s {
            Stmt::Return { .. } => {
                out.push(export_stmt());
                out.push(s);
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                span,
            } => out.push(Stmt::If {
                cond,
                then_block: export_before_returns(then_block),
                else_block: else_block.map(export_before_returns),
                span,
            }),
            Stmt::While { cond, body, span } => out.push(Stmt::While {
                cond,
                body: export_before_returns(body),
                span,
            }),
            other => out.push(other),
        }
    }
    Block::new(out)
}

/// Coalesces countdown decrements within basic blocks: all decrements in a
/// straight-line run (uninterrupted by control flow) merge into a single
/// `cd = cd - k;` at the head of the run — the `countdown -= 5` adjustment
/// the native compiler performs once the countdown lives in a local (§2.4).
///
/// Hoisting never crosses `if`/`while`/`return`/`break`/`continue`, so the
/// number of decrements executed along every path is preserved exactly.
fn coalesce_decrements(b: Block, cd: &str) -> Block {
    fn as_decrement(s: &Stmt, cd: &str) -> Option<i64> {
        let Stmt::Assign { name, value, .. } = s else {
            return None;
        };
        if name != cd {
            return None;
        }
        let Expr::Binary {
            op: BinOp::Sub,
            lhs,
            rhs,
            ..
        } = value
        else {
            return None;
        };
        match (&**lhs, &**rhs) {
            (Expr::Var { name: v, .. }, Expr::Int { value, .. }) if v == cd => Some(*value),
            _ => None,
        }
    }

    fn decrement_of(total: i64, cd: &str) -> Stmt {
        Stmt::Assign {
            name: cd.to_string(),
            value: Expr::binary(BinOp::Sub, Expr::var(cd), Expr::int(total)),
            span: Span::synthesized(),
        }
    }

    let mut out: Vec<Stmt> = Vec::with_capacity(b.stmts.len());
    let mut run: Vec<Stmt> = Vec::new();
    let mut total: i64 = 0;

    let flush = |out: &mut Vec<Stmt>, run: &mut Vec<Stmt>, total: &mut i64, cd: &str| {
        if *total > 0 {
            out.push(decrement_of(*total, cd));
        }
        out.append(run);
        *total = 0;
    };

    for s in b.stmts {
        if let Some(k) = as_decrement(&s, cd) {
            total += k;
            continue;
        }
        match s {
            Stmt::If {
                cond,
                then_block,
                else_block,
                span,
            } => {
                flush(&mut out, &mut run, &mut total, cd);
                out.push(Stmt::If {
                    cond,
                    then_block: coalesce_decrements(then_block, cd),
                    else_block: else_block.map(|e| coalesce_decrements(e, cd)),
                    span,
                });
            }
            Stmt::While { cond, body, span } => {
                flush(&mut out, &mut run, &mut total, cd);
                out.push(Stmt::While {
                    cond,
                    body: coalesce_decrements(body, cd),
                    span,
                });
            }
            s @ (Stmt::Return { .. } | Stmt::Break { .. } | Stmt::Continue { .. }) => {
                flush(&mut out, &mut run, &mut total, cd);
                out.push(s);
            }
            simple => run.push(simple),
        }
    }
    flush(&mut out, &mut run, &mut total, cd);
    Block::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::{parse, pretty};

    fn transform(src: &str, options: &TransformOptions) -> (Program, TransformStats, String) {
        let p = parse(src).unwrap();
        let (q, stats) = apply_sampling(&p, options).unwrap();
        let s = pretty(&q);
        (q, stats, s)
    }

    const TWO_SITES: &str = "fn f(ptr p, int i, int max) {\n\
        __check(0, p != null);\n\
        p = p + 1;\n\
        __check(1, i < max);\n\
        i = i + 1;\n\
    }";

    #[test]
    fn straight_line_gets_one_threshold_check_of_weight_two() {
        let (_, stats, s) = transform(TWO_SITES, &TransformOptions::default());
        let f = &stats.functions[0];
        assert_eq!(f.sites, 2);
        assert_eq!(f.threshold_checks, 1);
        assert_eq!(f.total_threshold_weight, 2);
        assert!(s.contains("if (__cd > 2)"), "{s}");
    }

    #[test]
    fn fast_path_coalesces_decrements() {
        let (_, _, s) = transform(TWO_SITES, &TransformOptions::default());
        assert!(s.contains("__cd = __cd - 2;"), "{s}");
        // Exactly one merged decrement on the fast path; the slow path has
        // two separate single decrements.
        assert_eq!(s.matches("__cd = __cd - 2;").count(), 1, "{s}");
        assert_eq!(s.matches("__cd = __cd - 1;").count(), 2, "{s}");
    }

    #[test]
    fn slow_path_guards_each_site() {
        let (_, _, s) = transform(TWO_SITES, &TransformOptions::default());
        assert_eq!(s.matches("if (__cd == 0)").count(), 2, "{s}");
        assert_eq!(s.matches("__next_cd()").count(), 2, "{s}");
        assert!(s.contains("__check(0, p != null);"), "{s}");
        assert!(s.contains("__check(1, i < max);"), "{s}");
    }

    #[test]
    fn local_mode_imports_and_exports() {
        let (_, _, s) = transform(TWO_SITES, &TransformOptions::default());
        assert!(s.contains("int __cd = __gcd;"), "{s}");
        assert!(s.contains("__gcd = __cd;"), "{s}");
    }

    #[test]
    fn global_mode_uses_global_directly_without_coalescing() {
        let opts = TransformOptions {
            countdown: CountdownStorage::Global,
            ..TransformOptions::default()
        };
        let (_, _, s) = transform(TWO_SITES, &opts);
        assert!(!s.contains("__cd "), "no local countdown expected: {s}");
        assert!(s.contains("if (__gcd > 2)"), "{s}");
        // Two separate decrements in the fast path (no coalescing), plus two
        // in the slow path.
        assert_eq!(s.matches("__gcd = __gcd - 1;").count(), 4, "{s}");
    }

    #[test]
    fn devolved_mode_has_no_threshold_checks() {
        let opts = TransformOptions {
            regions: false,
            ..TransformOptions::default()
        };
        let (_, stats, s) = transform(TWO_SITES, &opts);
        assert_eq!(stats.functions[0].threshold_checks, 0);
        assert!(!s.contains("__cd > "), "{s}");
        assert_eq!(s.matches("if (__cd == 0)").count(), 2, "{s}");
    }

    #[test]
    fn loop_bodies_get_back_edge_checks() {
        let src = "fn f(int n) { int i = 0; while (i < n) { __check(0, i < 100); i = i + 1; } }";
        let (_, stats, s) = transform(src, &TransformOptions::default());
        let f = &stats.functions[0];
        assert_eq!(f.threshold_checks, 1);
        // The threshold check sits inside the loop body.
        let while_pos = s.find("while").unwrap();
        let check_pos = s.find("if (__cd > 1)").unwrap();
        assert!(check_pos > while_pos, "{s}");
    }

    #[test]
    fn site_free_loops_stay_inside_segments() {
        let src = "fn f(int n) {\n\
            __check(0, n > 0);\n\
            int i = 0;\n\
            while (i < n) { i = i + 1; }\n\
            __check(1, i == n);\n\
        }";
        let (_, stats, _) = transform(src, &TransformOptions::default());
        // One region spanning the weightless loop: a single check, weight 2.
        let f = &stats.functions[0];
        assert_eq!(f.threshold_checks, 1);
        assert_eq!(f.total_threshold_weight, 2);
    }

    #[test]
    fn if_weight_is_max_of_branches() {
        let src = "fn f(int x) {\n\
            if (x > 0) { __check(0, x < 10); __check(1, x < 20); } else { __check(2, x > -10); }\n\
        }";
        let (_, stats, _) = transform(src, &TransformOptions::default());
        let f = &stats.functions[0];
        assert_eq!(f.threshold_checks, 1);
        assert_eq!(f.total_threshold_weight, 2, "max(2, 1)");
    }

    #[test]
    fn weightless_calls_do_not_break_regions() {
        let src = "fn helper(int x) -> int { return x + 1; }\n\
            fn f(int x) {\n\
            __check(0, x > 0);\n\
            int y = helper(x);\n\
            __check(1, y > 1);\n\
        }";
        let (_, stats, _) = transform(src, &TransformOptions::default());
        let f = stats.functions.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(f.threshold_checks, 1, "single region across the call");
        assert_eq!(f.total_threshold_weight, 2);
        let h = stats.functions.iter().find(|f| f.name == "helper").unwrap();
        assert!(h.weightless);
    }

    #[test]
    fn heavy_calls_break_regions_with_export_import() {
        let src = "fn heavy(int x) -> int { __obs_sign(9, x); return x; }\n\
            fn f(int x) {\n\
            __check(0, x > 0);\n\
            int y = heavy(x);\n\
            __check(2, y > 1);\n\
        }";
        let (_, stats, s) = transform(src, &TransformOptions::default());
        let f = stats.functions.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(f.threshold_checks, 2, "regions split at the call");
        // Export before the call, import after.
        let call = s.find("int y = heavy(x);").unwrap();
        let export = s[..call]
            .rfind("__gcd = __cd;")
            .expect("export before call");
        let import = s[call..].find("__cd = __gcd;").expect("import after call");
        assert!(export < call && import > 0);
    }

    #[test]
    fn separate_compilation_breaks_all_call_regions() {
        let src = "fn helper(int x) -> int { return x + 1; }\n\
            fn f(int x) {\n\
            __check(0, x > 0);\n\
            int y = helper(x);\n\
            __check(1, y > 1);\n\
        }";
        let opts = TransformOptions {
            interprocedural: false,
            ..TransformOptions::default()
        };
        let (_, stats, _) = transform(src, &opts);
        let f = stats.functions.iter().find(|f| f.name == "f").unwrap();
        assert_eq!(f.threshold_checks, 2);
        assert_eq!(stats.weightless_functions(), 0);
    }

    #[test]
    fn functions_without_sites_untouched() {
        let src = "fn quiet(int x) -> int { return x * 2; }\n\
                   fn f(int x) { __check(0, x > 0); }";
        let p = parse(src).unwrap();
        let (q, _) = apply_sampling(&p, &TransformOptions::default()).unwrap();
        assert_eq!(
            p.function("quiet").unwrap().body,
            q.function("quiet").unwrap().body
        );
    }

    #[test]
    fn transformed_program_still_resolves() {
        let src = "fn heavy(int x) -> int { __obs_sign(9, x); return x; }\n\
            fn f(int x) {\n\
            __check(0, x > 0);\n\
            int y = heavy(x);\n\
            int i = 0;\n\
            while (i < y) { __check(2, i < 100); i = i + 1; }\n\
        }\n\
        fn main() -> int { f(3); return 0; }";
        let p = parse(src).unwrap();
        let (q, _) = apply_sampling(&p, &TransformOptions::default()).unwrap();
        cbi_minic::resolve_relaxed(&q).unwrap_or_else(|e| panic!("{e}\n{}", pretty(&q)));
        // And the pretty-printed form re-parses to the same program shape.
        let reparsed = parse(&pretty(&q)).unwrap();
        assert_eq!(pretty(&reparsed), pretty(&q));
    }

    #[test]
    fn double_transformation_rejected() {
        let p = parse(TWO_SITES).unwrap();
        let (q, _) = apply_sampling(&p, &TransformOptions::default()).unwrap();
        assert!(apply_sampling(&q, &TransformOptions::default()).is_err());
    }

    #[test]
    fn returns_get_countdown_export() {
        let src = "fn f(int x) -> int { __check(0, x > 0); if (x > 5) { return 1; } return 0; }";
        let (_, _, s) = transform(src, &TransformOptions::default());
        // Exports appear before both returns (plus the fall-through export).
        assert!(s.matches("__gcd = __cd;").count() >= 2, "{s}");
        let ret1 = s.find("return 1;").unwrap();
        assert!(s[..ret1].rfind("__gcd = __cd;").is_some(), "{s}");
    }

    #[test]
    fn stats_aggregates() {
        let src = "fn a(int x) { __check(0, x > 1); __check(1, x > 2); }\n\
                   fn b(int x) { __check(2, x > 1); }\n\
                   fn c() { print(1); }";
        let (_, stats, _) = transform(src, &TransformOptions::default());
        assert_eq!(stats.functions_with_sites(), 2);
        assert_eq!(stats.weightless_functions(), 1);
        assert!((stats.avg_sites() - 1.5).abs() < 1e-9);
        assert!(stats.avg_threshold_weight() >= 1.0);
    }

    #[test]
    fn segment_weight_rules() {
        let p = parse(
            "fn f(int x) { __check(0, x > 0); if (x > 1) { __check(1, x > 2); } while (x < 0) { x = x + 1; } }",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        assert_eq!(segment_weight(&f.body.stmts), 2);
    }
}
