//! Instrumentation schemes: what gets observed, and where.
//!
//! A scheme takes a resolved program and inserts observation-site
//! statements, returning the instrumented program together with its
//! [`SiteTable`].  The paper uses three schemes; a fourth (`branches`) is
//! included as an extension in the spirit of the CBI follow-on work:
//!
//! * [`Scheme::Checks`] — CCured-style safety checks (§3.1): user
//!   `check(...)` assertions become counted assertion sites, and every
//!   pure heap load/store grows a bounds-and-null check site;
//! * [`Scheme::Returns`] — function-return sign triples (§3.2.1): after
//!   every call whose result is consumed, record whether the value was
//!   negative, zero, or positive;
//! * [`Scheme::ScalarPairs`] — after every direct assignment to a scalar
//!   `a`, compare `a` with every other in-scope variable of the same type
//!   (§3.3.1); pointers are additionally compared against `null`;
//! * [`Scheme::Branches`] — record each branch condition's truth value.
//!
//! All schemes first run [`crate::normalize::flatten_calls`] so user calls
//! sit at statement roots.

use crate::normalize::flatten_calls;
use crate::sites::{SiteKind, SiteTable};
use crate::InstrumentError;
use cbi_minic::ast::*;
use cbi_minic::pretty::print_expr;
use cbi_minic::resolve::ProgramInfo;
use cbi_minic::{resolve, Builtin, Span};

/// Which observation scheme to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Memory-safety checks and user assertions (§3.1).
    Checks,
    /// Function-return sign triples (§3.2).
    Returns,
    /// Scalar-pair comparisons (§3.3).
    ScalarPairs,
    /// Branch-direction observations (extension).
    Branches,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scheme::Checks => "checks",
            Scheme::Returns => "returns",
            Scheme::ScalarPairs => "scalar-pairs",
            Scheme::Branches => "branches",
        };
        f.write_str(s)
    }
}

/// An instrumented program: the rewritten AST plus its site table.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The program with observation statements inserted (unconditional
    /// instrumentation; apply [`crate::transform::apply_sampling`] to make
    /// it sampled).
    pub program: Program,
    /// The sites, in id order, defining the report counter layout.
    pub sites: SiteTable,
    /// The scheme that produced this instrumentation.
    pub scheme: Scheme,
}

/// Applies `scheme` to `program`.
///
/// # Errors
///
/// Returns [`InstrumentError`] if call flattening fails (user calls in
/// `while` conditions or under short-circuit operators) or if the program
/// does not resolve.
pub fn instrument(program: &Program, scheme: Scheme) -> Result<Instrumented, InstrumentError> {
    let info =
        resolve(program).map_err(|e| InstrumentError::new(format!("resolve failed: {e}")))?;
    let flat = flatten_calls(program, &info)?;
    // Re-resolve: flattening introduced typed temporaries.
    let info = resolve(&flat)
        .map_err(|e| InstrumentError::new(format!("post-flattening resolve failed: {e}")))?;

    let mut sites = SiteTable::new();
    let mut out = flat.clone();
    for f in &mut out.functions {
        let mut cx = SchemeCx {
            sites: &mut sites,
            info: &info,
            function: f.name.clone(),
            scope: Scope::new(&flat, &info, f),
        };
        f.body = match scheme {
            Scheme::Checks => cx.checks_block(&f.body),
            Scheme::Returns => cx.returns_block(&f.body),
            Scheme::ScalarPairs => cx.pairs_block(&f.body),
            Scheme::Branches => cx.branches_block(&f.body),
        };
    }
    Ok(Instrumented {
        program: out,
        sites,
        scheme,
    })
}

/// Tracks which variables are in scope, in deterministic order, for the
/// scalar-pairs scheme.
struct Scope {
    /// (name, type), globals first, then params, then locals as declared.
    vars: Vec<(String, Type)>,
    /// Stack of `vars` lengths at block entry, for popping.
    marks: Vec<usize>,
}

impl Scope {
    fn new(program: &Program, _info: &ProgramInfo, f: &Function) -> Scope {
        let mut vars: Vec<(String, Type)> = program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.ty))
            .collect();
        vars.extend(f.params.iter().map(|p| (p.name.clone(), p.ty)));
        Scope {
            vars,
            marks: Vec::new(),
        }
    }

    fn push(&mut self) {
        self.marks.push(self.vars.len());
    }

    fn pop(&mut self) {
        let mark = self.marks.pop().expect("scope underflow");
        self.vars.truncate(mark);
    }

    fn declare(&mut self, name: &str, ty: Type) {
        self.vars.push((name.to_string(), ty));
    }

    /// Other in-scope variables with the given type, excluding `subject`
    /// and compiler-generated (`__`-prefixed) names.
    fn peers(&self, subject: &str, ty: Type) -> Vec<String> {
        self.vars
            .iter()
            .filter(|(n, t)| *t == ty && n != subject && !n.starts_with("__"))
            .map(|(n, _)| n.clone())
            .collect()
    }
}

struct SchemeCx<'a> {
    sites: &'a mut SiteTable,
    info: &'a ProgramInfo,
    function: String,
    scope: Scope,
}

impl SchemeCx<'_> {
    fn site_call(
        &mut self,
        kind: SiteKind,
        span: Span,
        text: String,
        builtin: Builtin,
        args: Vec<Expr>,
    ) -> Stmt {
        let id = self.sites.add(&self.function, span, kind, text);
        let mut full_args = vec![Expr::int(id.0 as i64)];
        full_args.extend(args);
        Stmt::Expr {
            expr: Expr::call(builtin.name(), full_args),
            span,
        }
    }

    // ---- checks scheme (§3.1) ----

    fn checks_block(&mut self, b: &Block) -> Block {
        let mut out = Vec::with_capacity(b.stmts.len());
        for s in &b.stmts {
            match s {
                Stmt::Check { cond, span } => {
                    // User assertion: becomes a counted check site.
                    let text = print_expr(cond);
                    out.push(self.site_call(
                        SiteKind::Assert,
                        *span,
                        text,
                        Builtin::ObsCheck,
                        vec![cond.clone()],
                    ));
                }
                Stmt::Store {
                    target,
                    index,
                    value,
                    span,
                } => {
                    self.push_load_checks(value, &mut out);
                    if is_pure(index) {
                        out.push(self.bounds_site(
                            Expr::var(target.clone()),
                            index.clone(),
                            *span,
                            &mut Vec::new(),
                        ));
                    }
                    out.push(s.clone());
                }
                Stmt::Assign { value, .. }
                | Stmt::Decl {
                    init: Some(value), ..
                } => {
                    self.push_load_checks(value, &mut out);
                    out.push(s.clone());
                }
                Stmt::Return {
                    value: Some(value), ..
                } => {
                    self.push_load_checks(value, &mut out);
                    out.push(s.clone());
                }
                Stmt::Expr { expr, .. } => {
                    // Loads inside call arguments, e.g. `print(a[0]);`.
                    self.push_load_checks(expr, &mut out);
                    out.push(s.clone());
                }
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_block: self.checks_block(then_block),
                    else_block: else_block.as_ref().map(|e| self.checks_block(e)),
                    span: *span,
                }),
                Stmt::While { cond, body, span } => out.push(Stmt::While {
                    cond: cond.clone(),
                    body: self.checks_block(body),
                    span: *span,
                }),
                other => out.push(other.clone()),
            }
        }
        Block::new(out)
    }

    /// Emits a bounds-check site for every pure load in `e`, inner loads
    /// first.
    fn push_load_checks(&mut self, e: &Expr, out: &mut Vec<Stmt>) {
        let mut checks = Vec::new();
        collect_loads(e, &mut checks);
        for (ptr, index, span) in checks {
            if is_pure(&ptr) && is_pure(&index) {
                let site = self.bounds_site(ptr, index, span, &mut Vec::new());
                out.push(site);
            }
        }
    }

    fn bounds_site(
        &mut self,
        ptr: Expr,
        index: Expr,
        span: Span,
        _scratch: &mut Vec<Stmt>,
    ) -> Stmt {
        let text = format!("0 <= {} < len({})", print_expr(&index), print_expr(&ptr));
        // ptr != null && index >= 0 && index < len(ptr)
        let cond = Expr::binary(
            BinOp::And,
            Expr::binary(
                BinOp::And,
                Expr::binary(
                    BinOp::Ne,
                    ptr.clone(),
                    Expr::Null {
                        span: Span::synthesized(),
                    },
                ),
                Expr::binary(BinOp::Ge, index.clone(), Expr::int(0)),
            ),
            Expr::binary(BinOp::Lt, index, Expr::call("len", vec![ptr])),
        );
        self.site_call(SiteKind::Bounds, span, text, Builtin::ObsCheck, vec![cond])
    }

    // ---- returns scheme (§3.2) ----

    fn returns_block(&mut self, b: &Block) -> Block {
        let mut out = Vec::with_capacity(b.stmts.len());
        for s in &b.stmts {
            match s {
                Stmt::Decl {
                    name,
                    init:
                        Some(Expr::Call {
                            name: callee,
                            span: cspan,
                            ..
                        }),
                    ..
                }
                | Stmt::Assign {
                    name,
                    value:
                        Expr::Call {
                            name: callee,
                            span: cspan,
                            ..
                        },
                    ..
                } if self.observable_call(callee) => {
                    let span = *cspan;
                    let callee = callee.clone();
                    let name = name.clone();
                    out.push(s.clone());
                    let site = self.site_call(
                        SiteKind::ReturnSign,
                        span,
                        format!("{callee}()"),
                        Builtin::ObsSign,
                        vec![Expr::var(name)],
                    );
                    out.push(site);
                }
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_block: self.returns_block(then_block),
                    else_block: else_block.as_ref().map(|e| self.returns_block(e)),
                    span: *span,
                }),
                Stmt::While { cond, body, span } => out.push(Stmt::While {
                    cond: cond.clone(),
                    body: self.returns_block(body),
                    span: *span,
                }),
                other => out.push(other.clone()),
            }
        }
        Block::new(out)
    }

    /// A call site is observable for the `returns` scheme when it is a user
    /// function returning a scalar (`int` or `ptr`).
    fn observable_call(&self, callee: &str) -> bool {
        if Builtin::from_name(callee).is_some() {
            return false;
        }
        self.info
            .signatures
            .get(callee)
            .is_some_and(|sig| sig.ret.is_some())
    }

    // ---- scalar-pairs scheme (§3.3) ----

    fn pairs_block(&mut self, b: &Block) -> Block {
        self.scope.push();
        let mut out = Vec::with_capacity(b.stmts.len());
        for s in &b.stmts {
            match s {
                Stmt::Decl {
                    ty,
                    name,
                    init,
                    span,
                } => {
                    out.push(s.clone());
                    // The variable enters scope; if initialized, the
                    // initialization is a direct assignment and is observed.
                    if init.is_some() {
                        self.emit_pair_sites(name, *ty, *span, &mut out);
                    }
                    self.scope.declare(name, *ty);
                }
                Stmt::Assign { name, span, .. } => {
                    out.push(s.clone());
                    if let Some(ty) = self.var_type(name) {
                        self.emit_pair_sites(name, ty, *span, &mut out);
                    }
                }
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span,
                } => out.push(Stmt::If {
                    cond: cond.clone(),
                    then_block: self.pairs_block(then_block),
                    else_block: else_block.as_ref().map(|e| self.pairs_block(e)),
                    span: *span,
                }),
                Stmt::While { cond, body, span } => out.push(Stmt::While {
                    cond: cond.clone(),
                    body: self.pairs_block(body),
                    span: *span,
                }),
                other => out.push(other.clone()),
            }
        }
        self.scope.pop();
        Block::new(out)
    }

    fn var_type(&self, name: &str) -> Option<Type> {
        self.info.var_type(&self.function, name)
    }

    fn emit_pair_sites(&mut self, a: &str, ty: Type, span: Span, out: &mut Vec<Stmt>) {
        if a.starts_with("__") {
            return; // compiler temporaries are not source assignments
        }
        for b in self.scope.peers(a, ty) {
            let site = self.site_call(
                SiteKind::ScalarPair,
                span,
                format!("{a}\u{1}{b}"),
                Builtin::ObsCmp,
                vec![Expr::var(a), Expr::var(b)],
            );
            out.push(site);
        }
        if ty == Type::Ptr {
            let site = self.site_call(
                SiteKind::ScalarPair,
                span,
                format!("{a}\u{1}null"),
                Builtin::ObsCmp,
                vec![
                    Expr::var(a),
                    Expr::Null {
                        span: Span::synthesized(),
                    },
                ],
            );
            out.push(site);
        }
    }

    // ---- branches scheme (extension) ----

    fn branches_block(&mut self, b: &Block) -> Block {
        let mut out = Vec::with_capacity(b.stmts.len());
        for s in &b.stmts {
            match s {
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span,
                } => {
                    if is_pure(cond) {
                        out.push(self.branch_site(cond, *span));
                    }
                    out.push(Stmt::If {
                        cond: cond.clone(),
                        then_block: self.branches_block(then_block),
                        else_block: else_block.as_ref().map(|e| self.branches_block(e)),
                        span: *span,
                    });
                }
                Stmt::While { cond, body, span } => {
                    if is_pure(cond) {
                        out.push(self.branch_site(cond, *span));
                    }
                    out.push(Stmt::While {
                        cond: cond.clone(),
                        body: self.branches_block(body),
                        span: *span,
                    });
                }
                other => out.push(other.clone()),
            }
        }
        Block::new(out)
    }

    fn branch_site(&mut self, cond: &Expr, span: Span) -> Stmt {
        let text = print_expr(cond);
        // Observe the sign of `cond != 0`: zero = branch not taken,
        // positive = taken.
        let value = Expr::binary(BinOp::Ne, cond.clone(), Expr::int(0));
        self.site_call(SiteKind::Branch, span, text, Builtin::ObsSign, vec![value])
    }
}

/// Collects `(ptr, index, span)` for every load in `e`, inner-most first.
fn collect_loads(e: &Expr, out: &mut Vec<(Expr, Expr, Span)>) {
    match e {
        Expr::Int { .. } | Expr::Null { .. } | Expr::Var { .. } => {}
        Expr::Load { ptr, index, span } => {
            collect_loads(ptr, out);
            collect_loads(index, out);
            out.push(((**ptr).clone(), (**index).clone(), *span));
        }
        Expr::Call { args, .. } => {
            for a in args {
                collect_loads(a, out);
            }
        }
        Expr::Unary { expr, .. } => collect_loads(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_loads(lhs, out);
            collect_loads(rhs, out);
        }
    }
}

/// An expression is pure when it contains no calls at all: evaluating it
/// twice (once inside a check, once in the original statement) is safe.
fn is_pure(e: &Expr) -> bool {
    !e.any(&mut |x| matches!(x, Expr::Call { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::site_stmt;
    use cbi_minic::{parse, pretty, resolve};

    fn run(src: &str, scheme: Scheme) -> (Instrumented, String) {
        let p = parse(src).unwrap();
        let inst = instrument(&p, scheme).unwrap();
        resolve(&inst.program).unwrap_or_else(|e| {
            panic!(
                "instrumented program fails resolve: {e}\n{}",
                pretty(&inst.program)
            )
        });
        let s = pretty(&inst.program);
        (inst, s)
    }

    #[test]
    fn checks_lowers_user_assertions() {
        let (inst, s) = run(
            "fn f(ptr p, int i, int max) { check(p != null); check(i < max); }",
            Scheme::Checks,
        );
        assert_eq!(inst.sites.len(), 2);
        assert!(s.contains("__check(0, p != null);"), "{s}");
        assert!(s.contains("__check(1, i < max);"), "{s}");
        assert_eq!(inst.sites.total_counters(), 4);
    }

    #[test]
    fn checks_instruments_stores_and_loads() {
        let (inst, s) = run("fn f(ptr p, int i) { p[i] = p[i + 1]; }", Scheme::Checks);
        // One bounds site for the load `p[i + 1]`, one for the store `p[i]`.
        assert_eq!(inst.sites.len(), 2);
        assert!(s.contains("len(p)"), "{s}");
        // Load check precedes store check precedes the store.
        let store = s.find("p[i] = ").unwrap();
        let first_check = s.find("__check(0").unwrap();
        assert!(first_check < store, "{s}");
    }

    #[test]
    fn checks_skips_impure_indices() {
        let (inst, _) = run("fn f(ptr p) { p[read()] = 1; }", Scheme::Checks);
        assert_eq!(inst.sites.len(), 0, "impure index must not be re-evaluated");
    }

    #[test]
    fn returns_observes_call_results() {
        let (inst, s) = run(
            "fn g() -> int { return -1; } fn f() { int x = g(); x = g(); }",
            Scheme::Returns,
        );
        assert_eq!(inst.sites.len(), 2);
        assert!(s.contains("__obs_sign(0, x);"), "{s}");
        assert!(s.contains("__obs_sign(1, x);"), "{s}");
        let site = inst.sites.site(crate::sites::SiteId(0));
        assert_eq!(
            site.predicate_name(2),
            format!("{} f(): g() > 0", site.span)
        );
    }

    #[test]
    fn returns_observes_nested_calls_via_temps() {
        let (inst, s) = run(
            "fn g() -> int { return 1; } fn f() -> int { return g() + g(); }",
            Scheme::Returns,
        );
        assert_eq!(inst.sites.len(), 2);
        assert!(s.contains("__obs_sign(0, __t0);"), "{s}");
        assert!(s.contains("__obs_sign(1, __t1);"), "{s}");
    }

    #[test]
    fn returns_observes_pointer_returning_calls() {
        let (inst, _) = run(
            "fn g() -> ptr { return null; } fn f() { ptr p = g(); free(p); }",
            Scheme::Returns,
        );
        assert_eq!(inst.sites.len(), 1);
    }

    #[test]
    fn returns_skips_builtins_and_procedures() {
        let (inst, _) = run(
            "fn p() { print(0); } fn f() { int x = read(); p(); ptr q = alloc(3); free(q); }",
            Scheme::Returns,
        );
        assert_eq!(inst.sites.len(), 0);
    }

    #[test]
    fn pairs_compares_against_in_scope_same_type() {
        let (inst, s) = run(
            "int g1 = 5;\n\
             fn f(int a) { int b = a + 1; int c = b * 2; }",
            Scheme::ScalarPairs,
        );
        // b's assignment compares with {g1, a}; c's with {g1, a, b}.
        assert_eq!(inst.sites.len(), 5);
        assert!(s.contains("__cmp(0, b, g1);"), "{s}");
        assert!(s.contains("__cmp(1, b, a);"), "{s}");
        assert!(s.contains("__cmp(2, c, g1);"), "{s}");
        assert!(s.contains("__cmp(3, c, a);"), "{s}");
        assert!(s.contains("__cmp(4, c, b);"), "{s}");
    }

    #[test]
    fn pairs_respects_type_partition() {
        let (inst, s) = run(
            "fn f(int a, ptr p) { int b = a; ptr q = p; }",
            Scheme::ScalarPairs,
        );
        // b compares with a only; q compares with p and null.
        assert_eq!(inst.sites.len(), 3);
        assert!(s.contains("__cmp(0, b, a);"), "{s}");
        assert!(s.contains("__cmp(1, q, p);"), "{s}");
        assert!(s.contains("__cmp(2, q, null);"), "{s}");
    }

    #[test]
    fn pairs_scope_is_position_sensitive() {
        let (inst, _) = run(
            "fn f() { int a = 1; if (a > 0) { int b = 2; } int c = 3; }",
            Scheme::ScalarPairs,
        );
        // a: no peers.  b: {a}.  c: {a} (b went out of scope).
        assert_eq!(inst.sites.len(), 2);
        let names: Vec<String> = inst.sites.iter().map(|s| s.text.clone()).collect();
        assert_eq!(names, vec!["b\u{1}a", "c\u{1}a"]);
    }

    #[test]
    fn pairs_skips_temporaries() {
        let (inst, _) = run(
            "fn g() -> int { return 1; } fn f(int a) { int x = g() + 1; }",
            Scheme::ScalarPairs,
        );
        // __t0 = g() is not observed; x = __t0 + 1 compares with {a} only.
        let texts: Vec<String> = inst.sites.iter().map(|s| s.text.clone()).collect();
        assert_eq!(texts, vec!["x\u{1}a"]);
    }

    #[test]
    fn pairs_counts_match_paper_structure() {
        // The paper's bc run has 10,050 triples = 30,150 counters; verify
        // the 3-counters-per-site invariant.
        let (inst, _) = run(
            "fn f(int a, int b, int c) { int d = a; d = b; d = c; }",
            Scheme::ScalarPairs,
        );
        assert_eq!(inst.sites.total_counters(), inst.sites.len() * 3);
    }

    #[test]
    fn branches_observes_conditions() {
        let (inst, s) = run(
            "fn f(int x) { if (x > 0) { print(x); } while (x < 9) { x = x + 1; } }",
            Scheme::Branches,
        );
        assert_eq!(inst.sites.len(), 2);
        assert!(
            s.contains("__obs_sign(0, (x > 0) != 0);") || s.contains("__obs_sign(0, x > 0 != 0);"),
            "{s}"
        );
    }

    #[test]
    fn all_schemes_produce_recognizable_sites() {
        for scheme in [
            Scheme::Checks,
            Scheme::Returns,
            Scheme::ScalarPairs,
            Scheme::Branches,
        ] {
            let (inst, _) = run(
                "fn g() -> int { return 2; } \
                 fn f(ptr p, int i) { check(i >= 0); int x = g(); if (x > 0) { p[i] = x; } }",
                scheme,
            );
            let mut found = 0;
            for f in &inst.program.functions {
                fn walk(b: &Block, found: &mut usize) {
                    for s in &b.stmts {
                        if site_stmt(s).is_some() {
                            *found += 1;
                        }
                        match s {
                            Stmt::If {
                                then_block,
                                else_block,
                                ..
                            } => {
                                walk(then_block, found);
                                if let Some(e) = else_block {
                                    walk(e, found);
                                }
                            }
                            Stmt::While { body, .. } => walk(body, found),
                            _ => {}
                        }
                    }
                }
                walk(&f.body, &mut found);
            }
            assert_eq!(found, inst.sites.len(), "scheme {scheme}");
        }
    }

    #[test]
    fn scheme_display_names() {
        assert_eq!(Scheme::Checks.to_string(), "checks");
        assert_eq!(Scheme::ScalarPairs.to_string(), "scalar-pairs");
    }
}
