//! Instrumentation sites and the counter layout of feedback reports.
//!
//! A *site* is one point in the program where an observation may be made:
//! a CCured-style safety check, a user assertion, a function-return sign
//! observation, or a scalar-pair comparison.  Each site owns a fixed group
//! of counters (2 for pass/fail checks, 3 for three-way comparisons), and a
//! run's report is the concatenation of all counter groups in site order —
//! the "vector of integers, with position *i* containing the number of
//! times we observed that the *i*th predicate was true" of §2.5.

use cbi_minic::Span;
use std::fmt;

/// Identifies one instrumentation site within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// What kind of observation a site makes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A user-written `check(e)` assertion (§3.1); counters `[violated, ok]`.
    Assert,
    /// A synthesized CCured-style memory-safety check (§3.1);
    /// counters `[violated, ok]`.
    Bounds,
    /// Sign of a function call's return value (§3.2.1);
    /// counters `[negative, zero, positive]`.
    ReturnSign,
    /// Three-way comparison of two same-typed variables after an
    /// assignment (§3.3.1); counters `[lt, eq, gt]`.
    ScalarPair,
    /// Branch direction observation (CBI follow-on work; extension),
    /// realized through a sign observation of the condition;
    /// counters `[unreachable, false, true]`.
    Branch,
}

impl SiteKind {
    /// Number of counters this kind of site owns.
    pub fn arity(self) -> usize {
        match self {
            SiteKind::Assert | SiteKind::Bounds => 2,
            SiteKind::ReturnSign | SiteKind::ScalarPair | SiteKind::Branch => 3,
        }
    }

    /// Human-readable label for counter `which` of a site of this kind,
    /// given the site's subject text.
    fn describe(self, text: &str, which: usize) -> String {
        match (self, which) {
            (SiteKind::Assert, 0) | (SiteKind::Bounds, 0) => format!("!({text})"),
            (SiteKind::Assert, 1) | (SiteKind::Bounds, 1) => text.to_string(),
            (SiteKind::ReturnSign, 0) => format!("{text} < 0"),
            (SiteKind::ReturnSign, 1) => format!("{text} == 0"),
            (SiteKind::ReturnSign, 2) => format!("{text} > 0"),
            (SiteKind::ScalarPair, i) => {
                let op = ["<", "==", ">"][i];
                let mut parts = text.splitn(2, '\u{1}');
                let a = parts.next().unwrap_or(text);
                let b = parts.next().unwrap_or("?");
                format!("{a} {op} {b}")
            }
            (SiteKind::Branch, 0) => format!("({text}) < 0 [unreachable]"),
            (SiteKind::Branch, 1) => format!("!({text})"),
            (SiteKind::Branch, 2) => format!("({text})"),
            _ => unreachable!("counter index out of range for {self:?}"),
        }
    }
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SiteKind::Assert => "assert",
            SiteKind::Bounds => "bounds",
            SiteKind::ReturnSign => "returns",
            SiteKind::ScalarPair => "scalar-pairs",
            SiteKind::Branch => "branches",
        };
        f.write_str(s)
    }
}

/// One instrumentation site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// The site's id (index into the site table).
    pub id: SiteId,
    /// Name of the function containing the site.
    pub function: String,
    /// Source position of the instrumented construct.
    pub span: Span,
    /// Observation kind.
    pub kind: SiteKind,
    /// Subject text; for scalar pairs the two variable names separated by
    /// `\u{1}`, otherwise a rendered expression like `file_exists()`.
    pub text: String,
    /// First counter index owned by this site in the report vector.
    pub counter_base: usize,
}

impl Site {
    /// The human-readable predicate name of counter `which`, e.g.
    /// `storage.c-analogue:176 more_arrays(): indx > a_count`.
    pub fn predicate_name(&self, which: usize) -> String {
        format!(
            "{} {}(): {}",
            self.span,
            self.function,
            self.kind.describe(&self.text, which)
        )
    }
}

/// All sites of an instrumented program, in id order, plus the counter
/// layout of its reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteTable {
    sites: Vec<Site>,
    total_counters: usize,
}

impl SiteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        SiteTable::default()
    }

    /// Registers a new site and returns its id.
    pub fn add(&mut self, function: &str, span: Span, kind: SiteKind, text: String) -> SiteId {
        let id = SiteId(self.sites.len() as u32);
        let site = Site {
            id,
            function: function.to_string(),
            span,
            kind,
            text,
            counter_base: self.total_counters,
        };
        self.total_counters += kind.arity();
        self.sites.push(site);
        id
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the table has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Total number of counters across all sites — the report vector length.
    pub fn total_counters(&self) -> usize {
        self.total_counters
    }

    /// The site with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0 as usize]
    }

    /// Iterates over all sites in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Site> {
        self.sites.iter()
    }

    /// Maps a counter index back to its site and within-site position.
    ///
    /// # Panics
    ///
    /// Panics if `counter` is out of range.
    pub fn counter_owner(&self, counter: usize) -> (&Site, usize) {
        assert!(counter < self.total_counters, "counter index out of range");
        // Sites have sorted counter_base; binary search for the owner.
        let idx = self
            .sites
            .partition_point(|s| s.counter_base <= counter)
            .checked_sub(1)
            .expect("counter below first base");
        let site = &self.sites[idx];
        (site, counter - site.counter_base)
    }

    /// The human-readable predicate name of a counter index.
    pub fn predicate_name(&self, counter: usize) -> String {
        let (site, which) = self.counter_owner(counter);
        site.predicate_name(which)
    }

    /// Sites grouped per function, for the static metrics of Table 1.
    pub fn sites_in_function(&self, function: &str) -> usize {
        self.sites.iter().filter(|s| s.function == function).count()
    }

    /// A deterministic 64-bit fingerprint of the counter layout: every
    /// site's kind, position, subject, and counter base, plus the total
    /// counter count.  Two instrumented binaries share a hash exactly
    /// when their reports are interchangeable, so the wire codec in
    /// `cbi-reports` can reject mismatched report streams at the frame
    /// boundary (FNV-1a; stable across processes and platforms).
    pub fn layout_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        let mut h = OFFSET;
        h = eat(h, &(self.total_counters as u64).to_le_bytes());
        for site in &self.sites {
            h = eat(h, &[site.kind.arity() as u8]);
            h = eat(h, site.kind.to_string().as_bytes());
            h = eat(h, &(site.counter_base as u64).to_le_bytes());
            h = eat(h, site.function.as_bytes());
            h = eat(h, &site.span.line.to_le_bytes());
            h = eat(h, &site.span.col.to_le_bytes());
            h = eat(h, site.text.as_bytes());
            h = eat(h, &[0xff]); // site separator
        }
        h
    }
}

/// Recognizes an instrumentation-site statement: a bare call to one of the
/// observation builtins (`__check`, `__cmp`, `__obs_sign`) whose first
/// argument is the literal site id.
///
/// Schemes insert sites in exactly this shape, and the sampling
/// transformation, the strip pass, and the weightless analysis all detect
/// them through this function.
pub fn site_stmt(stmt: &cbi_minic::Stmt) -> Option<SiteId> {
    use cbi_minic::{Builtin, Expr, Stmt};
    let Stmt::Expr { expr, .. } = stmt else {
        return None;
    };
    let Expr::Call { name, args, .. } = expr else {
        return None;
    };
    match Builtin::from_name(name) {
        Some(Builtin::ObsCheck | Builtin::ObsCmp | Builtin::ObsSign) => match args.first() {
            Some(Expr::Int { value, .. }) if *value >= 0 => Some(SiteId(*value as u32)),
            _ => None,
        },
        _ => None,
    }
}

impl<'a> IntoIterator for &'a SiteTable {
    type Item = &'a Site;
    type IntoIter = std::slice::Iter<'a, Site>;

    fn into_iter(self) -> Self::IntoIter {
        self.sites.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(line: u32) -> Span {
        Span::new(line, 1)
    }

    #[test]
    fn counter_layout_is_contiguous() {
        let mut t = SiteTable::new();
        let a = t.add("f", span(1), SiteKind::Assert, "p != null".into());
        let b = t.add("f", span(2), SiteKind::ScalarPair, "a\u{1}b".into());
        let c = t.add("g", span(3), SiteKind::ReturnSign, "h()".into());
        assert_eq!(t.site(a).counter_base, 0);
        assert_eq!(t.site(b).counter_base, 2);
        assert_eq!(t.site(c).counter_base, 5);
        assert_eq!(t.total_counters(), 8);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn counter_owner_round_trips() {
        let mut t = SiteTable::new();
        t.add("f", span(1), SiteKind::Assert, "x".into());
        t.add("f", span(2), SiteKind::ScalarPair, "a\u{1}b".into());
        let (s, w) = t.counter_owner(0);
        assert_eq!((s.id, w), (SiteId(0), 0));
        let (s, w) = t.counter_owner(1);
        assert_eq!((s.id, w), (SiteId(0), 1));
        let (s, w) = t.counter_owner(2);
        assert_eq!((s.id, w), (SiteId(1), 0));
        let (s, w) = t.counter_owner(4);
        assert_eq!((s.id, w), (SiteId(1), 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn counter_owner_rejects_out_of_range() {
        let mut t = SiteTable::new();
        t.add("f", span(1), SiteKind::Assert, "x".into());
        let _ = t.counter_owner(2);
    }

    #[test]
    fn predicate_names_match_paper_style() {
        let mut t = SiteTable::new();
        t.add(
            "more_arrays",
            span(176),
            SiteKind::ScalarPair,
            "indx\u{1}a_count".into(),
        );
        t.add(
            "traverse",
            span(320),
            SiteKind::ReturnSign,
            "file_exists()".into(),
        );
        assert_eq!(t.predicate_name(2), "176:1 more_arrays(): indx > a_count");
        assert_eq!(t.predicate_name(5), "320:1 traverse(): file_exists() > 0");
        assert_eq!(t.predicate_name(3), "320:1 traverse(): file_exists() < 0");
    }

    #[test]
    fn assert_counters_describe_violation_and_pass() {
        let mut t = SiteTable::new();
        t.add("f", span(9), SiteKind::Assert, "i < max".into());
        assert!(t.predicate_name(0).contains("!(i < max)"));
        assert!(t.predicate_name(1).contains("i < max"));
    }

    #[test]
    fn branch_counters() {
        let mut t = SiteTable::new();
        t.add("f", span(4), SiteKind::Branch, "x > 0".into());
        assert!(t.predicate_name(1).contains("!(x > 0)"));
        assert!(t.predicate_name(2).ends_with("(x > 0)"));
    }

    #[test]
    fn sites_in_function_counts() {
        let mut t = SiteTable::new();
        t.add("f", span(1), SiteKind::Assert, "a".into());
        t.add("g", span(2), SiteKind::Assert, "b".into());
        t.add("f", span(3), SiteKind::Assert, "c".into());
        assert_eq!(t.sites_in_function("f"), 2);
        assert_eq!(t.sites_in_function("g"), 1);
        assert_eq!(t.sites_in_function("h"), 0);
    }

    #[test]
    fn arities() {
        assert_eq!(SiteKind::Assert.arity(), 2);
        assert_eq!(SiteKind::Bounds.arity(), 2);
        assert_eq!(SiteKind::Branch.arity(), 3);
        assert_eq!(SiteKind::ReturnSign.arity(), 3);
        assert_eq!(SiteKind::ScalarPair.arity(), 3);
    }

    #[test]
    fn layout_hash_is_stable_and_discriminating() {
        let mut a = SiteTable::new();
        a.add("f", span(1), SiteKind::Assert, "x".into());
        a.add("g", span(2), SiteKind::ReturnSign, "h()".into());

        let mut b = SiteTable::new();
        b.add("f", span(1), SiteKind::Assert, "x".into());
        b.add("g", span(2), SiteKind::ReturnSign, "h()".into());
        assert_eq!(a.layout_hash(), b.layout_hash(), "same layout, same hash");

        // Any perturbation — site text, kind, position — changes the hash.
        let mut c = SiteTable::new();
        c.add("f", span(1), SiteKind::Assert, "y".into());
        c.add("g", span(2), SiteKind::ReturnSign, "h()".into());
        assert_ne!(a.layout_hash(), c.layout_hash());

        let mut d = SiteTable::new();
        d.add("f", span(1), SiteKind::Bounds, "x".into());
        d.add("g", span(2), SiteKind::ReturnSign, "h()".into());
        assert_ne!(a.layout_hash(), d.layout_hash());

        assert_ne!(SiteTable::new().layout_hash(), a.layout_hash());
    }

    #[test]
    fn iteration_in_id_order() {
        let mut t = SiteTable::new();
        t.add("f", span(1), SiteKind::Assert, "a".into());
        t.add("f", span(2), SiteKind::Assert, "b".into());
        let ids: Vec<u32> = t.iter().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        let ids2: Vec<u32> = (&t).into_iter().map(|s| s.id.0).collect();
        assert_eq!(ids2, ids);
    }
}
