//! Instrumentation and the fair-sampling transformation.
//!
//! This crate implements the compiler half of *Bug Isolation via Remote
//! Program Sampling*: it decides **what** to observe (instrumentation
//! [`schemes`]) and **how** to observe it cheaply and fairly (the sampling
//! [`transform`]).
//!
//! The pipeline on a resolved MiniC program:
//!
//! ```text
//!   program ──instrument(scheme)──► Instrumented { program, sites }
//!               │
//!               ├── strip_sites(..)          → baseline (no instrumentation)
//!               ├── (as is)                  → unconditional instrumentation
//!               └── apply_sampling(..)       → sampled instrumentation
//! ```
//!
//! All three versions of the program execute in `cbi-vm`; their relative
//! op counts reproduce the overhead tables of §3.1.
//!
//! # Example
//!
//! ```
//! use cbi_instrument::{instrument, Scheme, apply_sampling, TransformOptions};
//!
//! let program = cbi_minic::parse(
//!     "fn f(ptr p, int i) { check(p != null); check(i < 10); }",
//! )?;
//! let inst = instrument(&program, Scheme::Checks)?;
//! assert_eq!(inst.sites.len(), 2);
//! let (sampled, stats) = apply_sampling(&inst.program, &TransformOptions::default())?;
//! assert_eq!(stats.functions_with_sites(), 1);
//! assert!(sampled.global("__gcd").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod normalize;
pub mod schemes;
pub mod selective;
pub mod sites;
pub mod strip;
pub mod transform;
pub mod weightless;

pub use metrics::{code_growth, StaticMetrics};
pub use normalize::flatten_calls;
pub use schemes::{instrument, Instrumented, Scheme};
pub use selective::{single_function_variants, transform_variants, TransformedVariant, Variant};
pub use sites::{site_stmt, Site, SiteId, SiteKind, SiteTable};
pub use strip::{strip_sites, strip_sites_except};
pub use transform::{
    apply_sampling, count_sites_block, segment_weight, CountdownStorage, FunctionStats,
    TransformOptions, TransformStats,
};
pub use weightless::weightless_functions;

use std::error::Error;
use std::fmt;

/// Resolves a program that may contain instrumentation artifacts:
/// `__t*` temporaries, `__cd`/`__gcd` countdowns, observation builtins,
/// and — crucially — locals redeclared across fast/slow dual paths.
///
/// Delegates to [`cbi_minic::resolve_relaxed`].
///
/// # Errors
///
/// Returns the underlying resolver error.
pub fn resolve_instrumented(
    program: &cbi_minic::Program,
) -> Result<cbi_minic::ProgramInfo, cbi_minic::MiniCError> {
    cbi_minic::resolve_relaxed(program)
}

/// An error from instrumentation or transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrumentError {
    message: String,
}

impl InstrumentError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        InstrumentError {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for InstrumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instrumentation error: {}", self.message)
    }
}

impl Error for InstrumentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_displays_message() {
        let e = InstrumentError::new("boom");
        assert_eq!(e.to_string(), "instrumentation error: boom");
        assert_eq!(e.message(), "boom");
    }

    #[test]
    fn full_pipeline_checks_scheme() {
        let program = cbi_minic::parse(
            "fn helper(int x) -> int { return x + 1; }\n\
             fn main() -> int {\n\
                 ptr p = alloc(8);\n\
                 int i = 0;\n\
                 while (i < 8) {\n\
                     check(i < len(p));\n\
                     p[i] = helper(i);\n\
                     i = i + 1;\n\
                 }\n\
                 free(p);\n\
                 return 0;\n\
             }",
        )
        .unwrap();
        let inst = instrument(&program, Scheme::Checks).unwrap();
        assert!(inst.sites.len() >= 2, "assert + store bounds");
        let baseline = strip_sites(&inst.program);
        assert!(
            cbi_minic::ast::program_size(&baseline) < cbi_minic::ast::program_size(&inst.program)
        );
        let (sampled, stats) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
        assert!(stats.functions_with_sites() >= 1);
        resolve_instrumented(&sampled).unwrap();
    }
}
