//! Call flattening: hoist nested user-function calls into temporaries.
//!
//! The sampling transformation treats a call to a non-weightless function
//! as an acyclic-region boundary (§2.3: "a new threshold check must appear
//! immediately after each function call"), and the `returns` scheme must
//! observe every call's result.  Both are much simpler when every user call
//! is the root of its own statement, so this pass rewrites
//!
//! ```text
//! x = f(g(a) + 1) * 2;
//! ```
//!
//! into
//!
//! ```text
//! int __t0 = g(a);
//! int __t1 = f(__t0 + 1);
//! x = __t1 * 2;
//! ```
//!
//! Builtin calls stay inline — they are runtime primitives, not user code.
//!
//! Two constructs cannot be flattened without changing semantics and are
//! rejected: user calls in `while` conditions (they must re-evaluate every
//! iteration) and user calls in the right-hand side of short-circuit
//! `&&`/`||` (they must evaluate conditionally).  Workload programs use the
//! equivalent explicit forms (`while (1) { x = f(); if (!cond(x)) { break; } … }`).

use crate::InstrumentError;
use cbi_minic::ast::*;
use cbi_minic::resolve::ProgramInfo;
use cbi_minic::Builtin;

/// Flattens nested user calls in every function of `program`.
///
/// # Errors
///
/// Returns [`InstrumentError`] if a user call appears in a `while`
/// condition or under the right-hand side of a short-circuit operator.
pub fn flatten_calls(program: &Program, info: &ProgramInfo) -> Result<Program, InstrumentError> {
    let mut out = program.clone();
    for f in &mut out.functions {
        let mut fl = Flattener {
            info,
            next_temp: 0,
            function: f.name.clone(),
        };
        f.body = fl.block(&f.body)?;
    }
    Ok(out)
}

/// True if `name` is a user function (defined in the program), as opposed
/// to a builtin.
fn is_user_call(name: &str, info: &ProgramInfo) -> bool {
    Builtin::from_name(name).is_none() && info.signatures.contains_key(name)
}

/// Whether an expression contains a user-function call anywhere.
pub fn contains_user_call(e: &Expr, info: &ProgramInfo) -> bool {
    e.any(&mut |x| matches!(x, Expr::Call { name, .. } if is_user_call(name, info)))
}

struct Flattener<'a> {
    info: &'a ProgramInfo,
    next_temp: u32,
    function: String,
}

impl Flattener<'_> {
    fn fresh(&mut self) -> String {
        let name = format!("__t{}", self.next_temp);
        self.next_temp += 1;
        name
    }

    fn block(&mut self, b: &Block) -> Result<Block, InstrumentError> {
        let mut stmts = Vec::with_capacity(b.stmts.len());
        for s in &b.stmts {
            self.stmt(s, &mut stmts)?;
        }
        Ok(Block::new(stmts))
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Stmt>) -> Result<(), InstrumentError> {
        match s {
            Stmt::Decl {
                ty,
                name,
                init,
                span,
            } => {
                let init = match init {
                    // A call as the entire initializer is already a root.
                    Some(Expr::Call {
                        name: callee,
                        args,
                        span: cspan,
                    }) if is_user_call(callee, self.info) => {
                        let args = self.hoist_args(args, out)?;
                        Some(Expr::Call {
                            name: callee.clone(),
                            args,
                            span: *cspan,
                        })
                    }
                    Some(e) => Some(self.expr(e, out)?),
                    None => None,
                };
                out.push(Stmt::Decl {
                    ty: *ty,
                    name: name.clone(),
                    init,
                    span: *span,
                });
            }
            Stmt::Assign { name, value, span } => {
                let value = match value {
                    Expr::Call {
                        name: callee,
                        args,
                        span: cspan,
                    } if is_user_call(callee, self.info) => {
                        let args = self.hoist_args(args, out)?;
                        Expr::Call {
                            name: callee.clone(),
                            args,
                            span: *cspan,
                        }
                    }
                    e => self.expr(e, out)?,
                };
                out.push(Stmt::Assign {
                    name: name.clone(),
                    value,
                    span: *span,
                });
            }
            Stmt::Store {
                target,
                index,
                value,
                span,
            } => {
                let index = self.expr(index, out)?;
                let value = self.expr(value, out)?;
                out.push(Stmt::Store {
                    target: target.clone(),
                    index,
                    value,
                    span: *span,
                });
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                span,
            } => {
                let cond = self.expr(cond, out)?;
                let then_block = self.block(then_block)?;
                let else_block = match else_block {
                    Some(e) => Some(self.block(e)?),
                    None => None,
                };
                out.push(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    span: *span,
                });
            }
            Stmt::While { cond, body, span } => {
                if contains_user_call(cond, self.info) {
                    return Err(InstrumentError::new(format!(
                        "function `{}` at {span}: user calls in `while` conditions cannot \
                         be flattened; restructure with an explicit loop body",
                        self.function
                    )));
                }
                let body = self.block(body)?;
                out.push(Stmt::While {
                    cond: cond.clone(),
                    body,
                    span: *span,
                });
            }
            Stmt::Return { value, span } => {
                let value = match value {
                    Some(e) => Some(self.expr(e, out)?),
                    None => None,
                };
                out.push(Stmt::Return { value, span: *span });
            }
            Stmt::Break { .. } | Stmt::Continue { .. } => out.push(s.clone()),
            Stmt::Check { cond, span } => {
                let cond = self.expr(cond, out)?;
                out.push(Stmt::Check { cond, span: *span });
            }
            Stmt::Expr { expr, span } => {
                // A bare call statement keeps its call as root.
                match expr {
                    Expr::Call {
                        name: callee,
                        args,
                        span: cspan,
                    } => {
                        let args = self.hoist_args(args, out)?;
                        out.push(Stmt::Expr {
                            expr: Expr::Call {
                                name: callee.clone(),
                                args,
                                span: *cspan,
                            },
                            span: *span,
                        });
                    }
                    e => {
                        let e = self.expr(e, out)?;
                        out.push(Stmt::Expr {
                            expr: e,
                            span: *span,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn hoist_args(
        &mut self,
        args: &[Expr],
        out: &mut Vec<Stmt>,
    ) -> Result<Vec<Expr>, InstrumentError> {
        args.iter().map(|a| self.expr(a, out)).collect()
    }

    /// Rewrites an expression in value position: every user call inside is
    /// hoisted into a temp declared on `out`.
    fn expr(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Result<Expr, InstrumentError> {
        Ok(match e {
            Expr::Int { .. } | Expr::Null { .. } | Expr::Var { .. } => e.clone(),
            Expr::Load { ptr, index, span } => Expr::Load {
                ptr: Box::new(self.expr(ptr, out)?),
                index: Box::new(self.expr(index, out)?),
                span: *span,
            },
            Expr::Call { name, args, span } => {
                let args = self.hoist_args(args, out)?;
                let call = Expr::Call {
                    name: name.clone(),
                    args,
                    span: *span,
                };
                if is_user_call(name, self.info) {
                    let sig = &self.info.signatures[name];
                    let ty = sig.ret.ok_or_else(|| {
                        InstrumentError::new(format!(
                            "function `{}` at {span}: procedure `{name}` used in value position",
                            self.function
                        ))
                    })?;
                    let temp = self.fresh();
                    out.push(Stmt::Decl {
                        ty,
                        name: temp.clone(),
                        init: Some(call),
                        span: *span,
                    });
                    Expr::Var {
                        name: temp,
                        span: *span,
                    }
                } else {
                    call
                }
            }
            Expr::Unary { op, expr, span } => Expr::Unary {
                op: *op,
                expr: Box::new(self.expr(expr, out)?),
                span: *span,
            },
            Expr::Binary { op, lhs, rhs, span } => {
                if op.is_logical() && contains_user_call(rhs, self.info) {
                    return Err(InstrumentError::new(format!(
                        "function `{}` at {span}: user call under short-circuit `{op}` \
                         cannot be flattened without changing semantics",
                        self.function
                    )));
                }
                Expr::Binary {
                    op: *op,
                    lhs: Box::new(self.expr(lhs, out)?),
                    rhs: Box::new(self.expr(rhs, out)?),
                    span: *span,
                }
            }
        })
    }
}

/// True when, after flattening, the statement is a user-call root:
/// `x = f(…);`, `int x = f(…);`, or `f(…);`.
pub fn user_call_root<'a>(s: &'a Stmt, info: &ProgramInfo) -> Option<&'a str> {
    let expr = match s {
        Stmt::Decl { init: Some(e), .. } => e,
        Stmt::Assign { value, .. } => value,
        Stmt::Expr { expr, .. } => expr,
        _ => return None,
    };
    match expr {
        Expr::Call { name, .. } if is_user_call(name, info) => Some(name),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::{parse, pretty, resolve};

    fn flat(src: &str) -> (Program, String) {
        let p = parse(src).unwrap();
        let info = resolve(&p).unwrap();
        let q = flatten_calls(&p, &info).unwrap();
        let s = pretty(&q);
        (q, s)
    }

    #[test]
    fn leaves_root_calls_alone() {
        let (_, s) = flat(
            "fn f() -> int { return 1; } fn main() -> int { int x = f(); x = f(); f(); return x; }",
        );
        assert!(!s.contains("__t"), "no temps expected:\n{s}");
    }

    #[test]
    fn hoists_call_in_arithmetic() {
        let (q, s) =
            flat("fn f() -> int { return 1; } fn main() -> int { int x = f() + 2; return x; }");
        assert!(s.contains("int __t0 = f();"), "{s}");
        assert!(s.contains("int x = __t0 + 2;"), "{s}");
        // Result still resolves (instrumented namespace allowed).
        assert!(crate::resolve_instrumented(&q).is_ok());
    }

    #[test]
    fn hoists_nested_calls_in_order() {
        let (_, s) = flat(
            "fn g(int a) -> int { return a; } fn f(int a) -> int { return a; } \
             fn main() -> int { int x = f(g(1) + 1) * 2; return x; }",
        );
        let t0 = s.find("int __t0 = g(1);").expect(&s);
        let t1 = s.find("int __t1 = f(__t0 + 1);").expect(&s);
        assert!(t0 < t1);
        assert!(s.contains("int x = __t1 * 2;"), "{s}");
    }

    #[test]
    fn hoists_call_in_return_and_condition() {
        let (_, s) = flat(
            "fn f() -> int { return 1; } \
             fn main() -> int { if (f() > 0) { return f() + 1; } return 0; }",
        );
        assert!(s.contains("int __t0 = f();"), "{s}");
        assert!(s.contains("if (__t0 > 0)"), "{s}");
        assert!(s.contains("int __t1 = f();"), "{s}");
        assert!(s.contains("return __t1 + 1;"), "{s}");
    }

    #[test]
    fn hoists_calls_in_store_and_index() {
        let (_, s) = flat(
            "fn f() -> int { return 0; } \
             fn main() { ptr p = alloc(4); p[f()] = f(); }",
        );
        assert!(s.contains("int __t0 = f();"), "{s}");
        assert!(s.contains("int __t1 = f();"), "{s}");
        assert!(s.contains("p[__t0] = __t1;"), "{s}");
    }

    #[test]
    fn builtins_stay_inline() {
        let (_, s) = flat("fn main() -> int { int x = len(alloc(3)) + read(); return x; }");
        assert!(!s.contains("__t"), "{s}");
    }

    #[test]
    fn rejects_call_in_while_condition() {
        let p = parse("fn f() -> int { return 0; } fn main() { while (f() < 3) { } }").unwrap();
        let info = resolve(&p).unwrap();
        let err = flatten_calls(&p, &info).unwrap_err();
        assert!(err.to_string().contains("while"));
    }

    #[test]
    fn rejects_call_under_short_circuit() {
        let p = parse("fn f() -> int { return 0; } fn main() -> int { return 1 && f(); }").unwrap();
        let info = resolve(&p).unwrap();
        let err = flatten_calls(&p, &info).unwrap_err();
        assert!(err.to_string().contains("short-circuit"));
    }

    #[test]
    fn allows_call_on_short_circuit_lhs() {
        let (_, s) = flat("fn f() -> int { return 0; } fn main() -> int { return f() && 1; }");
        assert!(s.contains("__t0 && 1"), "{s}");
    }

    #[test]
    fn rejects_procedure_in_value_position() {
        let p = parse("fn f() {} fn main() -> int { return f() + 1; }").unwrap();
        // Resolver already allows `f()` only in statement position; build the
        // program manually to hit the normalize-time diagnostic.
        let info = resolve(&parse("fn f() {} fn main() -> int { return 1; }").unwrap()).unwrap();
        let err = flatten_calls(&p, &info);
        assert!(err.is_err());
    }

    #[test]
    fn user_call_root_detection() {
        let p = parse(
            "fn f() -> int { return 0; } \
             fn main() { int a = f(); a = f(); f(); print(a); }",
        )
        .unwrap();
        let info = resolve(&p).unwrap();
        let main = p.function("main").unwrap();
        assert_eq!(user_call_root(&main.body.stmts[0], &info), Some("f"));
        assert_eq!(user_call_root(&main.body.stmts[1], &info), Some("f"));
        assert_eq!(user_call_root(&main.body.stmts[2], &info), Some("f"));
        assert_eq!(user_call_root(&main.body.stmts[3], &info), None);
    }

    #[test]
    fn flattening_is_idempotent() {
        let src = "fn g(int a) -> int { return a; } \
                   fn main() -> int { int x = g(g(2)) + g(3); return x; }";
        let p = parse(src).unwrap();
        let info = resolve(&p).unwrap();
        let once = flatten_calls(&p, &info).unwrap();
        let twice = flatten_calls(&once, &info).unwrap();
        assert_eq!(pretty(&once), pretty(&twice));
    }
}
