//! Weightless-function analysis (§2.3).
//!
//! A function is *weightless* when it contains no instrumentation sites and
//! only calls other weightless functions.  Calls to weightless functions
//! are invisible to the sampling transformation: acyclic regions extend
//! across them, no threshold check is needed after they return, and their
//! bodies need no cloning or countdown plumbing at all.
//!
//! Computed with the standard iterative fixpoint: start from "everything
//! weightless", knock out functions that contain sites, then propagate
//! non-weightlessness backwards along call edges until stable.

use crate::sites::site_stmt;
use cbi_minic::ast::*;
use cbi_minic::Builtin;
use std::collections::{HashMap, HashSet};

/// Computes the set of weightless functions of an instrumented program.
///
/// `interprocedural` mirrors whole-program analysis (CCured-style, §3.1.1).
/// When `false` — separate compilation, as for ccrypt in §3.2.5 — the
/// result is empty: every call must conservatively be assumed to reach
/// instrumented code.
pub fn weightless_functions(program: &Program, interprocedural: bool) -> HashSet<String> {
    if !interprocedural {
        return HashSet::new();
    }

    // Call graph and local site presence.
    let mut callees: HashMap<&str, Vec<String>> = HashMap::new();
    let mut heavy: Vec<&str> = Vec::new();
    let defined: HashSet<&str> = program.functions.iter().map(|f| f.name.as_str()).collect();

    for f in &program.functions {
        let mut calls = Vec::new();
        let mut has_site = false;
        collect_block(&f.body, &mut calls, &mut has_site);
        if has_site {
            heavy.push(&f.name);
        }
        // Builtin calls are weightless except the countdown refill; calls to
        // undefined names cannot occur in resolved programs but are treated
        // as heavy for safety.
        let mut heavy_builtin = false;
        calls.retain(|c| match Builtin::from_name(c) {
            Some(b) => {
                if !b.is_weightless() {
                    heavy_builtin = true;
                }
                false
            }
            None => {
                if !defined.contains(c.as_str()) {
                    heavy_builtin = true;
                    false
                } else {
                    true
                }
            }
        });
        if heavy_builtin && !heavy.contains(&f.name.as_str()) {
            heavy.push(&f.name);
        }
        callees.insert(&f.name, calls);
    }

    let mut weightless: HashSet<String> =
        program.functions.iter().map(|f| f.name.clone()).collect();
    for h in &heavy {
        weightless.remove(*h);
    }

    // Propagate: a function calling a non-weightless function is itself
    // non-weightless.
    let mut changed = true;
    while changed {
        changed = false;
        for f in &program.functions {
            if !weightless.contains(&f.name) {
                continue;
            }
            let calls = &callees[f.name.as_str()];
            if calls.iter().any(|c| !weightless.contains(c)) {
                weightless.remove(&f.name);
                changed = true;
            }
        }
    }
    weightless
}

fn collect_block(b: &Block, calls: &mut Vec<String>, has_site: &mut bool) {
    for s in &b.stmts {
        collect_stmt(s, calls, has_site);
    }
}

fn collect_stmt(s: &Stmt, calls: &mut Vec<String>, has_site: &mut bool) {
    if site_stmt(s).is_some() {
        *has_site = true;
        // The observation arguments contain no user calls (schemes only
        // reference variables and literals), so no need to walk them.
        return;
    }
    match s {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                e.called_names(calls);
            }
        }
        Stmt::Assign { value, .. } => value.called_names(calls),
        Stmt::Store { index, value, .. } => {
            index.called_names(calls);
            value.called_names(calls);
        }
        Stmt::If {
            cond,
            then_block,
            else_block,
            ..
        } => {
            cond.called_names(calls);
            collect_block(then_block, calls, has_site);
            if let Some(e) = else_block {
                collect_block(e, calls, has_site);
            }
        }
        Stmt::While { cond, body, .. } => {
            cond.called_names(calls);
            collect_block(body, calls, has_site);
        }
        Stmt::Return { value, .. } => {
            if let Some(v) = value {
                v.called_names(calls);
            }
        }
        Stmt::Break { .. } | Stmt::Continue { .. } => {}
        Stmt::Check { cond, .. } => cond.called_names(calls),
        Stmt::Expr { expr, .. } => expr.called_names(calls),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::parse;

    fn wl(src: &str) -> HashSet<String> {
        let p = parse(src).unwrap();
        weightless_functions(&p, true)
    }

    #[test]
    fn all_weightless_without_sites() {
        let set = wl("fn a() { b(); } fn b() { print(1); }");
        assert!(set.contains("a") && set.contains("b"));
    }

    #[test]
    fn site_makes_function_heavy() {
        let set = wl("fn a(int x) { __check(0, x > 0); }");
        assert!(!set.contains("a"));
    }

    #[test]
    fn heaviness_propagates_up_call_chain() {
        let set = wl("fn leaf(int x) { __cmp(0, x, 2); } \
             fn mid() { leaf(0); } \
             fn top() { mid(); } \
             fn aside() { print(1); }");
        assert!(!set.contains("leaf"));
        assert!(!set.contains("mid"));
        assert!(!set.contains("top"));
        assert!(set.contains("aside"));
    }

    #[test]
    fn recursion_handled() {
        let set = wl(
            "fn even(int n) -> int { if (n == 0) { return 1; } return odd(n - 1); } \
                      fn odd(int n) -> int { if (n == 0) { return 0; } return even(n - 1); }",
        );
        assert!(set.contains("even") && set.contains("odd"));

        let set2 = wl(
            "fn even(int n) -> int { __obs_sign(0, n); if (n == 0) { return 1; } return odd(n - 1); } \
             fn odd(int n) -> int { if (n == 0) { return 0; } return even(n - 1); }",
        );
        assert!(!set2.contains("even") && !set2.contains("odd"));
    }

    #[test]
    fn separate_compilation_mode_is_empty() {
        let p = parse("fn a() { print(1); }").unwrap();
        assert!(weightless_functions(&p, false).is_empty());
    }

    #[test]
    fn sites_in_nested_control_flow_detected() {
        let set = wl("fn a(int n) { int i = 0; while (i < n) { if (i > 2) { __check(0, i < 100); } i = i + 1; } }");
        assert!(!set.contains("a"));
    }

    #[test]
    fn builtin_calls_stay_weightless() {
        let set = wl("fn a() -> int { ptr p = alloc(3); free(p); return read() + has_input(); }");
        assert!(set.contains("a"));
    }

    #[test]
    fn countdown_refill_is_heavy() {
        let set = wl("fn a() -> int { return __next_cd(); }");
        assert!(!set.contains("a"));
    }
}
