//! Stripping instrumentation: produce the baseline program.
//!
//! The performance baseline in Table 2 is "code translated by CCured and
//! from which all dynamic memory safety checks are removed".  This pass
//! removes every site statement (and inert `check(...)` markers), yielding
//! the instrumentation-free program the overhead ratios compare against.

use crate::sites::site_stmt;
use cbi_minic::ast::*;

/// Removes all instrumentation-site statements and `check` markers.
pub fn strip_sites(program: &Program) -> Program {
    let mut out = program.clone();
    for f in &mut out.functions {
        f.body = strip_block(&f.body);
    }
    out
}

/// Removes sites only in functions for which `keep` returns `false`;
/// functions where `keep` is `true` retain their instrumentation.  Used by
/// the statically-selective experiments of §3.1.2.
pub fn strip_sites_except(program: &Program, keep: impl Fn(&str) -> bool) -> Program {
    let mut out = program.clone();
    for f in &mut out.functions {
        if !keep(&f.name) {
            f.body = strip_block(&f.body);
        }
    }
    out
}

fn strip_block(b: &Block) -> Block {
    let mut stmts = Vec::with_capacity(b.stmts.len());
    for s in &b.stmts {
        if site_stmt(s).is_some() || matches!(s, Stmt::Check { .. }) {
            continue;
        }
        stmts.push(match s {
            Stmt::If {
                cond,
                then_block,
                else_block,
                span,
            } => Stmt::If {
                cond: cond.clone(),
                then_block: strip_block(then_block),
                else_block: else_block.as_ref().map(strip_block),
                span: *span,
            },
            Stmt::While { cond, body, span } => Stmt::While {
                cond: cond.clone(),
                body: strip_block(body),
                span: *span,
            },
            other => other.clone(),
        });
    }
    Block::new(stmts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::{parse, pretty};

    #[test]
    fn removes_all_site_statements() {
        let p = parse(
            "fn f(int x) { __check(0, x > 0); if (x > 1) { __cmp(1, x, 5); } \
             while (x < 9) { __obs_sign(2, x); x = x + 1; } print(x); }",
        )
        .unwrap();
        let stripped = strip_sites(&p);
        let s = pretty(&stripped);
        assert!(!s.contains("__check") && !s.contains("__cmp") && !s.contains("__obs_sign"));
        assert!(s.contains("print(x);"));
        assert!(s.contains("while"));
    }

    #[test]
    fn removes_check_markers() {
        let p = parse("fn f(ptr p) { check(p != null); free(p); }").unwrap();
        let s = pretty(&strip_sites(&p));
        assert!(!s.contains("check("));
        assert!(s.contains("free(p);"));
    }

    #[test]
    fn selective_strip_keeps_chosen_function() {
        let p =
            parse("fn a(int x) { __check(0, x > 0); } fn b(int x) { __check(1, x > 0); }").unwrap();
        let out = strip_sites_except(&p, |name| name == "a");
        let s = pretty(&out);
        let a_pos = s.find("fn a").unwrap();
        let b_pos = s.find("fn b").unwrap();
        let a_body = &s[a_pos..b_pos];
        let b_body = &s[b_pos..];
        assert!(a_body.contains("__check"));
        assert!(!b_body.contains("__check"));
    }

    #[test]
    fn strip_is_idempotent() {
        let p = parse("fn f(int x) { __check(0, x > 0); print(1); }").unwrap();
        let once = strip_sites(&p);
        let twice = strip_sites(&once);
        assert_eq!(pretty(&once), pretty(&twice));
    }
}
