//! Statically selective sampling (§3.1.2).
//!
//! Instead of one executable carrying every site, build many variants that
//! each keep the instrumentation of a single function ("partitioning
//! instrumentation … by function").  Each variant is smaller and faster;
//! different users receive different variants.

use crate::schemes::Instrumented;
use crate::strip::strip_sites_except;
use crate::transform::{apply_sampling, count_sites_block, TransformOptions, TransformStats};
use crate::InstrumentError;
use cbi_minic::ast::Program;

/// One single-function instrumentation variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// The function whose sites this variant keeps.
    pub function: String,
    /// The variant program, still unconditional (pre-sampling).
    pub program: Program,
}

/// Builds one variant per site-containing function of an instrumented
/// program.
pub fn single_function_variants(inst: &Instrumented) -> Vec<Variant> {
    inst.program
        .functions
        .iter()
        .filter(|f| count_sites_block(&f.body) > 0)
        .map(|f| Variant {
            function: f.name.clone(),
            program: strip_sites_except(&inst.program, |name| name == f.name),
        })
        .collect()
}

/// A variant together with its sampling transformation.
#[derive(Debug, Clone)]
pub struct TransformedVariant {
    /// The function whose sites this variant keeps.
    pub function: String,
    /// The sampled program.
    pub program: Program,
    /// Transformation statistics.
    pub stats: TransformStats,
}

/// Applies the sampling transformation to every single-function variant.
///
/// # Errors
///
/// Propagates [`InstrumentError`] from the transformation.
pub fn transform_variants(
    inst: &Instrumented,
    options: &TransformOptions,
) -> Result<Vec<TransformedVariant>, InstrumentError> {
    single_function_variants(inst)
        .into_iter()
        .map(|v| {
            let (program, stats) = apply_sampling(&v.program, options)?;
            Ok(TransformedVariant {
                function: v.function,
                program,
                stats,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::code_growth;
    use crate::schemes::{instrument, Scheme};
    use crate::strip::strip_sites;
    use cbi_minic::parse;

    const SRC: &str = "fn a(ptr p) { check(p != null); }\n\
         fn b(int i) { check(i > 0); check(i < 10); }\n\
         fn c() { print(1); }";

    #[test]
    fn one_variant_per_site_containing_function() {
        let p = parse(SRC).unwrap();
        let inst = instrument(&p, Scheme::Checks).unwrap();
        let variants = single_function_variants(&inst);
        let names: Vec<&str> = variants.iter().map(|v| v.function.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn variant_keeps_only_its_function_sites() {
        let p = parse(SRC).unwrap();
        let inst = instrument(&p, Scheme::Checks).unwrap();
        let variants = single_function_variants(&inst);
        let va = &variants[0];
        assert_eq!(
            count_sites_block(&va.program.function("a").unwrap().body),
            1
        );
        assert_eq!(
            count_sites_block(&va.program.function("b").unwrap().body),
            0
        );
    }

    #[test]
    fn single_function_variants_grow_less_than_full() {
        let p = parse(SRC).unwrap();
        let inst = instrument(&p, Scheme::Checks).unwrap();
        let baseline = strip_sites(&inst.program);
        let (full, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
        let full_growth = code_growth(&baseline, &full);
        for tv in transform_variants(&inst, &TransformOptions::default()).unwrap() {
            let g = code_growth(&baseline, &tv.program);
            assert!(
                g <= full_growth + 1e-9,
                "variant {} grew {g} vs full {full_growth}",
                tv.function
            );
        }
    }
}
