//! Static metrics for Table 1 and the code-growth measurements of §3.1.2.

use crate::transform::TransformStats;
use cbi_minic::ast::{program_size, Program};

/// One row of Table 1: static metrics of the sampling transformation
/// applied to a whole benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticMetrics {
    /// Benchmark name.
    pub benchmark: String,
    /// Total number of (non-library) functions.
    pub total_functions: usize,
    /// Functions found weightless by the §2.3 analysis.
    pub weightless: usize,
    /// Functions that directly contain at least one instrumentation site.
    pub with_sites: usize,
    /// Average sites per site-containing function.
    pub avg_sites: f64,
    /// Average threshold check points per site-containing function.
    pub avg_threshold_checks: f64,
    /// Average weight over all threshold check points.
    pub avg_threshold_weight: f64,
}

impl StaticMetrics {
    /// Builds a Table 1 row from a program and its transformation stats.
    pub fn from_stats(
        benchmark: impl Into<String>,
        program: &Program,
        stats: &TransformStats,
    ) -> Self {
        StaticMetrics {
            benchmark: benchmark.into(),
            total_functions: program.functions.len(),
            weightless: stats.weightless_functions(),
            with_sites: stats.functions_with_sites(),
            avg_sites: stats.avg_sites(),
            avg_threshold_checks: stats.avg_threshold_checks(),
            avg_threshold_weight: stats.avg_threshold_weight(),
        }
    }
}

/// Code growth of a transformed program relative to a reference, as a
/// fraction (0.13 = "13% larger").  Sizes are AST node counts, the analogue
/// of executable size for an interpreted substrate.
pub fn code_growth(reference: &Program, transformed: &Program) -> f64 {
    let base = program_size(reference) as f64;
    let grown = program_size(transformed) as f64;
    if base == 0.0 {
        0.0
    } else {
        grown / base - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{instrument, Scheme};
    use crate::transform::{apply_sampling, TransformOptions};
    use cbi_minic::parse;

    #[test]
    fn metrics_reflect_transformation() {
        let src = "fn quiet(int x) -> int { return x; }\n\
             fn f(ptr p, int i) { check(p != null); check(i < 10); }\n\
             fn g(ptr p) { check(p != null); }";
        let p = parse(src).unwrap();
        let inst = instrument(&p, Scheme::Checks).unwrap();
        let (_, stats) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
        let m = StaticMetrics::from_stats("demo", &inst.program, &stats);
        assert_eq!(m.total_functions, 3);
        assert_eq!(m.with_sites, 2);
        assert_eq!(m.weightless, 1); // quiet
        assert!((m.avg_sites - 1.5).abs() < 1e-9);
        assert!(m.avg_threshold_weight >= 1.0);
    }

    #[test]
    fn code_growth_measures_cloning() {
        let src = "fn f(ptr p, int i) { check(p != null); check(i < 10); print(i); }";
        let p = parse(src).unwrap();
        let inst = instrument(&p, Scheme::Checks).unwrap();
        let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
        let growth = code_growth(&inst.program, &sampled);
        assert!(growth > 0.2, "dual paths should grow code: {growth}");
        // And against the uninstrumented baseline it is even larger.
        let baseline = crate::strip::strip_sites(&inst.program);
        let growth2 = code_growth(&baseline, &sampled);
        assert!(growth2 > growth);
    }

    #[test]
    fn zero_growth_for_untouched_program() {
        let p = parse("fn f() { print(1); }").unwrap();
        assert_eq!(code_growth(&p, &p), 0.0);
    }
}
