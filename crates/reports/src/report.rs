//! Feedback reports (§2.5).
//!
//! "The final form of the data is a vector of integers, with position *i*
//! containing the number of times we observed that the *i*th predicate was
//! true" — plus "a flag indicating whether it completed successfully or was
//! aborted" (§3.3.1).  Ordering information is deliberately discarded to
//! keep reports compact and constant-size per execution.

use std::error::Error;
use std::fmt;

/// The binary outcome label attached to each report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The run completed successfully (class 0 in §3.3.2).
    Success,
    /// The run crashed or failed an assertion (class 1).
    Failure,
}

impl Label {
    /// The regression target: 0 for success, 1 for failure.
    pub fn as_target(self) -> f64 {
        match self {
            Label::Success => 0.0,
            Label::Failure => 1.0,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Success => f.write_str("success"),
            Label::Failure => f.write_str("failure"),
        }
    }
}

/// One execution's feedback report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Client-side run identifier (not interpreted by analyses).
    pub run_id: u64,
    /// Success or failure.
    pub label: Label,
    /// The counter vector, laid out per the program's site table.
    pub counters: Vec<u64>,
}

impl Report {
    /// Creates a report.
    pub fn new(run_id: u64, label: Label, counters: Vec<u64>) -> Self {
        Report {
            run_id,
            label,
            counters,
        }
    }

    /// Whether counter `i` was ever observed true in this run.
    pub fn observed(&self, i: usize) -> bool {
        self.counters.get(i).copied().unwrap_or(0) > 0
    }

    /// Number of counters in the report.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the report has no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Serializes to a single JSON line (the wire format), e.g.
    /// `{"run_id":42,"label":"Failure","counters":[1,0,7]}`.
    ///
    /// # Errors
    ///
    /// Infallible for well-formed reports; the `Result` is kept so call
    /// sites are insulated from future wire-format evolution.
    pub fn to_json(&self) -> Result<String, ReportParseError> {
        // Wire format matches the original serde output byte-for-byte:
        // field order run_id/label/counters, no whitespace.
        let mut s = String::with_capacity(48 + 4 * self.counters.len());
        s.push_str("{\"run_id\":");
        s.push_str(&self.run_id.to_string());
        s.push_str(",\"label\":\"");
        s.push_str(match self.label {
            Label::Success => "Success",
            Label::Failure => "Failure",
        });
        s.push_str("\",\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_string());
        }
        s.push_str("]}");
        Ok(s)
    }

    /// Parses a report from its JSON line form.  Tolerates whitespace and
    /// field reordering; unknown fields are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`ReportParseError`] on malformed input.
    pub fn from_json(line: &str) -> Result<Self, ReportParseError> {
        let mut p = JsonParser::new(line);
        p.skip_ws();
        p.expect('{')?;
        let mut run_id: Option<u64> = None;
        let mut label: Option<Label> = None;
        let mut counters: Option<Vec<u64>> = None;
        loop {
            p.skip_ws();
            if p.eat('}') {
                break;
            }
            if run_id.is_some() || label.is_some() || counters.is_some() {
                p.expect(',')?;
                p.skip_ws();
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            match key.as_str() {
                "run_id" if run_id.is_none() => run_id = Some(p.integer()?),
                "label" if label.is_none() => {
                    label = Some(match p.string()?.as_str() {
                        "Success" => Label::Success,
                        "Failure" => Label::Failure,
                        other => {
                            return Err(ReportParseError::new(format!("unknown label {other:?}")))
                        }
                    })
                }
                "counters" if counters.is_none() => {
                    let mut v = Vec::new();
                    p.expect('[')?;
                    p.skip_ws();
                    if !p.eat(']') {
                        loop {
                            p.skip_ws();
                            v.push(p.integer()?);
                            p.skip_ws();
                            if p.eat(']') {
                                break;
                            }
                            p.expect(',')?;
                        }
                    }
                    counters = Some(v);
                }
                other => {
                    return Err(ReportParseError::new(format!(
                        "unexpected or duplicate field {other:?}"
                    )))
                }
            }
        }
        p.skip_ws();
        if !p.at_end() {
            return Err(ReportParseError::new("trailing data after report"));
        }
        Ok(Report {
            run_id: run_id.ok_or_else(|| ReportParseError::new("missing field \"run_id\""))?,
            label: label.ok_or_else(|| ReportParseError::new("missing field \"label\""))?,
            counters: counters
                .ok_or_else(|| ReportParseError::new("missing field \"counters\""))?,
        })
    }
}

/// Error from parsing a report's JSON line form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReportParseError {
    message: String,
}

impl ReportParseError {
    fn new(message: impl Into<String>) -> Self {
        ReportParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ReportParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "report parse error: {}", self.message)
    }
}

impl Error for ReportParseError {}

/// A minimal cursor over the subset of JSON the wire format uses:
/// objects, arrays, unsigned integers, and plain (escape-free) strings.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c as u8) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), ReportParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(ReportParseError::new(format!(
                "expected {c:?} at byte {}",
                self.pos
            )))
        }
    }

    fn string(&mut self) -> Result<String, ReportParseError> {
        self.expect('"')?;
        let start = self.pos;
        loop {
            match self.peek() {
                Some(b'"') => break,
                Some(b'\\') => {
                    return Err(ReportParseError::new(
                        "escape sequences are not part of the report wire format",
                    ))
                }
                Some(_) => self.pos += 1,
                None => return Err(ReportParseError::new("unterminated string")),
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ReportParseError::new("invalid utf-8 in string"))?
            .to_string();
        self.pos += 1; // closing quote
        Ok(s)
    }

    fn integer(&mut self) -> Result<u64, ReportParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ReportParseError::new(format!(
                "expected integer at byte {start}"
            )));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ascii")
            .parse()
            .map_err(|_| ReportParseError::new("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_as_targets() {
        assert_eq!(Label::Success.as_target(), 0.0);
        assert_eq!(Label::Failure.as_target(), 1.0);
        assert_eq!(Label::Failure.to_string(), "failure");
    }

    #[test]
    fn observed_counters() {
        let r = Report::new(1, Label::Success, vec![0, 3, 0]);
        assert!(!r.observed(0));
        assert!(r.observed(1));
        assert!(!r.observed(2));
        assert!(!r.observed(99), "out of range counts as unobserved");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let r = Report::new(42, Label::Failure, vec![1, 0, 7]);
        let line = r.to_json().unwrap();
        assert!(line.contains("Failure"));
        let back = Report::from_json(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn json_is_exact_wire_format() {
        let r = Report::new(42, Label::Failure, vec![1, 0, 7]);
        assert_eq!(
            r.to_json().unwrap(),
            r#"{"run_id":42,"label":"Failure","counters":[1,0,7]}"#
        );
        let empty = Report::new(0, Label::Success, vec![]);
        assert_eq!(
            empty.to_json().unwrap(),
            r#"{"run_id":0,"label":"Success","counters":[]}"#
        );
        assert_eq!(Report::from_json(&empty.to_json().unwrap()).unwrap(), empty);
    }

    #[test]
    fn parser_tolerates_whitespace_and_field_order() {
        let line = r#" { "counters" : [ 1 , 2 ] , "label" : "Success" , "run_id" : 9 } "#;
        let r = Report::from_json(line).unwrap();
        assert_eq!(r, Report::new(9, Label::Success, vec![1, 2]));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(Report::from_json("{not json").is_err());
        assert!(Report::from_json(r#"{"run_id":1,"label":"Success"}"#).is_err());
        assert!(Report::from_json(r#"{"run_id":1,"label":"Meh","counters":[]}"#).is_err());
        assert!(
            Report::from_json(r#"{"run_id":1,"label":"Success","counters":[]} x"#).is_err(),
            "trailing garbage must be rejected"
        );
        assert!(
            Report::from_json(r#"{"run_id":1,"run_id":2,"label":"Success","counters":[]}"#)
                .is_err(),
            "duplicate fields must be rejected"
        );
    }
}
