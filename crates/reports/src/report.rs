//! Feedback reports (§2.5).
//!
//! "The final form of the data is a vector of integers, with position *i*
//! containing the number of times we observed that the *i*th predicate was
//! true" — plus "a flag indicating whether it completed successfully or was
//! aborted" (§3.3.1).  Ordering information is deliberately discarded to
//! keep reports compact and constant-size per execution.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The binary outcome label attached to each report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// The run completed successfully (class 0 in §3.3.2).
    Success,
    /// The run crashed or failed an assertion (class 1).
    Failure,
}

impl Label {
    /// The regression target: 0 for success, 1 for failure.
    pub fn as_target(self) -> f64 {
        match self {
            Label::Success => 0.0,
            Label::Failure => 1.0,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Success => f.write_str("success"),
            Label::Failure => f.write_str("failure"),
        }
    }
}

/// One execution's feedback report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Client-side run identifier (not interpreted by analyses).
    pub run_id: u64,
    /// Success or failure.
    pub label: Label,
    /// The counter vector, laid out per the program's site table.
    pub counters: Vec<u64>,
}

impl Report {
    /// Creates a report.
    pub fn new(run_id: u64, label: Label, counters: Vec<u64>) -> Self {
        Report {
            run_id,
            label,
            counters,
        }
    }

    /// Whether counter `i` was ever observed true in this run.
    pub fn observed(&self, i: usize) -> bool {
        self.counters.get(i).copied().unwrap_or(0) > 0
    }

    /// Number of counters in the report.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the report has no counters.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Serializes to a single JSON line (the wire format).
    ///
    /// # Errors
    ///
    /// Returns a serialization error (should not occur for well-formed
    /// reports).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses a report from its JSON line form.
    ///
    /// # Errors
    ///
    /// Returns a deserialization error on malformed input.
    pub fn from_json(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_as_targets() {
        assert_eq!(Label::Success.as_target(), 0.0);
        assert_eq!(Label::Failure.as_target(), 1.0);
        assert_eq!(Label::Failure.to_string(), "failure");
    }

    #[test]
    fn observed_counters() {
        let r = Report::new(1, Label::Success, vec![0, 3, 0]);
        assert!(!r.observed(0));
        assert!(r.observed(1));
        assert!(!r.observed(2));
        assert!(!r.observed(99), "out of range counts as unobserved");
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let r = Report::new(42, Label::Failure, vec![1, 0, 7]);
        let line = r.to_json().unwrap();
        assert!(line.contains("Failure"));
        let back = Report::from_json(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(Report::from_json("{not json").is_err());
    }
}
