//! Transactional batch ingest: decode fully, then commit.
//!
//! A community client spools reports locally and transmits them in
//! *batches* — each batch is one self-contained wire stream (header plus
//! frames).  Real channels corrupt batches: bytes get flipped, streams
//! get cut short, stale clients present the wrong layout hash.  The
//! ingest loop must treat every such batch as data to reject, never a
//! reason to crash, and a rejected batch must not poison the aggregates
//! with a half-decoded prefix.
//!
//! [`decode_batch`] decodes one batch to completion before anything is
//! committed; [`BatchIngest`] wraps a [`ReportSink`] with that
//! all-or-nothing policy plus running acceptance/rejection accounting, so
//! a server keeps ingesting subsequent batches after any malformed one.

use crate::sink::{ReportLayout, ReportSink, SinkError};
use crate::wire::{StreamHeader, WireError, WireErrorKind, WireReader};
use crate::Report;
use std::collections::BTreeMap;
use std::fmt;

/// Where a batch came from: the transmitting client and which delivery
/// attempt this was (0 = first try).  Optionally tagged with the
/// client's cohort label so server-side metrics can attribute bytes,
/// retries, and corruption to density-mix / variant / stale cohorts.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Provenance {
    /// Transmitting client id.
    pub client: u64,
    /// Zero-based delivery attempt index.
    pub attempt: u32,
    /// Cohort label (e.g. `"1/100+stale"`), when known.
    pub cohort: Option<String>,
}

impl Provenance {
    /// Provenance with no cohort attribution.
    pub fn new(client: u64, attempt: u32) -> Provenance {
        Provenance {
            client,
            attempt,
            cohort: None,
        }
    }

    /// Attaches a cohort label.
    #[must_use]
    pub fn with_cohort(mut self, cohort: impl Into<String>) -> Provenance {
        self.cohort = Some(cohort.into());
        self
    }

    /// The cohort label, or `"unknown"`.
    pub fn cohort_label(&self) -> &str {
        self.cohort.as_deref().unwrap_or("unknown")
    }
}

/// How decoding one delivered batch went, as a provenance tag.
///
/// `Clean` and `CorruptButDecodable` both commit; the distinction is
/// whether the delivered bytes differed from what the client sent (a
/// lossy channel can flip bits that still parse).  `Rejected` carries
/// the payload-free error kind so per-kind counters stay `Copy`/`Ord`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecodeOutcome {
    /// Decoded and committed; delivered bytes matched the original.
    Clean,
    /// Decoded and committed, but the delivered bytes were altered in
    /// flight (detectable only when the sender's bytes are known).
    CorruptButDecodable,
    /// Rejected with the given typed error kind; nothing committed.
    Rejected(WireErrorKind),
}

impl DecodeOutcome {
    /// Whether the batch committed reports.
    pub fn accepted(self) -> bool {
        !matches!(self, DecodeOutcome::Rejected(_))
    }

    /// A stable snake_case name, suitable as a metric label value.
    pub fn name(self) -> &'static str {
        match self {
            DecodeOutcome::Clean => "clean",
            DecodeOutcome::CorruptButDecodable => "corrupt_but_decodable",
            DecodeOutcome::Rejected(_) => "rejected",
        }
    }
}

impl fmt::Display for DecodeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeOutcome::Rejected(kind) => write!(f, "rejected({kind})"),
            other => f.write_str(other.name()),
        }
    }
}

/// What one successfully ingested batch contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchStats {
    /// Reports committed to the sink.
    pub reports: usize,
    /// Wire bytes consumed (header plus frames).
    pub bytes: u64,
}

/// Why a batch was rejected: the typed wire error plus how far decoding
/// got before failing (nothing up to that point was committed).
#[derive(Debug)]
pub struct BatchRejected {
    /// The decoding or validation failure.
    pub error: WireError,
    /// Frames decoded before the failure (all discarded).
    pub decoded: usize,
}

impl fmt::Display for BatchRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch rejected after {} decoded frame(s): {}",
            self.decoded, self.error
        )
    }
}

impl std::error::Error for BatchRejected {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Decodes one whole batch (a self-contained wire stream) from `bytes`,
/// validating the header against `expected` when given.
///
/// Decoding runs to the end of the stream before returning, so a
/// malformed byte anywhere rejects the entire batch — no partial prefix
/// escapes.
///
/// # Errors
///
/// Returns [`BatchRejected`] carrying the typed [`WireError`] for any
/// malformed header or frame, or a layout mismatch.
pub fn decode_batch(
    bytes: &[u8],
    expected: Option<ReportLayout>,
) -> Result<(Vec<Report>, StreamHeader, u64), BatchRejected> {
    let rejected = |error, decoded| BatchRejected { error, decoded };
    let mut reader = WireReader::new(bytes).map_err(|e| rejected(e, 0))?;
    if let Some(layout) = expected {
        reader
            .expect_layout(layout.layout_hash, layout.counters)
            .map_err(|e| rejected(e, 0))?;
    }
    let header = reader.header();
    let mut reports = Vec::new();
    loop {
        match reader.read_report() {
            Ok(Some(report)) => reports.push(report),
            Ok(None) => break,
            Err(e) => return Err(rejected(e, reports.len())),
        }
    }
    Ok((reports, header, reader.bytes_read()))
}

/// A [`ReportSink`] front end with all-or-nothing batch semantics.
///
/// Each call to [`ingest`](BatchIngest::ingest) decodes one batch fully;
/// only a clean batch is folded into the sink, and a rejected batch
/// leaves the sink exactly as it was.  The ingest loop is re-entrant
/// after any error — feed the next batch and keep going.
#[derive(Debug)]
pub struct BatchIngest<S: ReportSink> {
    sink: S,
    expected: Option<ReportLayout>,
    accepted: u64,
    rejected: u64,
    reports: u64,
    bytes: u64,
    rejected_bytes: u64,
    rejected_by_kind: BTreeMap<WireErrorKind, u64>,
}

impl<S: ReportSink> BatchIngest<S> {
    /// Wraps `sink`; batches must match `expected` when given (a stale
    /// client's stream is rejected at its header, before any frame).
    pub fn new(sink: S, expected: Option<ReportLayout>) -> Self {
        BatchIngest {
            sink,
            expected,
            accepted: 0,
            rejected: 0,
            reports: 0,
            bytes: 0,
            rejected_bytes: 0,
            rejected_by_kind: BTreeMap::new(),
        }
    }

    /// Ingests one batch transactionally.
    ///
    /// # Errors
    ///
    /// Returns [`BatchRejected`] (typed, never a panic) for a malformed
    /// or mismatched batch — the sink is untouched and the ingest loop
    /// may continue — or [`BatchRejected`] wrapping an I/O-class error if
    /// the sink itself fails mid-commit.
    pub fn ingest(&mut self, bytes: &[u8]) -> Result<BatchStats, BatchRejected> {
        match self.try_ingest(bytes) {
            Ok(stats) => {
                self.accepted += 1;
                self.reports += stats.reports as u64;
                self.bytes += stats.bytes;
                Ok(stats)
            }
            Err(e) => {
                self.rejected += 1;
                self.rejected_bytes += bytes.len() as u64;
                *self.rejected_by_kind.entry(e.error.kind()).or_default() += 1;
                Err(e)
            }
        }
    }

    fn try_ingest(&mut self, bytes: &[u8]) -> Result<BatchStats, BatchRejected> {
        let (reports, header, consumed) = decode_batch(bytes, self.expected)?;
        let count = reports.len();
        self.sink
            .begin(ReportLayout {
                counters: header.counters,
                layout_hash: header.layout_hash,
            })
            .map_err(|e| BatchRejected {
                error: sink_error_to_wire(e),
                decoded: count,
            })?;
        for (i, report) in reports.into_iter().enumerate() {
            self.sink.accept(report).map_err(|e| BatchRejected {
                error: sink_error_to_wire(e),
                decoded: i,
            })?;
        }
        Ok(BatchStats {
            reports: count,
            bytes: consumed,
        })
    }

    /// Finishes the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates the sink's flush failure.
    pub fn finish(&mut self) -> Result<(), SinkError> {
        self.sink.finish()
    }

    /// The wrapped sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consumes the front end, returning the sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Batches committed.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Batches rejected (typed error, nothing committed).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Rejections specifically for a layout-hash/width mismatch — the
    /// stale-client signal.
    pub fn layout_rejections(&self) -> u64 {
        self.rejection_count(WireErrorKind::LayoutHashMismatch)
    }

    /// Rejection totals broken down by typed [`WireErrorKind`], sorted
    /// by kind.  Kinds that never occurred are absent.
    pub fn rejected_by_kind(&self) -> &BTreeMap<WireErrorKind, u64> {
        &self.rejected_by_kind
    }

    /// Rejections of one specific kind (0 when never seen).
    pub fn rejection_count(&self, kind: WireErrorKind) -> u64 {
        self.rejected_by_kind.get(&kind).copied().unwrap_or(0)
    }

    /// Reports committed across all accepted batches.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Wire bytes consumed by accepted batches.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bytes received in rejected batches (still cost the wire).
    pub fn rejected_bytes(&self) -> u64 {
        self.rejected_bytes
    }
}

/// Maps a sink failure during commit onto the wire error space so
/// [`BatchRejected`] stays the single rejection type.  Layout errors map
/// onto the matching wire variant; transport errors pass through.
fn sink_error_to_wire(e: SinkError) -> WireError {
    match e {
        SinkError::Wire(w) => w,
        SinkError::Collect(c) => WireError::Io(std::io::Error::other(c.to_string())),
        SinkError::NotBegun => WireError::Io(std::io::Error::other("sink not begun")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode_reports;
    use crate::{Collector, Label};

    fn batch(layout_hash: u64) -> Vec<u8> {
        let reports = vec![
            Report::new(0, Label::Success, vec![1, 0, 2]),
            Report::new(1, Label::Failure, vec![0, 5, 0]),
        ];
        encode_reports(&reports, layout_hash, 3).unwrap()
    }

    fn layout() -> ReportLayout {
        ReportLayout {
            counters: 3,
            layout_hash: 0xabc,
        }
    }

    #[test]
    fn clean_batches_commit() {
        let mut ingest = BatchIngest::new(Collector::default(), Some(layout()));
        let stats = ingest.ingest(&batch(0xabc)).unwrap();
        assert_eq!(stats.reports, 2);
        assert_eq!(stats.bytes, batch(0xabc).len() as u64);
        assert_eq!(ingest.accepted(), 1);
        assert_eq!(ingest.reports(), 2);
        assert_eq!(ingest.sink().len(), 2);
    }

    #[test]
    fn stale_layout_rejected_before_any_commit() {
        let mut ingest = BatchIngest::new(Collector::default(), Some(layout()));
        let err = ingest.ingest(&batch(0xdead)).unwrap_err();
        assert!(matches!(err.error, WireError::LayoutHashMismatch { .. }));
        assert_eq!(err.decoded, 0);
        assert_eq!(ingest.rejected(), 1);
        assert_eq!(ingest.layout_rejections(), 1);
        assert!(ingest.sink().is_empty());
        // The loop continues: a clean batch still lands afterwards.
        ingest.ingest(&batch(0xabc)).unwrap();
        assert_eq!(ingest.sink().len(), 2);
    }

    #[test]
    fn truncated_batch_commits_nothing() {
        let good = batch(0xabc);
        // Cut inside the *first* frame's payload: one frame would decode
        // under streaming ingest, but transactional ingest discards it.
        let cut = &good[..good.len() - 1];
        let mut ingest = BatchIngest::new(Collector::default(), Some(layout()));
        let err = ingest.ingest(cut).unwrap_err();
        assert!(matches!(err.error, WireError::Truncated(_)));
        assert_eq!(err.decoded, 1, "one frame decoded, then the cut");
        assert!(ingest.sink().is_empty(), "no partial prefix may commit");
        assert_eq!(ingest.rejected_bytes(), cut.len() as u64);
    }

    #[test]
    fn rejections_counted_per_kind() {
        let mut ingest = BatchIngest::new(Collector::default(), Some(layout()));
        // Two stale batches, one truncated, one garbage magic.
        ingest.ingest(&batch(0xdead)).unwrap_err();
        ingest.ingest(&batch(0xbeef)).unwrap_err();
        let good = batch(0xabc);
        ingest.ingest(&good[..good.len() - 1]).unwrap_err();
        ingest.ingest(b"XXXXXXXX").unwrap_err();
        assert_eq!(ingest.rejected(), 4);
        assert_eq!(ingest.rejection_count(WireErrorKind::LayoutHashMismatch), 2);
        assert_eq!(ingest.rejection_count(WireErrorKind::Truncated), 1);
        assert_eq!(ingest.rejection_count(WireErrorKind::BadMagic), 1);
        assert_eq!(ingest.rejection_count(WireErrorKind::VarintOverflow), 0);
        assert_eq!(ingest.layout_rejections(), 2);
        // Per-kind totals always sum to the aggregate.
        let total: u64 = ingest.rejected_by_kind().values().sum();
        assert_eq!(total, ingest.rejected());
        // BTreeMap keys iterate in stable kind order.
        let kinds: Vec<WireErrorKind> = ingest.rejected_by_kind().keys().copied().collect();
        let mut sorted = kinds.clone();
        sorted.sort();
        assert_eq!(kinds, sorted);
    }

    #[test]
    fn provenance_and_outcome_labels() {
        let p = Provenance::new(7, 2).with_cohort("1/100+stale");
        assert_eq!(p.client, 7);
        assert_eq!(p.attempt, 2);
        assert_eq!(p.cohort_label(), "1/100+stale");
        assert_eq!(Provenance::new(0, 0).cohort_label(), "unknown");

        assert!(DecodeOutcome::Clean.accepted());
        assert!(DecodeOutcome::CorruptButDecodable.accepted());
        let rej = DecodeOutcome::Rejected(WireErrorKind::Truncated);
        assert!(!rej.accepted());
        assert_eq!(rej.name(), "rejected");
        assert_eq!(rej.to_string(), "rejected(truncated)");
        assert_eq!(DecodeOutcome::Clean.to_string(), "clean");
    }

    #[test]
    fn rejection_is_displayable() {
        let mut ingest = BatchIngest::new(Collector::default(), Some(layout()));
        let err = ingest.ingest(b"XXXX").unwrap_err();
        let text = err.to_string();
        assert!(text.contains("rejected"), "{text}");
    }
}
