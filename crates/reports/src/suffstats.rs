//! Sufficient statistics for privacy-preserving analysis (§5).
//!
//! "Many statistical analyses are characterized by a set of sufficient
//! statistics … once the logistic regression parameters have been updated
//! with a new trace, the trace itself may be discarded."  The four
//! predicate-elimination strategies of §3.2.2 likewise need only, per
//! counter and per outcome class, *in how many runs the counter was
//! nonzero* — not the runs themselves.  This accumulator retains exactly
//! that, so a collector can discard raw reports as they arrive and an
//! attacker compromising the analysis host cannot recover any single
//! trace.

use crate::report::{Label, Report};

/// Per-counter, per-class observation statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SufficientStats {
    /// Runs in which counter `i` was nonzero, among successful runs.
    nonzero_in_success: Vec<u64>,
    /// Runs in which counter `i` was nonzero, among failed runs.
    nonzero_in_failure: Vec<u64>,
    /// Total observations of counter `i` across successful runs.
    sum_success: Vec<u64>,
    /// Total observations of counter `i` across failed runs.
    sum_failure: Vec<u64>,
    /// Number of successful runs folded in.
    successes: u64,
    /// Number of failed runs folded in.
    failures: u64,
}

impl SufficientStats {
    /// Creates an accumulator for `counters` counters.
    pub fn new(counters: usize) -> Self {
        SufficientStats {
            nonzero_in_success: vec![0; counters],
            nonzero_in_failure: vec![0; counters],
            sum_success: vec![0; counters],
            sum_failure: vec![0; counters],
            successes: 0,
            failures: 0,
        }
    }

    /// Number of counters tracked.
    pub fn counter_count(&self) -> usize {
        self.nonzero_in_success.len()
    }

    /// Folds in one report; the report may then be discarded.
    ///
    /// # Panics
    ///
    /// Panics if the report's counter count does not match.
    pub fn update(&mut self, report: &Report) {
        assert_eq!(
            report.counters.len(),
            self.counter_count(),
            "report layout mismatch"
        );
        let (nonzero, sum) = match report.label {
            Label::Success => (&mut self.nonzero_in_success, &mut self.sum_success),
            Label::Failure => (&mut self.nonzero_in_failure, &mut self.sum_failure),
        };
        for (i, &c) in report.counters.iter().enumerate() {
            if c > 0 {
                nonzero[i] += 1;
            }
            // The elimination strategies only consult the nonzero-run
            // counts; the totals saturate rather than poison an entire
            // campaign over one absurd counter.
            sum[i] = sum[i].saturating_add(c);
        }
        match report.label {
            Label::Success => self.successes += 1,
            Label::Failure => self.failures += 1,
        }
    }

    /// Number of successful runs folded in.
    pub fn success_runs(&self) -> u64 {
        self.successes
    }

    /// Number of failed runs folded in.
    pub fn failure_runs(&self) -> u64 {
        self.failures
    }

    /// In how many successful runs counter `i` was observed true.
    pub fn nonzero_successes(&self, i: usize) -> u64 {
        self.nonzero_in_success[i]
    }

    /// In how many failed runs counter `i` was observed true.
    pub fn nonzero_failures(&self, i: usize) -> u64 {
        self.nonzero_in_failure[i]
    }

    /// Whether counter `i` was observed true in any run at all.
    pub fn ever_observed(&self, i: usize) -> bool {
        self.nonzero_in_success[i] + self.nonzero_in_failure[i] > 0
    }

    /// Total observations of counter `i` in successful runs.
    pub fn total_in_successes(&self, i: usize) -> u64 {
        self.sum_success[i]
    }

    /// Total observations of counter `i` in failed runs.
    pub fn total_in_failures(&self, i: usize) -> u64 {
        self.sum_failure[i]
    }

    /// Merges another accumulator (e.g. from a second collection server).
    ///
    /// # Panics
    ///
    /// Panics if the counter counts differ.
    pub fn merge(&mut self, other: &SufficientStats) {
        assert_eq!(
            self.counter_count(),
            other.counter_count(),
            "sufficient stats layout mismatch"
        );
        for i in 0..self.counter_count() {
            self.nonzero_in_success[i] += other.nonzero_in_success[i];
            self.nonzero_in_failure[i] += other.nonzero_in_failure[i];
            self.sum_success[i] = self.sum_success[i].saturating_add(other.sum_success[i]);
            self.sum_failure[i] = self.sum_failure[i].saturating_add(other.sum_failure[i]);
        }
        self.successes += other.successes;
        self.failures += other.failures;
    }
}

impl FromIterator<Report> for SufficientStats {
    fn from_iter<T: IntoIterator<Item = Report>>(iter: T) -> Self {
        let mut it = iter.into_iter().peekable();
        let counters = it.peek().map_or(0, |r| r.counters.len());
        let mut stats = SufficientStats::new(counters);
        for r in it {
            stats.update(&r);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SufficientStats {
        let mut s = SufficientStats::new(3);
        s.update(&Report::new(0, Label::Success, vec![2, 0, 1]));
        s.update(&Report::new(1, Label::Failure, vec![0, 3, 1]));
        s.update(&Report::new(2, Label::Success, vec![1, 0, 0]));
        s
    }

    #[test]
    fn per_class_nonzero_counts() {
        let s = stats();
        assert_eq!(s.success_runs(), 2);
        assert_eq!(s.failure_runs(), 1);
        assert_eq!(s.nonzero_successes(0), 2);
        assert_eq!(s.nonzero_failures(0), 0);
        assert_eq!(s.nonzero_failures(1), 1);
        assert_eq!(s.nonzero_successes(1), 0);
        assert!(s.ever_observed(2));
        assert!(s.ever_observed(0));
    }

    #[test]
    fn sums_accumulate() {
        let s = stats();
        assert_eq!(s.total_in_successes(0), 3);
        assert_eq!(s.total_in_failures(1), 3);
        assert_eq!(s.total_in_successes(2), 1);
        assert_eq!(s.total_in_failures(2), 1);
    }

    #[test]
    fn merge_combines_servers() {
        let mut a = stats();
        let b = stats();
        a.merge(&b);
        assert_eq!(a.success_runs(), 4);
        assert_eq!(a.nonzero_successes(0), 4);
        assert_eq!(a.total_in_failures(1), 6);
    }

    #[test]
    fn from_iterator_builds_stats() {
        let s: SufficientStats = vec![
            Report::new(0, Label::Success, vec![1, 0]),
            Report::new(1, Label::Failure, vec![0, 1]),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.counter_count(), 2);
        assert_eq!(s.success_runs(), 1);
        assert_eq!(s.failure_runs(), 1);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn update_rejects_wrong_layout() {
        let mut s = SufficientStats::new(2);
        s.update(&Report::new(0, Label::Success, vec![1]));
    }
}
