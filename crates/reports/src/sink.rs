//! Where reports go: the [`ReportSink`] abstraction.
//!
//! The campaign driver produces one [`Report`] per run; *collection
//! policy* — keep them in memory, spool them to disk, transmit them to a
//! remote analysis server, or fold them into aggregates and discard them —
//! is the sink's business, not the driver's.  A sink receives the counter
//! layout once ([`ReportSink::begin`]), then reports in run-id order
//! ([`ReportSink::accept`]), then a final flush ([`ReportSink::finish`]).
//!
//! In-tree implementations:
//!
//! * [`Collector`](crate::Collector) — the in-memory central database;
//! * [`SpoolSink`] — length-prefixed binary frames to a file on disk;
//! * [`TransmitSink`] — the same frames over a TCP socket to a
//!   `cbi serve` ingest daemon;
//! * `StreamingAnalyzer` (in the `cbi` crate) — sufficient statistics
//!   plus an online trainer, retaining no raw reports at all.
//!
//! Sinks compose: `(&mut a, &mut b)` fans each report out to both, and
//! `Option<S>` is a sink that may be absent.

use crate::collector::CollectError;
use crate::report::Report;
use crate::wire::{WireError, WireWriter};
use std::error::Error;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::path::Path;

/// The counter layout a campaign announces to its sink before the first
/// report: the report vector width plus the site-table fingerprint of the
/// instrumented binary (see `SiteTable::layout_hash` in `cbi-instrument`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReportLayout {
    /// Counters per report.
    pub counters: usize,
    /// Fingerprint of the producing site table.
    pub layout_hash: u64,
}

/// Error from a report sink.
#[derive(Debug)]
pub enum SinkError {
    /// A collection error (layout mismatch, ordering violation, I/O).
    Collect(CollectError),
    /// A wire-format error (encoding or transport).
    Wire(WireError),
    /// [`ReportSink::accept`] was called before [`ReportSink::begin`].
    NotBegun,
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkError::Collect(e) => write!(f, "sink collect error: {e}"),
            SinkError::Wire(e) => write!(f, "sink wire error: {e}"),
            SinkError::NotBegun => f.write_str("sink received a report before begin()"),
        }
    }
}

impl Error for SinkError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SinkError::Collect(e) => Some(e),
            SinkError::Wire(e) => Some(e),
            SinkError::NotBegun => None,
        }
    }
}

impl From<CollectError> for SinkError {
    fn from(e: CollectError) -> Self {
        SinkError::Collect(e)
    }
}

impl From<WireError> for SinkError {
    fn from(e: WireError) -> Self {
        SinkError::Wire(e)
    }
}

/// A destination for a stream of reports sharing one counter layout.
pub trait ReportSink {
    /// Announces the layout before any report arrives.  Called exactly
    /// once per stream.
    ///
    /// # Errors
    ///
    /// Returns [`SinkError`] if the sink cannot accept this layout.
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError>;

    /// Delivers one report.  Reports arrive in strictly increasing
    /// run-id order.
    ///
    /// # Errors
    ///
    /// Returns [`SinkError`] if the report cannot be ingested.
    fn accept(&mut self, report: Report) -> Result<(), SinkError>;

    /// Flushes any buffered state after the last report.
    ///
    /// # Errors
    ///
    /// Returns [`SinkError`] on flush failure.
    fn finish(&mut self) -> Result<(), SinkError> {
        Ok(())
    }
}

impl<S: ReportSink + ?Sized> ReportSink for &mut S {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        (**self).begin(layout)
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        (**self).accept(report)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        (**self).finish()
    }
}

/// Fans each report out to both sinks (the report is cloned once).
impl<A: ReportSink, B: ReportSink> ReportSink for (A, B) {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        self.0.begin(layout)?;
        self.1.begin(layout)
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        self.0.accept(report.clone())?;
        self.1.accept(report)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        self.0.finish()?;
        self.1.finish()
    }
}

/// A sink that may be absent; `None` swallows everything.
impl<S: ReportSink> ReportSink for Option<S> {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        match self {
            Some(s) => s.begin(layout),
            None => Ok(()),
        }
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        match self {
            Some(s) => s.accept(report),
            None => Ok(()),
        }
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        match self {
            Some(s) => s.finish(),
            None => Ok(()),
        }
    }
}

/// A sink that frames reports onto any writer with the binary wire
/// codec.  The stream header is written at [`ReportSink::begin`], when
/// the layout becomes known.
#[derive(Debug)]
pub struct WireSink<W: Write> {
    pending: Option<W>,
    writer: Option<WireWriter<W>>,
}

impl<W: Write> WireSink<W> {
    /// Wraps a writer; nothing is written until `begin`.
    pub fn new(w: W) -> Self {
        WireSink {
            pending: Some(w),
            writer: None,
        }
    }

    /// Reports framed so far.
    pub fn reports_written(&self) -> u64 {
        self.writer.as_ref().map_or(0, WireWriter::reports_written)
    }

    /// Bytes written so far, header included.
    pub fn bytes_written(&self) -> u64 {
        self.writer.as_ref().map_or(0, WireWriter::bytes_written)
    }
}

impl<W: Write> ReportSink for WireSink<W> {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        let w = self.pending.take().ok_or(SinkError::NotBegun)?;
        self.writer = Some(WireWriter::new(w, layout.layout_hash, layout.counters)?);
        Ok(())
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        let w = self.writer.as_mut().ok_or(SinkError::NotBegun)?;
        w.write_report(&report)?;
        Ok(())
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        if let Some(w) = self.writer.as_mut() {
            w.flush()?;
        }
        Ok(())
    }
}

/// Spools reports to a file as binary wire frames — the durable
/// intermediary between collection and analysis.
#[derive(Debug)]
pub struct SpoolSink {
    inner: WireSink<BufWriter<File>>,
}

impl SpoolSink {
    /// Creates (truncating) the spool file.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(SpoolSink {
            inner: WireSink::new(BufWriter::new(file)),
        })
    }

    /// Reports spooled so far.
    pub fn reports_written(&self) -> u64 {
        self.inner.reports_written()
    }

    /// Bytes spooled so far, header included.
    pub fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

impl ReportSink for SpoolSink {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        self.inner.begin(layout)
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        self.inner.accept(report)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        self.inner.finish()
    }
}

/// Transmits reports over a TCP connection as binary wire frames — the
/// client half of the remote-collection loop.  Connect before the
/// campaign; `finish` flushes and half-closes the socket so the server
/// sees a clean end of stream.
#[derive(Debug)]
pub struct TransmitSink {
    stream: TcpStream,
    inner: WireSink<BufWriter<TcpStream>>,
}

impl TransmitSink {
    /// Connects to an ingest server (typically `cbi serve` on loopback).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(TransmitSink {
            stream,
            inner: WireSink::new(BufWriter::new(writer)),
        })
    }

    /// Reports transmitted so far.
    pub fn reports_written(&self) -> u64 {
        self.inner.reports_written()
    }

    /// Bytes transmitted so far, header included.
    pub fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

impl ReportSink for TransmitSink {
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        self.inner.begin(layout)
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        self.inner.accept(report)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        self.inner.finish()?;
        // Half-close: the server's reader sees EOF at a frame boundary.
        self.stream.shutdown(Shutdown::Write).ok();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Label;
    use crate::wire::read_collector;
    use crate::Collector;

    fn layout() -> ReportLayout {
        ReportLayout {
            counters: 2,
            layout_hash: 77,
        }
    }

    fn feed<S: ReportSink>(sink: &mut S) {
        sink.begin(layout()).unwrap();
        sink.accept(Report::new(0, Label::Success, vec![1, 0]))
            .unwrap();
        sink.accept(Report::new(1, Label::Failure, vec![0, 2]))
            .unwrap();
        sink.finish().unwrap();
    }

    #[test]
    fn wire_sink_frames_reports() {
        let mut sink = WireSink::new(Vec::new());
        feed(&mut sink);
        assert_eq!(sink.reports_written(), 2);
        let bytes = sink.writer.unwrap().into_inner().unwrap();
        let (c, header) = read_collector(bytes.as_slice()).unwrap();
        assert_eq!(header.layout_hash, 77);
        assert_eq!(c.len(), 2);
        assert_eq!(c.failure_count(), 1);
    }

    #[test]
    fn accept_before_begin_is_typed() {
        let mut sink = WireSink::new(Vec::new());
        let err = sink
            .accept(Report::new(0, Label::Success, vec![]))
            .unwrap_err();
        assert!(matches!(err, SinkError::NotBegun));
        assert!(err.to_string().contains("begin"));
    }

    #[test]
    fn pair_sink_fans_out() {
        let mut pair = (Collector::default(), WireSink::new(Vec::new()));
        feed(&mut pair);
        assert_eq!(pair.0.len(), 2);
        assert_eq!(pair.1.reports_written(), 2);
    }

    #[test]
    fn option_sink_swallows_when_absent() {
        let mut none: Option<Collector> = None;
        feed(&mut none);
        let mut some = Some(Collector::default());
        feed(&mut some);
        assert_eq!(some.unwrap().len(), 2);
    }

    #[test]
    fn spool_sink_round_trips_through_disk() {
        let path = std::env::temp_dir().join("cbi-spool-sink-test.cbr");
        let mut sink = SpoolSink::create(&path).unwrap();
        feed(&mut sink);
        assert!(sink.bytes_written() > 0);
        let file = File::open(&path).unwrap();
        let (c, header) = read_collector(std::io::BufReader::new(file)).unwrap();
        assert_eq!(header.counters, 2);
        assert_eq!(c.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
