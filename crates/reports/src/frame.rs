//! Batch envelope and ack frames for the network ingest protocol.
//!
//! A raw `CBIR` stream (see [`crate::wire`]) identifies *what* the
//! reports are but not *which delivery attempt* carried them.  Retrying
//! clients need the server to recognise a retransmitted batch after a
//! lost ack, and the crash-safe journal needs a self-delimiting record
//! it can re-read after an unclean shutdown.  Both are the same framing
//! problem, so both use the envelope below; the journal stores envelopes
//! verbatim behind its own file header.
//!
//! ```text
//! envelope := 'B' | client varint | seq varint | attempt varint
//!           | len varint | crc32 u32 LE | payload
//! ack      := 'A' | client varint | seq varint | verdict u8 | detail u8
//! ```
//!
//! * `client`/`seq` key the batch for idempotent dedup: a client
//!   retransmitting after a lost ack reuses the same `seq`, and the
//!   server answers [`AckVerdict::Duplicate`] without re-ingesting.
//! * `attempt` is provenance only (it feeds the server's
//!   [`Provenance`](crate::Provenance)): two attempts of one batch dedup
//!   to one ingest regardless of which attempt arrived.
//! * `crc32` covers the payload bytes.  A mismatch means the envelope
//!   framing survived but the payload was damaged in transit or on disk
//!   ([`AckVerdict::BadCrc`] on the wire; a skipped record in the
//!   journal).  It is deliberately *weaker* than a decode: the transport
//!   may deliver corrupt-but-decodable payloads, which CRC passes
//!   through to the normal [`decode_batch`](crate::decode_batch) path —
//!   the CRC only guards the framing layer itself.
//! * `verdict`/`detail` encode an [`AckVerdict`]; for
//!   [`AckVerdict::Rejected`] the detail byte indexes
//!   [`WireErrorKind::ALL`].

use crate::wire::{push_varint, read_u8, take_varint, WireError, WireErrorKind};
use std::io::Read;

/// Leading tag byte of a batch envelope.
pub const ENVELOPE_TAG: u8 = b'B';

/// Leading tag byte of an ack frame.
pub const ACK_TAG: u8 = b'A';

/// Hard ceiling on a declared envelope payload length, so a corrupt
/// length varint cannot provoke a multi-gigabyte allocation.
pub const MAX_ENVELOPE_PAYLOAD: usize = 1 << 28;

/// IEEE CRC-32 (reflected, polynomial 0xEDB88320) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// One batch of reports in transit: a `CBIR` payload plus the delivery
/// identity the ingest protocol keys on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEnvelope {
    /// Originating client id.
    pub client: u64,
    /// Client-assigned batch sequence number, stable across retries.
    pub seq: u64,
    /// Delivery attempt (0-based); provenance only, never a dedup key.
    pub attempt: u32,
    /// The enclosed `CBIR` stream bytes.
    pub payload: Vec<u8>,
}

impl BatchEnvelope {
    /// Wraps a payload with its delivery identity.
    pub fn new(client: u64, seq: u64, attempt: u32, payload: Vec<u8>) -> Self {
        BatchEnvelope {
            client,
            seq,
            attempt,
            payload,
        }
    }

    /// Appends the encoded envelope (tag, identity, length, CRC,
    /// payload) to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(ENVELOPE_TAG);
        push_varint(out, self.client);
        push_varint(out, self.seq);
        push_varint(out, self.attempt as u64);
        push_varint(out, self.payload.len() as u64);
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// The encoded envelope as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 10 * 3 + 5 + 4 + self.payload.len());
        self.encode_into(&mut out);
        out
    }
}

/// A decoded envelope plus framing metadata the caller acks on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvelopeRead {
    /// The envelope itself.  On a CRC mismatch the payload bytes are
    /// still returned as read — the journal replayer counts them.
    pub envelope: BatchEnvelope,
    /// Whether the payload matched its CRC.
    pub crc_ok: bool,
    /// Encoded size of the whole envelope, tag included.
    pub bytes: u64,
}

/// Decodes one varint from a reader, counting consumed bytes.
fn read_varint<R: Read>(
    r: &mut R,
    what: &'static str,
    consumed: &mut u64,
) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in (0..).step_by(7) {
        if shift >= 64 {
            return Err(WireError::VarintOverflow);
        }
        let byte = read_u8(r, what)?;
        *consumed += 1;
        let bits = (byte & 0x7f) as u64;
        if shift == 63 && bits > 1 {
            return Err(WireError::VarintOverflow);
        }
        v |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    unreachable!("loop returns or errors")
}

/// Reads one envelope, or `None` at a clean end of stream (EOF before
/// the tag byte).
///
/// A CRC mismatch is *not* an error: the framing held, so the stream
/// stays decodable and the mismatch is reported via
/// [`EnvelopeRead::crc_ok`] for the caller to NACK or skip.
///
/// # Errors
///
/// Returns [`WireError::BadMagic`] if the tag byte is not `'B'`,
/// [`WireError::Truncated`] on EOF inside the envelope,
/// [`WireError::FrameTooLarge`] past [`MAX_ENVELOPE_PAYLOAD`], or
/// [`WireError::Io`]/[`WireError::VarintOverflow`] as usual.
pub fn read_envelope<R: Read>(r: &mut R) -> Result<Option<EnvelopeRead>, WireError> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    if tag[0] != ENVELOPE_TAG {
        return Err(WireError::BadMagic([tag[0], 0, 0, 0]));
    }
    read_envelope_body(r).map(Some)
}

/// Reads an envelope whose tag byte was already consumed (connection
/// handlers sniff the first byte to pick a protocol).
///
/// # Errors
///
/// As [`read_envelope`], except EOF at any point is
/// [`WireError::Truncated`].
pub fn read_envelope_body<R: Read>(r: &mut R) -> Result<EnvelopeRead, WireError> {
    let mut consumed: u64 = 1; // the tag byte
    let client = read_varint(r, "envelope client id", &mut consumed)?;
    let seq = read_varint(r, "envelope sequence", &mut consumed)?;
    let attempt = read_varint(r, "envelope attempt", &mut consumed)?;
    let attempt = u32::try_from(attempt).map_err(|_| WireError::VarintOverflow)?;
    let len = read_varint(r, "envelope payload length", &mut consumed)? as usize;
    if len > MAX_ENVELOPE_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            declared: len,
            max: MAX_ENVELOPE_PAYLOAD,
        });
    }
    let mut crc = [0u8; 4];
    r.read_exact(&mut crc).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated("envelope crc")
        } else {
            WireError::Io(e)
        }
    })?;
    consumed += 4;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated("envelope payload")
        } else {
            WireError::Io(e)
        }
    })?;
    consumed += len as u64;
    let crc_ok = crc32(&payload) == u32::from_le_bytes(crc);
    Ok(EnvelopeRead {
        envelope: BatchEnvelope {
            client,
            seq,
            attempt,
            payload,
        },
        crc_ok,
        bytes: consumed,
    })
}

/// The server's verdict on one delivered envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckVerdict {
    /// Decoded and committed; the client can retire the batch.
    Accepted,
    /// Already committed under this `(client, seq)` — a retransmit
    /// after a lost ack.  The client retires the batch exactly as for
    /// [`AckVerdict::Accepted`].
    Duplicate,
    /// Shed by backpressure before ingest; retransmit after backoff.
    Overloaded,
    /// The payload failed its CRC; retransmit the same attempt.
    BadCrc,
    /// The payload failed to decode; the kind says why.  A
    /// [`WireErrorKind::LayoutHashMismatch`] means the client build is
    /// stale and should stop retrying.
    Rejected(WireErrorKind),
}

impl AckVerdict {
    /// Stable snake_case name, suitable as a metric label.
    pub fn name(self) -> &'static str {
        match self {
            AckVerdict::Accepted => "accepted",
            AckVerdict::Duplicate => "duplicate",
            AckVerdict::Overloaded => "overloaded",
            AckVerdict::BadCrc => "bad_crc",
            AckVerdict::Rejected(_) => "rejected",
        }
    }

    /// Whether this verdict tells the client its binary is stale.
    pub fn is_stale(self) -> bool {
        matches!(
            self,
            AckVerdict::Rejected(WireErrorKind::LayoutHashMismatch)
        )
    }

    fn code(self) -> (u8, u8) {
        match self {
            AckVerdict::Accepted => (0, 0),
            AckVerdict::Duplicate => (1, 0),
            AckVerdict::Overloaded => (2, 0),
            AckVerdict::BadCrc => (3, 0),
            AckVerdict::Rejected(kind) => {
                let detail = WireErrorKind::ALL
                    .iter()
                    .position(|k| *k == kind)
                    .expect("every kind is in ALL") as u8;
                (4, detail)
            }
        }
    }

    fn from_code(verdict: u8, detail: u8) -> Result<AckVerdict, WireError> {
        match verdict {
            0 => Ok(AckVerdict::Accepted),
            1 => Ok(AckVerdict::Duplicate),
            2 => Ok(AckVerdict::Overloaded),
            3 => Ok(AckVerdict::BadCrc),
            4 => WireErrorKind::ALL
                .get(detail as usize)
                .copied()
                .map(AckVerdict::Rejected)
                .ok_or(WireError::BadLabel(detail)),
            other => Err(WireError::BadLabel(other)),
        }
    }
}

/// One ack frame: the server's answer to one envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAck {
    /// Echoed client id.
    pub client: u64,
    /// Echoed batch sequence number.
    pub seq: u64,
    /// The verdict.
    pub verdict: AckVerdict,
}

impl BatchAck {
    /// Builds an ack answering `envelope` with `verdict`.
    pub fn answering(envelope: &BatchEnvelope, verdict: AckVerdict) -> Self {
        BatchAck {
            client: envelope.client,
            seq: envelope.seq,
            verdict,
        }
    }

    /// Appends the encoded ack to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(ACK_TAG);
        push_varint(out, self.client);
        push_varint(out, self.seq);
        let (verdict, detail) = self.verdict.code();
        out.push(verdict);
        out.push(detail);
    }

    /// The encoded ack as a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1 + 10 * 2 + 2);
        self.encode_into(&mut out);
        out
    }
}

/// Reads one ack frame, or `None` at a clean end of stream.
///
/// # Errors
///
/// Returns [`WireError::BadMagic`] if the tag byte is not `'A'`,
/// [`WireError::BadLabel`] on an unknown verdict or detail code, or
/// [`WireError::Truncated`]/[`WireError::Io`] as usual.
pub fn read_ack<R: Read>(r: &mut R) -> Result<Option<BatchAck>, WireError> {
    let mut tag = [0u8; 1];
    loop {
        match r.read(&mut tag) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    if tag[0] != ACK_TAG {
        return Err(WireError::BadMagic([tag[0], 0, 0, 0]));
    }
    let mut consumed = 1u64;
    let client = read_varint(r, "ack client id", &mut consumed)?;
    let seq = read_varint(r, "ack sequence", &mut consumed)?;
    let verdict = read_u8(r, "ack verdict byte")?;
    let detail = read_u8(r, "ack detail byte")?;
    Ok(Some(BatchAck {
        client,
        seq,
        verdict: AckVerdict::from_code(verdict, detail)?,
    }))
}

/// Decodes one envelope from a slice cursor (the journal replayer's
/// entry point — no reader indirection, exact offset tracking).
///
/// Returns `Ok(None)` when `pos` is already at the end of `buf`.
///
/// # Errors
///
/// As [`read_envelope`]; `pos` is left unspecified after an error.
pub fn take_envelope(buf: &[u8], pos: &mut usize) -> Result<Option<EnvelopeRead>, WireError> {
    if *pos >= buf.len() {
        return Ok(None);
    }
    let start = *pos;
    let tag = buf[*pos];
    *pos += 1;
    if tag != ENVELOPE_TAG {
        return Err(WireError::BadMagic([tag, 0, 0, 0]));
    }
    let client = take_varint(buf, pos)?;
    let seq = take_varint(buf, pos)?;
    let attempt = take_varint(buf, pos)?;
    let attempt = u32::try_from(attempt).map_err(|_| WireError::VarintOverflow)?;
    let len = take_varint(buf, pos)? as usize;
    if len > MAX_ENVELOPE_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            declared: len,
            max: MAX_ENVELOPE_PAYLOAD,
        });
    }
    if buf.len() - *pos < 4 {
        return Err(WireError::Truncated("envelope crc"));
    }
    let crc = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes checked"));
    *pos += 4;
    if buf.len() - *pos < len {
        return Err(WireError::Truncated("envelope payload"));
    }
    let payload = buf[*pos..*pos + len].to_vec();
    *pos += len;
    let crc_ok = crc32(&payload) == crc;
    Ok(Some(EnvelopeRead {
        envelope: BatchEnvelope {
            client,
            seq,
            attempt,
            payload,
        },
        crc_ok,
        bytes: (*pos - start) as u64,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchEnvelope {
        BatchEnvelope::new(42, 7, 2, b"CBIR-shaped payload bytes".to_vec())
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn envelope_round_trip() {
        let env = sample();
        let bytes = env.encode();
        let mut r = bytes.as_slice();
        let read = read_envelope(&mut r).unwrap().unwrap();
        assert_eq!(read.envelope, env);
        assert!(read.crc_ok);
        assert_eq!(read.bytes, bytes.len() as u64);
        assert!(read_envelope(&mut r).unwrap().is_none());

        let mut pos = 0;
        let taken = take_envelope(&bytes, &mut pos).unwrap().unwrap();
        assert_eq!(taken.envelope, env);
        assert!(taken.crc_ok);
        assert_eq!(pos, bytes.len());
        assert!(take_envelope(&bytes, &mut pos).unwrap().is_none());
    }

    #[test]
    fn corrupted_payload_fails_crc_but_frames() {
        let env = sample();
        let mut bytes = env.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let read = read_envelope(&mut bytes.as_slice()).unwrap().unwrap();
        assert!(!read.crc_ok);
        assert_eq!(read.envelope.client, env.client);
        assert_eq!(read.envelope.seq, env.seq);
    }

    #[test]
    fn truncation_detected_everywhere() {
        let bytes = sample().encode();
        for cut in 1..bytes.len() {
            let err = read_envelope(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated(_)),
                "cut at {cut}: {err}"
            );
            let mut pos = 0;
            let err = take_envelope(&bytes[..cut], &mut pos).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated(_)),
                "slice cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn wrong_tag_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(
            read_envelope(&mut bytes.as_slice()).unwrap_err(),
            WireError::BadMagic([b'X', 0, 0, 0])
        ));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut bytes = Vec::new();
        bytes.push(ENVELOPE_TAG);
        push_varint(&mut bytes, 1); // client
        push_varint(&mut bytes, 1); // seq
        push_varint(&mut bytes, 0); // attempt
        push_varint(&mut bytes, (MAX_ENVELOPE_PAYLOAD + 1) as u64);
        assert!(matches!(
            read_envelope(&mut bytes.as_slice()).unwrap_err(),
            WireError::FrameTooLarge { .. }
        ));
    }

    #[test]
    fn ack_round_trip_all_verdicts() {
        let mut verdicts = vec![
            AckVerdict::Accepted,
            AckVerdict::Duplicate,
            AckVerdict::Overloaded,
            AckVerdict::BadCrc,
        ];
        verdicts.extend(WireErrorKind::ALL.iter().map(|k| AckVerdict::Rejected(*k)));
        for verdict in verdicts {
            let ack = BatchAck {
                client: u64::MAX,
                seq: 123,
                verdict,
            };
            let bytes = ack.encode();
            let back = read_ack(&mut bytes.as_slice()).unwrap().unwrap();
            assert_eq!(back, ack);
        }
        assert!(read_ack(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn bad_ack_codes_rejected() {
        let mut bytes = BatchAck {
            client: 1,
            seq: 1,
            verdict: AckVerdict::Accepted,
        }
        .encode();
        let verdict_at = bytes.len() - 2;
        bytes[verdict_at] = 9;
        assert!(matches!(
            read_ack(&mut bytes.as_slice()).unwrap_err(),
            WireError::BadLabel(9)
        ));
        bytes[verdict_at] = 4;
        bytes[verdict_at + 1] = 0xff;
        assert!(matches!(
            read_ack(&mut bytes.as_slice()).unwrap_err(),
            WireError::BadLabel(0xff)
        ));
    }

    #[test]
    fn stale_detection() {
        assert!(AckVerdict::Rejected(WireErrorKind::LayoutHashMismatch).is_stale());
        assert!(!AckVerdict::Rejected(WireErrorKind::Truncated).is_stale());
        assert!(!AckVerdict::Accepted.is_stale());
    }
}
