//! Compact binary wire format for feedback reports.
//!
//! The paper's clients transmit counter vectors over the network (§2.5);
//! JSON lines are convenient for inspection but cost ~4 bytes per mostly-
//! zero counter.  This codec is the transmission format proper: a stream
//! begins with a fixed header identifying the codec version and the
//! *counter layout* of the instrumented binary that produced the reports,
//! followed by length-prefixed report frames with varint-packed counters.
//!
//! ```text
//! stream  := magic "CBIR" | version u8 | layout_hash u64 LE | counters varint | frame*
//! frame   := len varint | payload                  (len = payload byte count)
//! payload := run_id varint | label u8 (0|1) | counter varint × counters
//! ```
//!
//! The layout hash (see `SiteTable::layout_hash` in `cbi-instrument`)
//! fingerprints the site table, so a server rejects reports from a
//! mismatched instrumented binary at the frame boundary — with a typed
//! [`WireError::LayoutHashMismatch`] — instead of deep inside an analysis.
//! Varints are LEB128: 7 value bits per byte, high bit set on continuation.

use crate::collector::Collector;
use crate::report::{Label, Report};
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

/// Stream magic: the first four bytes of every report stream.
pub const MAGIC: [u8; 4] = *b"CBIR";

/// Current wire-format version.
pub const VERSION: u8 = 1;

/// The fixed header that opens every report stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Codec version (currently [`VERSION`]).
    pub version: u8,
    /// Fingerprint of the producing binary's counter layout.
    pub layout_hash: u64,
    /// Counters per report.
    pub counters: usize,
}

/// Error from encoding or decoding the binary wire format.
#[derive(Debug)]
pub enum WireError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The stream did not start with the `CBIR` magic.
    BadMagic([u8; 4]),
    /// The stream's version byte is not one this codec understands.
    UnsupportedVersion(u8),
    /// The stream's layout hash does not match the expected binary.
    LayoutHashMismatch {
        /// Hash of the layout the receiver expects.
        expected: u64,
        /// Hash carried by the stream header.
        got: u64,
    },
    /// The stream's counter count does not match the expected layout.
    CounterCountMismatch {
        /// Expected counters per report.
        expected: usize,
        /// Counters per report declared by the stream.
        got: usize,
    },
    /// The stream ended in the middle of a header or frame.
    Truncated(&'static str),
    /// A label byte was neither 0 (success) nor 1 (failure).
    BadLabel(u8),
    /// A varint ran past 10 bytes (more than 64 value bits).
    VarintOverflow,
    /// A frame declared a length beyond the layout's maximum.
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
        /// Maximum payload length the layout admits.
        max: usize,
    },
    /// A frame's payload length disagreed with its declared length.
    FrameLength {
        /// Declared payload length.
        declared: usize,
        /// Bytes actually consumed decoding the payload.
        used: usize,
    },
}

/// Payload-free classification of a [`WireError`] — one variant per
/// error shape, usable as a map key or metric label.
///
/// Ordering and [`name`](WireErrorKind::name) are stable: per-kind
/// rejection counters keyed on this enum export deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireErrorKind {
    /// [`WireError::Io`].
    Io,
    /// [`WireError::BadMagic`].
    BadMagic,
    /// [`WireError::UnsupportedVersion`].
    UnsupportedVersion,
    /// [`WireError::LayoutHashMismatch`].
    LayoutHashMismatch,
    /// [`WireError::CounterCountMismatch`].
    CounterCountMismatch,
    /// [`WireError::Truncated`].
    Truncated,
    /// [`WireError::BadLabel`].
    BadLabel,
    /// [`WireError::VarintOverflow`].
    VarintOverflow,
    /// [`WireError::FrameTooLarge`].
    FrameTooLarge,
    /// [`WireError::FrameLength`].
    FrameLength,
}

impl WireErrorKind {
    /// Every kind, in stable (declaration) order.
    pub const ALL: [WireErrorKind; 10] = [
        WireErrorKind::Io,
        WireErrorKind::BadMagic,
        WireErrorKind::UnsupportedVersion,
        WireErrorKind::LayoutHashMismatch,
        WireErrorKind::CounterCountMismatch,
        WireErrorKind::Truncated,
        WireErrorKind::BadLabel,
        WireErrorKind::VarintOverflow,
        WireErrorKind::FrameTooLarge,
        WireErrorKind::FrameLength,
    ];

    /// A stable snake_case name, suitable as a metric label value.
    pub fn name(self) -> &'static str {
        match self {
            WireErrorKind::Io => "io",
            WireErrorKind::BadMagic => "bad_magic",
            WireErrorKind::UnsupportedVersion => "unsupported_version",
            WireErrorKind::LayoutHashMismatch => "layout_hash_mismatch",
            WireErrorKind::CounterCountMismatch => "counter_count_mismatch",
            WireErrorKind::Truncated => "truncated",
            WireErrorKind::BadLabel => "bad_label",
            WireErrorKind::VarintOverflow => "varint_overflow",
            WireErrorKind::FrameTooLarge => "frame_too_large",
            WireErrorKind::FrameLength => "frame_length",
        }
    }
}

impl fmt::Display for WireErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl WireError {
    /// This error's payload-free [`WireErrorKind`].
    pub fn kind(&self) -> WireErrorKind {
        match self {
            WireError::Io(_) => WireErrorKind::Io,
            WireError::BadMagic(_) => WireErrorKind::BadMagic,
            WireError::UnsupportedVersion(_) => WireErrorKind::UnsupportedVersion,
            WireError::LayoutHashMismatch { .. } => WireErrorKind::LayoutHashMismatch,
            WireError::CounterCountMismatch { .. } => WireErrorKind::CounterCountMismatch,
            WireError::Truncated(_) => WireErrorKind::Truncated,
            WireError::BadLabel(_) => WireErrorKind::BadLabel,
            WireError::VarintOverflow => WireErrorKind::VarintOverflow,
            WireError::FrameTooLarge { .. } => WireErrorKind::FrameTooLarge,
            WireError::FrameLength { .. } => WireErrorKind::FrameLength,
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad stream magic {m:?} (expected \"CBIR\")"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported wire version {v} (this build speaks {VERSION})")
            }
            WireError::LayoutHashMismatch { expected, got } => write!(
                f,
                "layout hash mismatch: expected {expected:#018x}, stream has {got:#018x} \
                 (reports come from a different instrumented binary)"
            ),
            WireError::CounterCountMismatch { expected, got } => write!(
                f,
                "counter count mismatch: expected {expected} counters per report, stream declares {got}"
            ),
            WireError::Truncated(what) => write!(f, "truncated stream while reading {what}"),
            WireError::BadLabel(b) => write!(f, "bad label byte {b:#04x} (expected 0 or 1)"),
            WireError::VarintOverflow => f.write_str("varint exceeds 64 bits"),
            WireError::FrameTooLarge { declared, max } => write!(
                f,
                "frame declares {declared} payload bytes but the layout admits at most {max}"
            ),
            WireError::FrameLength { declared, used } => write!(
                f,
                "frame declared {declared} payload bytes but decoding consumed {used}"
            ),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Appends `v` to `buf` as an LEB128 varint.
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Decodes one varint from a slice cursor.
pub(crate) fn take_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in (0..).step_by(7) {
        if shift >= 64 {
            return Err(WireError::VarintOverflow);
        }
        let byte = *buf
            .get(*pos)
            .ok_or(WireError::Truncated("frame payload varint"))?;
        *pos += 1;
        let bits = (byte & 0x7f) as u64;
        if shift == 63 && bits > 1 {
            return Err(WireError::VarintOverflow);
        }
        v |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    unreachable!("loop returns or errors")
}

pub(crate) fn read_u8<R: Read>(r: &mut R, what: &'static str) -> Result<u8, WireError> {
    let mut b = [0u8; 1];
    match r.read_exact(&mut b) {
        Ok(()) => Ok(b[0]),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(WireError::Truncated(what)),
        Err(e) => Err(WireError::Io(e)),
    }
}

/// Maximum payload bytes a report with `counters` counters can occupy:
/// run_id (≤10) + label (1) + 10 per counter.
fn max_payload(counters: usize) -> usize {
    11 + 10 * counters
}

/// Streaming encoder: writes the stream header up front, then one frame
/// per report.
#[derive(Debug)]
pub struct WireWriter<W: Write> {
    w: W,
    counters: usize,
    buf: Vec<u8>,
    reports: u64,
    bytes: u64,
}

impl<W: Write> WireWriter<W> {
    /// Opens a stream on `w`, writing the header for the given layout.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] if the header cannot be written.
    pub fn new(mut w: W, layout_hash: u64, counters: usize) -> Result<Self, WireError> {
        let mut head = Vec::with_capacity(4 + 1 + 8 + 10);
        head.extend_from_slice(&MAGIC);
        head.push(VERSION);
        head.extend_from_slice(&layout_hash.to_le_bytes());
        push_varint(&mut head, counters as u64);
        w.write_all(&head)?;
        let bytes = head.len() as u64;
        Ok(WireWriter {
            w,
            counters,
            buf: Vec::with_capacity(64),
            reports: 0,
            bytes,
        })
    }

    /// Encodes one report as a frame.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::CounterCountMismatch`] if the report does not
    /// match the stream layout, or [`WireError::Io`] on write failure.
    pub fn write_report(&mut self, report: &Report) -> Result<(), WireError> {
        if report.counters.len() != self.counters {
            return Err(WireError::CounterCountMismatch {
                expected: self.counters,
                got: report.counters.len(),
            });
        }
        self.buf.clear();
        push_varint(&mut self.buf, report.run_id);
        self.buf.push(match report.label {
            Label::Success => 0,
            Label::Failure => 1,
        });
        for &c in &report.counters {
            push_varint(&mut self.buf, c);
        }
        let mut len = Vec::with_capacity(5);
        push_varint(&mut len, self.buf.len() as u64);
        self.w.write_all(&len)?;
        self.w.write_all(&self.buf)?;
        self.reports += 1;
        self.bytes += (len.len() + self.buf.len()) as u64;
        cbi_telemetry::count("wire.frames_out", 1);
        cbi_telemetry::count("wire.bytes_out", (len.len() + self.buf.len()) as u64);
        Ok(())
    }

    /// Flushes the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] on flush failure.
    pub fn flush(&mut self) -> Result<(), WireError> {
        self.w.flush()?;
        Ok(())
    }

    /// Reports written so far.
    pub fn reports_written(&self) -> u64 {
        self.reports
    }

    /// Total bytes written, header included.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Io`] on flush failure.
    pub fn into_inner(mut self) -> Result<W, WireError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streaming decoder: validates the header on construction, then yields
/// one report per frame.
#[derive(Debug)]
pub struct WireReader<R: Read> {
    r: R,
    header: StreamHeader,
    buf: Vec<u8>,
    reports: u64,
    bytes: u64,
}

impl<R: Read> WireReader<R> {
    /// Opens a stream, reading and validating the magic, version, and
    /// layout header.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::BadMagic`], [`WireError::UnsupportedVersion`],
    /// [`WireError::Truncated`], or [`WireError::Io`].
    pub fn new(mut r: R) -> Result<Self, WireError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated("stream magic")
            } else {
                WireError::Io(e)
            }
        })?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = read_u8(&mut r, "version byte")?;
        if version != VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let mut hash = [0u8; 8];
        r.read_exact(&mut hash).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated("layout hash")
            } else {
                WireError::Io(e)
            }
        })?;
        // Decode the counter-count varint byte by byte so the consumed
        // length is counted exactly.
        let mut counters: u64 = 0;
        let mut count_bytes: u64 = 0;
        for shift in (0..).step_by(7) {
            if shift >= 64 {
                return Err(WireError::VarintOverflow);
            }
            let byte = read_u8(&mut r, "counter count")?;
            count_bytes += 1;
            counters |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                break;
            }
        }
        let counters = counters as usize;
        let bytes = 4 + 1 + 8 + count_bytes;
        Ok(WireReader {
            r,
            header: StreamHeader {
                version,
                layout_hash: u64::from_le_bytes(hash),
                counters,
            },
            buf: Vec::with_capacity(64),
            reports: 0,
            bytes,
        })
    }

    /// The stream's header.
    pub fn header(&self) -> StreamHeader {
        self.header
    }

    /// Validates the stream against an expected layout.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LayoutHashMismatch`] or
    /// [`WireError::CounterCountMismatch`].
    pub fn expect_layout(&self, layout_hash: u64, counters: usize) -> Result<(), WireError> {
        if self.header.layout_hash != layout_hash {
            return Err(WireError::LayoutHashMismatch {
                expected: layout_hash,
                got: self.header.layout_hash,
            });
        }
        if self.header.counters != counters {
            return Err(WireError::CounterCountMismatch {
                expected: counters,
                got: self.header.counters,
            });
        }
        Ok(())
    }

    /// Reads the next frame, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation mid-frame, oversized frames,
    /// bad labels, or I/O failure.
    pub fn read_report(&mut self) -> Result<Option<Report>, WireError> {
        // A clean stream ends exactly on a frame boundary: EOF while
        // reading the first length byte means "done", EOF anywhere else
        // is truncation.
        let mut first = [0u8; 1];
        loop {
            match self.r.read(&mut first) {
                Ok(0) => return Ok(None),
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        let mut len_bytes: u64 = 1;
        let len = if first[0] & 0x80 == 0 {
            first[0] as u64
        } else {
            let mut v = (first[0] & 0x7f) as u64;
            let mut shift = 7;
            loop {
                if shift >= 64 {
                    return Err(WireError::VarintOverflow);
                }
                let byte = read_u8(&mut self.r, "frame length")?;
                len_bytes += 1;
                v |= ((byte & 0x7f) as u64) << shift;
                if byte & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            v
        } as usize;
        let max = max_payload(self.header.counters);
        if len > max {
            return Err(WireError::FrameTooLarge { declared: len, max });
        }
        self.buf.resize(len, 0);
        self.r.read_exact(&mut self.buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated("frame payload")
            } else {
                WireError::Io(e)
            }
        })?;

        let mut pos = 0;
        let run_id = take_varint(&self.buf, &mut pos)?;
        let label = match self.buf.get(pos) {
            Some(0) => Label::Success,
            Some(1) => Label::Failure,
            Some(&b) => return Err(WireError::BadLabel(b)),
            None => return Err(WireError::Truncated("label byte")),
        };
        pos += 1;
        let mut counters = Vec::with_capacity(self.header.counters);
        for _ in 0..self.header.counters {
            counters.push(take_varint(&self.buf, &mut pos)?);
        }
        if pos != len {
            return Err(WireError::FrameLength {
                declared: len,
                used: pos,
            });
        }
        self.reports += 1;
        self.bytes += len_bytes + len as u64;
        cbi_telemetry::count("wire.frames_in", 1);
        cbi_telemetry::count("wire.bytes_in", len_bytes + len as u64);
        Ok(Some(Report::new(run_id, label, counters)))
    }

    /// Reports decoded so far.
    pub fn reports_read(&self) -> u64 {
        self.reports
    }

    /// Exact bytes consumed (header plus frames).
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }
}

/// Encodes a batch of reports to an in-memory stream.
///
/// # Errors
///
/// Returns [`WireError`] if any report disagrees with `counters`.
pub fn encode_reports(
    reports: &[Report],
    layout_hash: u64,
    counters: usize,
) -> Result<Vec<u8>, WireError> {
    let mut w = WireWriter::new(Vec::new(), layout_hash, counters)?;
    for r in reports {
        w.write_report(r)?;
    }
    w.into_inner()
}

/// Reads a whole wire stream into a collector, returning the stream
/// header alongside it.
///
/// # Errors
///
/// Returns [`WireError`] on any malformed header or frame.
pub fn read_collector<R: Read>(r: R) -> Result<(Collector, StreamHeader), WireError> {
    let mut reader = WireReader::new(r)?;
    let header = reader.header();
    let mut collector = Collector::new(header.counters);
    while let Some(report) = reader.read_report()? {
        collector
            .add(report)
            .expect("frames validated against the stream layout");
    }
    Ok((collector, header))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Report> {
        vec![
            Report::new(0, Label::Success, vec![0, 3, 0, 127, 128]),
            Report::new(1, Label::Failure, vec![1, 0, 0, 0, u64::MAX]),
            Report::new(7, Label::Success, vec![0, 0, 0, 0, 0]),
        ]
    }

    #[test]
    fn round_trip() {
        let bytes = encode_reports(&sample(), 0xdead_beef, 5).unwrap();
        let mut r = WireReader::new(bytes.as_slice()).unwrap();
        assert_eq!(r.header().layout_hash, 0xdead_beef);
        assert_eq!(r.header().counters, 5);
        assert_eq!(r.header().version, VERSION);
        let mut back = Vec::new();
        while let Some(report) = r.read_report().unwrap() {
            back.push(report);
        }
        assert_eq!(back, sample());
        assert_eq!(r.reports_read(), 3);
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(take_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_reports(&sample(), 1, 5).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            WireReader::new(bytes.as_slice()).unwrap_err(),
            WireError::BadMagic(_)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode_reports(&sample(), 1, 5).unwrap();
        bytes[4] = 99;
        let err = WireReader::new(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, WireError::UnsupportedVersion(99)));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn layout_expectations_enforced() {
        let bytes = encode_reports(&sample(), 42, 5).unwrap();
        let r = WireReader::new(bytes.as_slice()).unwrap();
        r.expect_layout(42, 5).unwrap();
        assert!(matches!(
            r.expect_layout(43, 5).unwrap_err(),
            WireError::LayoutHashMismatch {
                expected: 43,
                got: 42
            }
        ));
        assert!(matches!(
            r.expect_layout(42, 6).unwrap_err(),
            WireError::CounterCountMismatch {
                expected: 6,
                got: 5
            }
        ));
    }

    #[test]
    fn writer_rejects_wrong_width() {
        let mut w = WireWriter::new(Vec::new(), 0, 3).unwrap();
        let err = w
            .write_report(&Report::new(0, Label::Success, vec![1]))
            .unwrap_err();
        assert!(matches!(err, WireError::CounterCountMismatch { .. }));
    }

    #[test]
    fn truncation_mid_frame_detected() {
        let bytes = encode_reports(&sample(), 9, 5).unwrap();
        // Cut one byte off the end: the final frame is truncated.
        let cut = &bytes[..bytes.len() - 1];
        let mut r = WireReader::new(cut).unwrap();
        let mut saw_truncation = false;
        loop {
            match r.read_report() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(WireError::Truncated(_)) => {
                    saw_truncation = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert!(saw_truncation);
    }

    #[test]
    fn read_collector_round_trips() {
        let bytes = encode_reports(&sample(), 5, 5).unwrap();
        let (c, header) = read_collector(bytes.as_slice()).unwrap();
        assert_eq!(c.reports(), &sample()[..]);
        assert_eq!(header.layout_hash, 5);
        assert_eq!(c.failure_count(), 1);
    }

    #[test]
    fn binary_is_smaller_than_jsonl() {
        let reports = sample();
        let bytes = encode_reports(&reports, 0, 5).unwrap();
        let jsonl: usize = reports.iter().map(|r| r.to_json().unwrap().len() + 1).sum();
        assert!(
            bytes.len() < jsonl,
            "wire {} bytes >= jsonl {} bytes",
            bytes.len(),
            jsonl
        );
    }
}
