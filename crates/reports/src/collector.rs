//! The central report collector.
//!
//! Models the "central database" of §1: clients transmit counter-vector
//! reports; analyses query them by outcome class.  All reports in one
//! collector must share a counter layout (the same instrumented binary).

use crate::report::{Label, Report, ReportParseError};
use crate::sink::{ReportLayout, ReportSink, SinkError};
use crate::suffstats::SufficientStats;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error from collector ingestion.
#[derive(Debug)]
pub enum CollectError {
    /// A report's counter vector length did not match the collector's.
    LayoutMismatch {
        /// Expected counter count.
        expected: usize,
        /// Received counter count.
        got: usize,
    },
    /// An I/O error while reading or writing the report stream.
    Io(std::io::Error),
    /// A malformed report line.
    Parse(ReportParseError),
    /// An ordered merge would break the run-id ordering invariant.
    OutOfOrder {
        /// Last run id already in the collector.
        prev: u64,
        /// Offending run id from the incoming reports.
        next: u64,
    },
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::LayoutMismatch { expected, got } => write!(
                f,
                "report layout mismatch: expected {expected} counters, got {got}"
            ),
            CollectError::Io(e) => write!(f, "report stream i/o error: {e}"),
            CollectError::Parse(e) => write!(f, "malformed report: {e}"),
            CollectError::OutOfOrder { prev, next } => write!(
                f,
                "ordered merge out of order: run {next} arrived after run {prev}"
            ),
        }
    }
}

impl Error for CollectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CollectError::Io(e) => Some(e),
            CollectError::Parse(e) => Some(e),
            CollectError::LayoutMismatch { .. } | CollectError::OutOfOrder { .. } => None,
        }
    }
}

impl From<std::io::Error> for CollectError {
    fn from(e: std::io::Error) -> Self {
        CollectError::Io(e)
    }
}

impl From<ReportParseError> for CollectError {
    fn from(e: ReportParseError) -> Self {
        CollectError::Parse(e)
    }
}

/// The central database of reports for one instrumented program.
///
/// Alongside the raw reports, the collector folds every arrival into an
/// incrementally-updated [`SufficientStats`] accumulator, so analyses
/// that only need per-counter aggregates (§3.2, §5) never rescan the
/// report archive.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    counters: usize,
    reports: Vec<Report>,
    successes: usize,
    failures: usize,
    stats: SufficientStats,
}

impl Collector {
    /// Creates a collector for reports with `counters` counters each.
    pub fn new(counters: usize) -> Self {
        Collector {
            counters,
            reports: Vec::new(),
            successes: 0,
            failures: 0,
            stats: SufficientStats::new(counters),
        }
    }

    /// Ingests one report.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::LayoutMismatch`] if the report's counter
    /// vector has the wrong length.
    pub fn add(&mut self, report: Report) -> Result<(), CollectError> {
        if report.counters.len() != self.counters {
            return Err(CollectError::LayoutMismatch {
                expected: self.counters,
                got: report.counters.len(),
            });
        }
        match report.label {
            Label::Success => self.successes += 1,
            Label::Failure => self.failures += 1,
        }
        self.stats.update(&report);
        self.reports.push(report);
        Ok(())
    }

    /// The incrementally-maintained per-counter aggregates over every
    /// report ingested so far.
    pub fn stats(&self) -> &SufficientStats {
        &self.stats
    }

    /// Number of counters per report.
    pub fn counter_count(&self) -> usize {
        self.counters
    }

    /// Total reports collected.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether no reports have been collected.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Number of successful runs.
    pub fn success_count(&self) -> usize {
        self.successes
    }

    /// Number of failed runs.
    pub fn failure_count(&self) -> usize {
        self.failures
    }

    /// All reports, in arrival order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Iterates over reports with a given label.
    pub fn with_label(&self, label: Label) -> impl Iterator<Item = &Report> {
        self.reports.iter().filter(move |r| r.label == label)
    }

    /// Appends reports while enforcing that run ids stay strictly
    /// increasing, so a collector assembled from ordered shards is
    /// bit-identical to one filled serially.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::LayoutMismatch`] on a counter-length
    /// mismatch or [`CollectError::OutOfOrder`] if a run id does not
    /// strictly exceed its predecessor.  Reports before the offending one
    /// remain ingested.
    pub fn extend_ordered<I: IntoIterator<Item = Report>>(
        &mut self,
        reports: I,
    ) -> Result<(), CollectError> {
        for report in reports {
            if let Some(last) = self.reports.last() {
                if report.run_id <= last.run_id {
                    return Err(CollectError::OutOfOrder {
                        prev: last.run_id,
                        next: report.run_id,
                    });
                }
            }
            self.add(report)?;
        }
        Ok(())
    }

    /// Merges another collector's reports onto the end of this one,
    /// preserving run-id order.  The shard-merge primitive of the parallel
    /// campaign engine: workers fill private collectors, then the driver
    /// merges them back in shard order.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::LayoutMismatch`] if the collectors disagree
    /// on counter layout, or [`CollectError::OutOfOrder`] if the incoming
    /// run ids do not continue this collector's sequence.
    pub fn merge(&mut self, other: Collector) -> Result<(), CollectError> {
        let _span = cbi_telemetry::span("collector.merge");
        cbi_telemetry::count("collector.merged_reports", other.reports.len() as u64);
        if other.counters != self.counters {
            return Err(CollectError::LayoutMismatch {
                expected: self.counters,
                got: other.counters,
            });
        }
        self.reports.reserve(other.reports.len());
        self.extend_ordered(other.reports)
    }

    /// Writes all reports as JSON lines.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] on I/O or serialization failure.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> Result<(), CollectError> {
        for r in &self.reports {
            writeln!(w, "{}", r.to_json()?)?;
        }
        Ok(())
    }

    /// Reads reports from a JSON-lines stream into a new collector whose
    /// layout is taken from the first report.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] on I/O failure, malformed lines, or
    /// layout mismatches between lines.
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Self, CollectError> {
        let mut collector: Option<Collector> = None;
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let report = Report::from_json(&line)?;
            let c = collector.get_or_insert_with(|| Collector::new(report.counters.len()));
            c.add(report)?;
        }
        Ok(collector.unwrap_or_default())
    }
}

impl ReportSink for Collector {
    /// An empty collector adopts the announced layout; a non-empty one
    /// requires it to match.
    fn begin(&mut self, layout: ReportLayout) -> Result<(), SinkError> {
        if self.is_empty() {
            self.counters = layout.counters;
            self.stats = SufficientStats::new(layout.counters);
            Ok(())
        } else if self.counters == layout.counters {
            Ok(())
        } else {
            Err(SinkError::Collect(CollectError::LayoutMismatch {
                expected: self.counters,
                got: layout.counters,
            }))
        }
    }

    fn accept(&mut self, report: Report) -> Result<(), SinkError> {
        self.add(report).map_err(SinkError::Collect)
    }
}

impl Extend<Report> for Collector {
    /// Extends the collector, panicking on layout mismatches.
    ///
    /// Use [`Collector::add`] when mismatches must be handled gracefully.
    fn extend<T: IntoIterator<Item = Report>>(&mut self, iter: T) {
        for r in iter {
            self.add(r).expect("report layout mismatch in extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Collector {
        let mut c = Collector::new(3);
        c.add(Report::new(0, Label::Success, vec![1, 0, 2]))
            .unwrap();
        c.add(Report::new(1, Label::Failure, vec![0, 5, 0]))
            .unwrap();
        c.add(Report::new(2, Label::Success, vec![0, 0, 0]))
            .unwrap();
        c
    }

    #[test]
    fn incremental_stats_match_rescan() {
        let c = sample();
        let rescan: SufficientStats = c.reports().iter().cloned().collect();
        assert_eq!(c.stats(), &rescan);
        assert_eq!(c.stats().success_runs(), 2);
        assert_eq!(c.stats().failure_runs(), 1);
    }

    #[test]
    fn sink_begin_adopts_layout_when_empty() {
        let mut c = Collector::default();
        c.begin(ReportLayout {
            counters: 2,
            layout_hash: 0,
        })
        .unwrap();
        c.accept(Report::new(0, Label::Success, vec![1, 0]))
            .unwrap();
        assert_eq!(c.counter_count(), 2);
        assert_eq!(c.stats().counter_count(), 2);
        // Non-empty: a different layout is rejected.
        let err = c
            .begin(ReportLayout {
                counters: 3,
                layout_hash: 0,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SinkError::Collect(CollectError::LayoutMismatch { .. })
        ));
        // The matching layout is fine (stream continuation).
        c.begin(ReportLayout {
            counters: 2,
            layout_hash: 9,
        })
        .unwrap();
    }

    #[test]
    fn counts_by_label() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.success_count(), 2);
        assert_eq!(c.failure_count(), 1);
        assert_eq!(c.with_label(Label::Failure).count(), 1);
        assert_eq!(c.counter_count(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn layout_mismatch_rejected() {
        let mut c = Collector::new(3);
        let err = c.add(Report::new(0, Label::Success, vec![1])).unwrap_err();
        assert!(matches!(
            err,
            CollectError::LayoutMismatch {
                expected: 3,
                got: 1
            }
        ));
        assert!(err.to_string().contains("expected 3"));
    }

    #[test]
    fn jsonl_round_trip() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_jsonl(&mut buf).unwrap();
        let back = Collector::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.reports(), c.reports());
        assert_eq!(back.counter_count(), 3);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_rejects_garbage() {
        let ok = "\n";
        assert!(Collector::read_jsonl(ok.as_bytes()).unwrap().is_empty());
        let bad = "{broken}";
        assert!(Collector::read_jsonl(bad.as_bytes()).is_err());
    }

    #[test]
    fn extend_accepts_matching_reports() {
        let mut c = Collector::new(2);
        c.extend(vec![
            Report::new(0, Label::Success, vec![1, 1]),
            Report::new(1, Label::Failure, vec![0, 1]),
        ]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn extend_panics_on_mismatch() {
        let mut c = Collector::new(2);
        c.extend(vec![Report::new(0, Label::Success, vec![1])]);
    }

    #[test]
    fn merge_preserves_serial_order_and_counts() {
        let mut serial = Collector::new(2);
        let reports: Vec<Report> = (0..6)
            .map(|i| {
                let label = if i % 2 == 0 {
                    Label::Success
                } else {
                    Label::Failure
                };
                Report::new(i, label, vec![i, i + 1])
            })
            .collect();
        for r in &reports {
            serial.add(r.clone()).unwrap();
        }

        let mut shard_a = Collector::new(2);
        let mut shard_b = Collector::new(2);
        shard_a.extend_ordered(reports[..3].to_vec()).unwrap();
        shard_b.extend_ordered(reports[3..].to_vec()).unwrap();

        let mut merged = Collector::new(2);
        merged.merge(shard_a).unwrap();
        merged.merge(shard_b).unwrap();

        assert_eq!(merged.reports(), serial.reports());
        assert_eq!(merged.success_count(), serial.success_count());
        assert_eq!(merged.failure_count(), serial.failure_count());
    }

    #[test]
    fn merge_rejects_out_of_order_and_mismatched_shards() {
        let mut c = Collector::new(1);
        c.add(Report::new(5, Label::Success, vec![0])).unwrap();

        let mut stale = Collector::new(1);
        stale.add(Report::new(3, Label::Success, vec![0])).unwrap();
        let err = c.merge(stale).unwrap_err();
        assert!(matches!(err, CollectError::OutOfOrder { prev: 5, next: 3 }));
        assert!(err.to_string().contains("out of order"));

        let wrong_layout = Collector::new(2);
        assert!(matches!(
            c.merge(wrong_layout).unwrap_err(),
            CollectError::LayoutMismatch {
                expected: 1,
                got: 2
            }
        ));
        assert_eq!(c.len(), 1, "failed merges must not corrupt the collector");
    }
}
