//! The central report collector.
//!
//! Models the "central database" of §1: clients transmit counter-vector
//! reports; analyses query them by outcome class.  All reports in one
//! collector must share a counter layout (the same instrumented binary).

use crate::report::{Label, Report};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// Error from collector ingestion.
#[derive(Debug)]
pub enum CollectError {
    /// A report's counter vector length did not match the collector's.
    LayoutMismatch {
        /// Expected counter count.
        expected: usize,
        /// Received counter count.
        got: usize,
    },
    /// An I/O error while reading or writing the report stream.
    Io(std::io::Error),
    /// A malformed report line.
    Parse(serde_json::Error),
}

impl fmt::Display for CollectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectError::LayoutMismatch { expected, got } => write!(
                f,
                "report layout mismatch: expected {expected} counters, got {got}"
            ),
            CollectError::Io(e) => write!(f, "report stream i/o error: {e}"),
            CollectError::Parse(e) => write!(f, "malformed report: {e}"),
        }
    }
}

impl Error for CollectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CollectError::Io(e) => Some(e),
            CollectError::Parse(e) => Some(e),
            CollectError::LayoutMismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for CollectError {
    fn from(e: std::io::Error) -> Self {
        CollectError::Io(e)
    }
}

impl From<serde_json::Error> for CollectError {
    fn from(e: serde_json::Error) -> Self {
        CollectError::Parse(e)
    }
}

/// The central database of reports for one instrumented program.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    counters: usize,
    reports: Vec<Report>,
    successes: usize,
    failures: usize,
}

impl Collector {
    /// Creates a collector for reports with `counters` counters each.
    pub fn new(counters: usize) -> Self {
        Collector {
            counters,
            reports: Vec::new(),
            successes: 0,
            failures: 0,
        }
    }

    /// Ingests one report.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError::LayoutMismatch`] if the report's counter
    /// vector has the wrong length.
    pub fn add(&mut self, report: Report) -> Result<(), CollectError> {
        if report.counters.len() != self.counters {
            return Err(CollectError::LayoutMismatch {
                expected: self.counters,
                got: report.counters.len(),
            });
        }
        match report.label {
            Label::Success => self.successes += 1,
            Label::Failure => self.failures += 1,
        }
        self.reports.push(report);
        Ok(())
    }

    /// Number of counters per report.
    pub fn counter_count(&self) -> usize {
        self.counters
    }

    /// Total reports collected.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether no reports have been collected.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Number of successful runs.
    pub fn success_count(&self) -> usize {
        self.successes
    }

    /// Number of failed runs.
    pub fn failure_count(&self) -> usize {
        self.failures
    }

    /// All reports, in arrival order.
    pub fn reports(&self) -> &[Report] {
        &self.reports
    }

    /// Iterates over reports with a given label.
    pub fn with_label(&self, label: Label) -> impl Iterator<Item = &Report> {
        self.reports.iter().filter(move |r| r.label == label)
    }

    /// Writes all reports as JSON lines.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] on I/O or serialization failure.
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> Result<(), CollectError> {
        for r in &self.reports {
            writeln!(w, "{}", r.to_json()?)?;
        }
        Ok(())
    }

    /// Reads reports from a JSON-lines stream into a new collector whose
    /// layout is taken from the first report.
    ///
    /// # Errors
    ///
    /// Returns [`CollectError`] on I/O failure, malformed lines, or
    /// layout mismatches between lines.
    pub fn read_jsonl<R: BufRead>(r: R) -> Result<Self, CollectError> {
        let mut collector: Option<Collector> = None;
        for line in r.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let report = Report::from_json(&line)?;
            let c = collector.get_or_insert_with(|| Collector::new(report.counters.len()));
            c.add(report)?;
        }
        Ok(collector.unwrap_or_default())
    }
}

impl Extend<Report> for Collector {
    /// Extends the collector, panicking on layout mismatches.
    ///
    /// Use [`Collector::add`] when mismatches must be handled gracefully.
    fn extend<T: IntoIterator<Item = Report>>(&mut self, iter: T) {
        for r in iter {
            self.add(r).expect("report layout mismatch in extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Collector {
        let mut c = Collector::new(3);
        c.add(Report::new(0, Label::Success, vec![1, 0, 2])).unwrap();
        c.add(Report::new(1, Label::Failure, vec![0, 5, 0])).unwrap();
        c.add(Report::new(2, Label::Success, vec![0, 0, 0])).unwrap();
        c
    }

    #[test]
    fn counts_by_label() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert_eq!(c.success_count(), 2);
        assert_eq!(c.failure_count(), 1);
        assert_eq!(c.with_label(Label::Failure).count(), 1);
        assert_eq!(c.counter_count(), 3);
        assert!(!c.is_empty());
    }

    #[test]
    fn layout_mismatch_rejected() {
        let mut c = Collector::new(3);
        let err = c.add(Report::new(0, Label::Success, vec![1])).unwrap_err();
        assert!(matches!(
            err,
            CollectError::LayoutMismatch { expected: 3, got: 1 }
        ));
        assert!(err.to_string().contains("expected 3"));
    }

    #[test]
    fn jsonl_round_trip() {
        let c = sample();
        let mut buf = Vec::new();
        c.write_jsonl(&mut buf).unwrap();
        let back = Collector::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.reports(), c.reports());
        assert_eq!(back.counter_count(), 3);
    }

    #[test]
    fn jsonl_skips_blank_lines_and_rejects_garbage() {
        let ok = "\n";
        assert!(Collector::read_jsonl(ok.as_bytes()).unwrap().is_empty());
        let bad = "{broken}";
        assert!(Collector::read_jsonl(bad.as_bytes()).is_err());
    }

    #[test]
    fn extend_accepts_matching_reports() {
        let mut c = Collector::new(2);
        c.extend(vec![
            Report::new(0, Label::Success, vec![1, 1]),
            Report::new(1, Label::Failure, vec![0, 1]),
        ]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn extend_panics_on_mismatch() {
        let mut c = Collector::new(2);
        c.extend(vec![Report::new(0, Label::Success, vec![1])]);
    }
}
