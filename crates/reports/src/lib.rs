//! Feedback reports and the central collection infrastructure (§2.5, §5).
//!
//! Instrumented clients emit one [`Report`] per run: a counter vector (one
//! counter per predicate, ordering information discarded) plus a binary
//! success/failure [`Label`].  A [`Collector`] models the central database;
//! [`SufficientStats`] models the privacy-preserving alternative that folds
//! each report into per-counter aggregates and discards the raw trace.
//!
//! Collection policy is abstracted behind [`ReportSink`]: the campaign
//! driver emits into any sink — the in-memory [`Collector`], the
//! spool-to-disk [`SpoolSink`], or the framed-socket [`TransmitSink`] —
//! and the [`wire`] module defines the versioned, layout-hashed binary
//! format those streams use on disk and on the network.
//!
//! # Example
//!
//! ```
//! use cbi_reports::{Collector, Label, Report, SufficientStats};
//!
//! let mut db = Collector::new(2);
//! db.add(Report::new(0, Label::Success, vec![3, 0]))?;
//! db.add(Report::new(1, Label::Failure, vec![0, 1]))?;
//! assert_eq!(db.failure_count(), 1);
//!
//! let stats: SufficientStats = db.reports().iter().cloned().collect();
//! assert_eq!(stats.nonzero_failures(1), 1);
//! # Ok::<(), cbi_reports::CollectError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod frame;
pub mod ingest;
pub mod report;
pub mod sink;
pub mod suffstats;
pub mod wire;

pub use collector::{CollectError, Collector};
pub use frame::{AckVerdict, BatchAck, BatchEnvelope, EnvelopeRead};
pub use ingest::{decode_batch, BatchIngest, BatchRejected, BatchStats, DecodeOutcome, Provenance};
pub use report::{Label, Report, ReportParseError};
pub use sink::{ReportLayout, ReportSink, SinkError, SpoolSink, TransmitSink, WireSink};
pub use suffstats::SufficientStats;
pub use wire::{StreamHeader, WireError, WireErrorKind, WireReader, WireWriter};
