//! Property tests for transactional batch ingest under channel faults:
//! seeded truncations and bit-flips must always yield a typed
//! [`WireError`] (never a panic), a rejected batch must commit nothing,
//! and the ingest loop must keep accepting clean batches afterwards.
//!
//! Driven by the in-tree PCG generator, so every failing case is
//! reproducible from its seed.

use cbi_reports::wire::{self, WireError};
use cbi_reports::{decode_batch, BatchIngest, Collector, Label, Report, ReportLayout};
use cbi_sampler::Pcg32;

const LAYOUT_HASH: u64 = 0x51e5_7ab1_e000_cb01;

fn random_reports(seed: u64, n: usize, counters: usize) -> Vec<Report> {
    let mut rng = Pcg32::new(seed);
    let mut run_id = 0u64;
    (0..n)
        .map(|_| {
            run_id += 1 + rng.below(9);
            let label = if rng.next_f64() < 0.3 {
                Label::Failure
            } else {
                Label::Success
            };
            let values: Vec<u64> = (0..counters)
                .map(|_| match rng.below(10) {
                    0..=5 => 0,
                    6 | 7 => rng.below(16),
                    8 => rng.below(1 << 20),
                    _ => u64::MAX - rng.below(1 << 30),
                })
                .collect();
            Report::new(run_id, label, values)
        })
        .collect()
}

fn batch(seed: u64, n: usize, counters: usize) -> Vec<u8> {
    let reports = random_reports(seed, n, counters);
    wire::encode_reports(&reports, LAYOUT_HASH, counters).unwrap()
}

fn layout(counters: usize) -> ReportLayout {
    ReportLayout {
        counters,
        layout_hash: LAYOUT_HASH,
    }
}

#[test]
fn truncation_at_every_length_is_typed_and_transactional() {
    for seed in 0..8u64 {
        let counters = 1 + (seed as usize * 5) % 24;
        let bytes = batch(seed, 12, counters);
        for cut in 0..bytes.len() {
            let mut ingest = BatchIngest::new(Collector::default(), Some(layout(counters)));
            match ingest.ingest(&bytes[..cut]) {
                // A cut exactly on a frame boundary is a clean, shorter
                // batch; anything else must reject without committing.
                Ok(stats) => {
                    assert_eq!(stats.bytes, cut as u64, "seed {seed} cut {cut}");
                    assert_eq!(ingest.sink().len(), stats.reports);
                }
                Err(rejected) => {
                    assert!(
                        matches!(rejected.error, WireError::Truncated(_)),
                        "seed {seed} cut {cut}: expected truncation, got {}",
                        rejected.error
                    );
                    assert!(
                        ingest.sink().is_empty(),
                        "seed {seed} cut {cut}: partial prefix committed"
                    );
                }
            }
        }
    }
}

#[test]
fn bit_flips_never_panic_and_never_half_commit() {
    for seed in 0..24u64 {
        let counters = 2 + (seed as usize * 3) % 16;
        let clean = batch(seed, 10, counters);
        let expected_reports = decode_batch(&clean, Some(layout(counters)))
            .unwrap()
            .0
            .len();

        let mut fault = Pcg32::with_stream(seed, 0xf11b);
        for _ in 0..64 {
            let mut corrupt = clean.clone();
            // 1..=3 seeded single-bit flips anywhere in the stream.
            for _ in 0..=fault.below(2) {
                let pos = fault.below(corrupt.len() as u64) as usize;
                corrupt[pos] ^= 1 << fault.below(8);
            }
            let mut ingest = BatchIngest::new(Collector::default(), Some(layout(counters)));
            match ingest.ingest(&corrupt) {
                // Flips confined to counter payloads can still decode;
                // such silently-corrupt data is the channel model's
                // problem, not the codec's. The batch must be whole.
                Ok(stats) => assert_eq!(
                    stats.reports, expected_reports,
                    "seed {seed}: decodable flip changed report count"
                ),
                Err(rejected) => {
                    // The error is typed (we got a WireError, not a
                    // panic) and the sink saw none of the batch.
                    let _ = rejected.error.to_string();
                    assert!(ingest.sink().is_empty(), "seed {seed}: partial commit");
                    assert_eq!(ingest.rejected(), 1);
                }
            }
        }
    }
}

#[test]
fn ingest_loop_survives_interleaved_garbage() {
    let counters = 6;
    let mut ingest = BatchIngest::new(Collector::default(), Some(layout(counters)));
    let mut fault = Pcg32::with_stream(99, 0xbad);
    let mut committed = 0usize;

    for round in 0..40u64 {
        let clean = batch(round, 5, counters);
        // Corrupt every other batch: truncate or flip, seeded.
        let malformed = round % 2 == 1;
        let payload = if !malformed {
            clean.clone()
        } else if fault.below(2) == 0 {
            clean[..fault.below(clean.len() as u64) as usize].to_vec()
        } else {
            let mut c = clean.clone();
            let pos = fault.below(c.len().min(12) as u64) as usize;
            c[pos] ^= 0xff; // smash the header region
            c
        };

        match ingest.ingest(&payload) {
            Ok(stats) => committed += stats.reports,
            Err(rejected) => {
                assert!(malformed, "round {round}: clean batch rejected: {rejected}");
            }
        }
        // Clean batches must land regardless of earlier garbage.
        if !malformed {
            assert_eq!(
                ingest.sink().len(),
                committed,
                "round {round}: loop did not continue after rejection"
            );
        }
    }

    assert_eq!(ingest.accepted() + ingest.rejected(), 40);
    assert!(ingest.accepted() >= 20, "all clean batches accepted");
    assert!(ingest.rejected() > 0, "faults actually exercised");
    assert_eq!(ingest.sink().len(), committed);
    ingest.finish().unwrap();
}

#[test]
fn stale_layout_hash_is_counted_not_crashed() {
    let counters = 4;
    let reports = random_reports(5, 6, counters);
    let stale = wire::encode_reports(&reports, LAYOUT_HASH ^ 0xff, counters).unwrap();
    let mut ingest = BatchIngest::new(Collector::default(), Some(layout(counters)));

    let rejected = ingest.ingest(&stale).unwrap_err();
    assert!(matches!(
        rejected.error,
        WireError::LayoutHashMismatch { .. }
    ));
    assert_eq!(rejected.decoded, 0, "rejected at the header");
    assert_eq!(ingest.layout_rejections(), 1);
    assert!(ingest.sink().is_empty());

    // A current-version client is unaffected.
    ingest.ingest(&batch(5, 6, counters)).unwrap();
    assert_eq!(ingest.sink().len(), 6);
}
