//! Property tests for the binary wire codec: randomized report streams
//! must round-trip exactly, always beat JSONL on size, and every
//! corruption class must surface a typed error.
//!
//! Driven by the in-tree PCG generator, so every failing case is
//! reproducible from its seed.

use cbi_reports::wire::{self, WireError, WireReader, WireWriter};
use cbi_reports::{Collector, Label, Report};
use cbi_sampler::Pcg32;

/// A random report stream with a mix of small, large, and zero counters
/// (zero-heavy vectors are the common case for sampled campaigns).
fn random_reports(seed: u64, n: usize, counters: usize) -> Vec<Report> {
    let mut rng = Pcg32::new(seed);
    let mut run_id = 0u64;
    (0..n)
        .map(|_| {
            run_id += 1 + rng.below(9);
            let label = if rng.next_f64() < 0.3 {
                Label::Failure
            } else {
                Label::Success
            };
            let values: Vec<u64> = (0..counters)
                .map(|_| match rng.below(10) {
                    0..=5 => 0,
                    6 | 7 => rng.below(16),
                    8 => rng.below(1 << 20),
                    // Exercise multi-byte varints up to the full range.
                    _ => u64::MAX - rng.below(1 << 30),
                })
                .collect();
            Report::new(run_id, label, values)
        })
        .collect()
}

#[test]
fn randomized_streams_round_trip_exactly() {
    for seed in 0..24 {
        let counters = 1 + (seed as usize * 7) % 40;
        let reports = random_reports(seed, 50, counters);
        let bytes = wire::encode_reports(&reports, 0x1234_5678_9abc_def0, counters).unwrap();
        let (collector, header) = wire::read_collector(bytes.as_slice()).unwrap();
        assert_eq!(header.layout_hash, 0x1234_5678_9abc_def0, "seed {seed}");
        assert_eq!(header.counters, counters, "seed {seed}");
        assert_eq!(collector.reports(), &reports[..], "seed {seed}");
    }
}

#[test]
fn binary_beats_jsonl_on_randomized_streams() {
    for seed in 0..12 {
        let counters = 5 + (seed as usize * 11) % 60;
        let reports = random_reports(seed + 1000, 80, counters);
        let binary = wire::encode_reports(&reports, 0xfeed, counters).unwrap();

        let mut collector = Collector::new(counters);
        for r in &reports {
            collector.add(r.clone()).unwrap();
        }
        let mut jsonl = Vec::new();
        collector.write_jsonl(&mut jsonl).unwrap();

        assert!(
            binary.len() < jsonl.len(),
            "seed {seed}: binary {} >= jsonl {}",
            binary.len(),
            jsonl.len()
        );
    }
}

#[test]
fn truncation_at_every_boundary_is_detected() {
    let counters = 6;
    let reports = random_reports(7, 8, counters);
    let bytes = wire::encode_reports(&reports, 0xabc, counters).unwrap();

    // Truncating anywhere strictly inside the stream either yields a
    // clean shorter stream (cut exactly between frames) or a typed
    // truncation error — never garbage reports.
    for cut in 1..bytes.len() {
        let slice = &bytes[..cut];
        match WireReader::new(slice) {
            Err(WireError::Truncated(_)) => continue, // header cut short
            Err(e) => panic!("cut {cut}: unexpected header error {e}"),
            Ok(mut reader) => {
                let mut ok = 0usize;
                loop {
                    match reader.read_report() {
                        Ok(Some(r)) => {
                            assert_eq!(r, reports[ok], "cut {cut}: report {ok} corrupted");
                            ok += 1;
                        }
                        Ok(None) => {
                            // Clean EOF: the cut fell exactly on a frame
                            // boundary.
                            break;
                        }
                        Err(WireError::Truncated(_)) => break,
                        Err(e) => panic!("cut {cut}: unexpected error {e}"),
                    }
                }
                assert!(ok <= reports.len());
            }
        }
    }
}

#[test]
fn bad_version_and_layout_are_typed_errors() {
    let counters = 3;
    let reports = random_reports(11, 4, counters);
    let mut bytes = wire::encode_reports(&reports, 0xa1, counters).unwrap();

    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        WireReader::new(bad.as_slice()).unwrap_err(),
        WireError::BadMagic(_)
    ));

    // Unsupported version.
    bytes[4] = wire::VERSION + 9;
    assert!(matches!(
        WireReader::new(bytes.as_slice()).unwrap_err(),
        WireError::UnsupportedVersion(v) if v == wire::VERSION + 9
    ));
    bytes[4] = wire::VERSION;

    // Layout hash mismatch, detected before any frame is decoded.
    let reader = WireReader::new(bytes.as_slice()).unwrap();
    let err = reader.expect_layout(0xdead, counters).unwrap_err();
    assert!(matches!(
        err,
        WireError::LayoutHashMismatch {
            expected: 0xdead,
            got: 0xa1
        }
    ));
    let err = reader.expect_layout(0xa1, counters + 1).unwrap_err();
    assert!(matches!(err, WireError::CounterCountMismatch { .. }));
    reader.expect_layout(0xa1, counters).unwrap();
}

#[test]
fn writer_reader_counters_account_for_every_byte() {
    let counters = 10;
    let reports = random_reports(21, 30, counters);
    let mut buf = Vec::new();
    let mut writer = WireWriter::new(&mut buf, 0x77, counters).unwrap();
    for r in &reports {
        writer.write_report(r).unwrap();
    }
    writer.flush().unwrap();
    assert_eq!(writer.reports_written(), 30);
    let written = writer.bytes_written();

    let mut reader = WireReader::new(buf.as_slice()).unwrap();
    while reader.read_report().unwrap().is_some() {}
    assert_eq!(reader.reports_read(), 30);
    assert_eq!(reader.bytes_read(), written);
    assert_eq!(written, buf.len() as u64, "every byte accounted for");
}
