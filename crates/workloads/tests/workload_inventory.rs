//! Golden-inventory tests: the bundled workloads keep the structural
//! properties the experiments depend on.  If a program edit changes these,
//! the corresponding EXPERIMENTS.md entries must be revisited.

use cbi_instrument::{apply_sampling, instrument, Scheme, TransformOptions};
use cbi_vm::Vm;
use cbi_workloads::{all_benchmarks, bc_program, ccrypt_program};

#[test]
fn ccrypt_exposes_the_decisive_return_sites() {
    let program = ccrypt_program();
    let inst = instrument(&program, Scheme::Returns).unwrap();
    // A realistic pool of call sites (the paper instruments 570)…
    assert!(
        inst.sites.len() >= 15,
        "ccrypt should have a rich site pool, got {}",
        inst.sites.len()
    );
    // …including exactly one xreadline site and one file_exists site.
    let count = |needle: &str| {
        inst.sites
            .iter()
            .filter(|s| s.text.contains(needle))
            .count()
    };
    assert_eq!(count("xreadline()"), 1);
    assert_eq!(count("file_exists()"), 1);
}

#[test]
fn bc_scalar_pair_space_is_large_and_triple_shaped() {
    let program = bc_program();
    let inst = instrument(&program, Scheme::ScalarPairs).unwrap();
    assert!(
        inst.sites.len() > 300,
        "bc needs a large feature space, got {}",
        inst.sites.len()
    );
    assert_eq!(inst.sites.total_counters(), inst.sites.len() * 3);
    // The buggy loop's smoking-gun comparison exists.
    assert!(inst
        .sites
        .iter()
        .any(|s| s.function == "more_arrays" && s.text == "indx\u{1}a_count"));
    // And all five of the paper's top-ranked comparison partners exist.
    for partner in ["scale", "use_math", "opterr", "next_func", "i_base"] {
        assert!(
            inst.sites
                .iter()
                .any(|s| s.function == "more_arrays" && s.text == format!("indx\u{1}{partner}")),
            "missing indx vs {partner}"
        );
    }
}

#[test]
fn benchmarks_have_spread_in_check_density() {
    // Table 2 needs benchmarks across the overhead spectrum: measure
    // unconditional site crossings per 1000 baseline ops and require a
    // real spread.
    let mut densities = Vec::new();
    for b in all_benchmarks() {
        let inst = instrument(&b.program, Scheme::Checks).unwrap();
        let baseline = cbi_instrument::strip_sites(&inst.program);
        let base_ops = Vm::new(&baseline).run().unwrap().ops;
        let crossings: u64 = Vm::new(&inst.program)
            .with_sites(&inst.sites)
            .run()
            .unwrap()
            .counters
            .iter()
            .sum();
        densities.push((b.name, crossings as f64 * 1000.0 / base_ops as f64));
    }
    let max = densities.iter().map(|&(_, d)| d).fold(0.0f64, f64::max);
    let min = densities.iter().map(|&(_, d)| d).fold(f64::MAX, f64::min);
    assert!(
        max > min * 10.0,
        "check-density spread too small: {densities:?}"
    );
}

#[test]
fn every_benchmark_survives_all_four_schemes() {
    for b in all_benchmarks() {
        for scheme in [
            Scheme::Checks,
            Scheme::Returns,
            Scheme::ScalarPairs,
            Scheme::Branches,
        ] {
            let inst = instrument(&b.program, scheme)
                .unwrap_or_else(|e| panic!("{} + {scheme}: {e}", b.name));
            let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default())
                .unwrap_or_else(|e| panic!("{} + {scheme}: {e}", b.name));
            cbi_minic::resolve_relaxed(&sampled)
                .unwrap_or_else(|e| panic!("{} + {scheme}: {e}", b.name));
        }
    }
}

#[test]
fn case_study_crash_rates_are_stable() {
    use cbi_workloads::{bc_trials, ccrypt_trials, BcTrialConfig, CcryptTrialConfig};
    let ccrypt = ccrypt_program();
    let crashes = ccrypt_trials(1000, 42, &CcryptTrialConfig::default())
        .into_iter()
        .filter(|t| {
            Vm::new(&ccrypt)
                .with_input(t.clone())
                .run()
                .unwrap()
                .outcome
                .is_failure()
        })
        .count();
    assert!(
        (20..=80).contains(&crashes),
        "ccrypt crash count drifted: {crashes}/1000"
    );

    let bc = bc_program();
    let crashes = bc_trials(400, 106, &BcTrialConfig::default())
        .into_iter()
        .filter(|t| {
            Vm::new(&bc)
                .with_input(t.clone())
                .run()
                .unwrap()
                .outcome
                .is_failure()
        })
        .count();
    assert!(
        (60..=160).contains(&crashes),
        "bc crash count drifted: {crashes}/400"
    );
}
