//! The benchmark suite: MiniC analogues of the paper's CCured benchmarks.
//!
//! Olden analogues (`bh` … `tsp`) are listed first, then SPECINT95
//! analogues (`compress`, `go`, `ijpeg`, `li`), matching Table 1's order.
//! Each program is a self-contained MiniC source that runs to completion
//! deterministically (the overhead experiments "are simply measuring the
//! overhead of performing the dynamic checks").

use cbi_minic::{parse, resolve, Program};

/// One benchmark: name plus parsed program.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as used in Table 1/2.
    pub name: &'static str,
    /// The parsed, resolved program.
    pub program: Program,
}

macro_rules! benchmark_sources {
    ($(($name:ident, $file:literal)),+ $(,)?) => {
        /// `(name, MiniC source)` for every benchmark, in Table 1 order.
        pub const BENCHMARK_SOURCES: &[(&str, &str)] = &[
            $((stringify!($name), include_str!(concat!("../programs/", $file)))),+
        ];
    };
}

benchmark_sources![
    (bh, "bh.mc"),
    (bisort, "bisort.mc"),
    (em3d, "em3d.mc"),
    (health, "health.mc"),
    (mst, "mst.mc"),
    (perimeter, "perimeter.mc"),
    (power, "power.mc"),
    (treeadd, "treeadd.mc"),
    (tsp, "tsp.mc"),
    (compress, "compress.mc"),
    (go, "go.mc"),
    (ijpeg, "ijpeg.mc"),
    (li, "li.mc"),
];

/// The ccrypt case-study source (§3.2).
pub const CCRYPT_SOURCE: &str = include_str!("../programs/ccrypt.mc");

/// The bc case-study source (§3.3).
pub const BC_SOURCE: &str = include_str!("../programs/bc.mc");

/// Parses and resolves every benchmark.
///
/// # Panics
///
/// Panics if a bundled source fails to parse or resolve — the sources are
/// fixed assets, so this is a build defect, not a runtime condition.
pub fn all_benchmarks() -> Vec<Benchmark> {
    BENCHMARK_SOURCES
        .iter()
        .map(|(name, src)| Benchmark {
            name,
            program: load(name, src),
        })
        .collect()
}

/// Parses and resolves one benchmark by name.
pub fn benchmark(name: &str) -> Option<Benchmark> {
    BENCHMARK_SOURCES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(n, src)| Benchmark {
            name: n,
            program: load(n, src),
        })
}

/// Parses and resolves the ccrypt analogue.
pub fn ccrypt_program() -> Program {
    load("ccrypt", CCRYPT_SOURCE)
}

/// Parses and resolves the bc analogue.
pub fn bc_program() -> Program {
    load("bc", BC_SOURCE)
}

fn load(name: &str, src: &str) -> Program {
    let program =
        parse(src).unwrap_or_else(|e| panic!("bundled program `{name}` fails to parse: {e}"));
    resolve(&program).unwrap_or_else(|e| panic!("bundled program `{name}` fails to resolve: {e}"));
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_vm::{RunOutcome, Vm};

    #[test]
    fn all_thirteen_benchmarks_load() {
        let benches = all_benchmarks();
        assert_eq!(benches.len(), 13);
        let names: Vec<&str> = benches.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "bh",
                "bisort",
                "em3d",
                "health",
                "mst",
                "perimeter",
                "power",
                "treeadd",
                "tsp",
                "compress",
                "go",
                "ijpeg",
                "li"
            ]
        );
    }

    #[test]
    fn every_benchmark_runs_to_completion() {
        for b in all_benchmarks() {
            let r = Vm::new(&b.program)
                .with_op_limit(200_000_000)
                .run()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_eq!(
                r.outcome,
                RunOutcome::Success(0),
                "benchmark {} must run clean: {:?} (output {:?})",
                b.name,
                r.outcome,
                r.output
            );
            assert!(r.ops > 10_000, "{} too trivial: {} ops", b.name, r.ops);
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let b = benchmark("bisort").unwrap();
        let r1 = Vm::new(&b.program).run().unwrap();
        let r2 = Vm::new(&b.program).run().unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn bisort_actually_sorts() {
        let b = benchmark("bisort").unwrap();
        let r = Vm::new(&b.program).run().unwrap();
        assert_eq!(r.output[0], 1, "is_sorted flag");
    }

    #[test]
    fn compress_round_trips() {
        let b = benchmark("compress").unwrap();
        let r = Vm::new(&b.program).run().unwrap();
        assert_eq!(r.output[0], 1, "verify flag");
    }

    #[test]
    fn lookup_misses_return_none() {
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn case_studies_load() {
        let c = ccrypt_program();
        assert!(c.function("xreadline").is_some());
        assert!(c.function("file_exists").is_some());
        let b = bc_program();
        assert!(b.function("more_arrays").is_some());
        assert!(b.function("more_variables").is_some());
    }
}
