//! Workloads: benchmark analogues, buggy case studies, and campaign
//! drivers.
//!
//! The paper evaluates on real C programs we cannot ship; this crate
//! supplies MiniC analogues with the same qualitative traits (see
//! `DESIGN.md` for the substitution table):
//!
//! * [`benchmarks`] — thirteen Olden/SPECINT95 analogues for the overhead
//!   experiments (Tables 1 and 2);
//! * [`ccrypt`] — fuzz-style trial generation for the ccrypt analogue and
//!   its deterministic EOF-at-prompt crash (§3.2);
//! * [`bc`] — trial generation for the bc analogue and its
//!   non-deterministic `more_arrays` overrun (§3.3);
//! * [`campaign`] — instrument, transform, run many trials, collect
//!   reports;
//! * [`overhead`] — baseline / unconditional / sampled op-count ratios.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bc;
pub mod benchmarks;
pub mod campaign;
pub mod ccrypt;
pub mod overhead;

pub use bc::{bc_trial, bc_trials, BcTrialConfig};
pub use benchmarks::{
    all_benchmarks, bc_program, benchmark, ccrypt_program, Benchmark, BC_SOURCE, BENCHMARK_SOURCES,
    CCRYPT_SOURCE,
};
pub use campaign::{run_campaign, run_campaign_into, CampaignConfig, CampaignResult, CampaignRun};
pub use ccrypt::{ccrypt_trial, ccrypt_trials, CcryptTrialConfig};
pub use overhead::{
    measure_overhead, measure_overhead_instrumented, OverheadConfig, OverheadMeasurement,
};

use std::error::Error;
use std::fmt;

/// An error from workload orchestration (instrumentation, transformation,
/// or VM configuration).
#[derive(Debug)]
pub struct WorkloadError {
    message: String,
    source: Option<Box<dyn Error + Send + Sync>>,
}

impl WorkloadError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        WorkloadError {
            message: message.into(),
            source: None,
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "workload error: {}", self.message)
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        self.source.as_deref().map(|e| e as &(dyn Error + 'static))
    }
}

impl From<cbi_instrument::InstrumentError> for WorkloadError {
    fn from(e: cbi_instrument::InstrumentError) -> Self {
        WorkloadError {
            message: e.to_string(),
            source: Some(Box::new(e)),
        }
    }
}

impl From<cbi_vm::VmError> for WorkloadError {
    fn from(e: cbi_vm::VmError) -> Self {
        WorkloadError {
            message: e.to_string(),
            source: Some(Box::new(e)),
        }
    }
}

impl From<cbi_reports::SinkError> for WorkloadError {
    fn from(e: cbi_reports::SinkError) -> Self {
        WorkloadError {
            message: format!("report sink: {e}"),
            source: Some(Box::new(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wraps_sources() {
        let e = WorkloadError::new("boom");
        assert_eq!(e.message(), "boom");
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
