//! Overhead measurement for Table 2 and Figure 4.
//!
//! Each benchmark runs in three builds — baseline (checks stripped),
//! unconditional instrumentation, and sampling-transformed at several
//! densities — and we report the ratio of operation counts relative to the
//! baseline (1.00 = no overhead; the paper's 2.81 for `bh` means a 181%
//! slowdown).  Sampled numbers average four runs with different
//! pre-generated countdown banks, as in §3.1.1.

use crate::WorkloadError;
use cbi_instrument::{
    apply_sampling, instrument, strip_sites, Instrumented, Scheme, TransformOptions,
};
use cbi_minic::Program;
use cbi_sampler::{CountdownBank, SamplingDensity};
use cbi_vm::Vm;

/// Overhead ratios for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadMeasurement {
    /// Benchmark name.
    pub name: String,
    /// Baseline op count (checks removed).
    pub baseline_ops: u64,
    /// Unconditional-instrumentation ratio (the "always" column).
    pub unconditional: f64,
    /// `(density, ratio)` per sampled density, in input order.
    pub sampled: Vec<(SamplingDensity, f64)>,
}

/// Configuration for overhead measurement.
#[derive(Debug, Clone, Copy)]
pub struct OverheadConfig {
    /// Instrumentation scheme (Table 2 uses CCured-style checks).
    pub scheme: Scheme,
    /// Sampling transformation options.
    pub transform: TransformOptions,
    /// Runs (each with a fresh countdown bank) averaged per density.
    pub runs_per_density: u64,
    /// Countdown bank size.
    pub bank_size: usize,
    /// Master seed for banks.
    pub seed: u64,
    /// Per-run operation budget.
    pub op_limit: u64,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        OverheadConfig {
            scheme: Scheme::Checks,
            transform: TransformOptions::default(),
            runs_per_density: 4,
            bank_size: 1024,
            seed: 97,
            op_limit: 2_000_000_000,
        }
    }
}

/// Measures overhead ratios for one program at the given densities, using
/// a fixed input script for every run.
///
/// # Errors
///
/// Returns [`WorkloadError`] if instrumentation or any run fails — the
/// overhead benchmarks must run to completion ("all programs run to
/// completion; we are simply measuring the overhead").
pub fn measure_overhead(
    name: &str,
    program: &Program,
    input: &[i64],
    densities: &[SamplingDensity],
    config: &OverheadConfig,
) -> Result<OverheadMeasurement, WorkloadError> {
    let inst = instrument(program, config.scheme)?;
    measure_overhead_instrumented(name, &inst, input, densities, config)
}

/// Like [`measure_overhead`], but for an already instrumented program —
/// used by the statically-selective experiments that share one site table
/// across many variants.
///
/// # Errors
///
/// Returns [`WorkloadError`] if transformation or any run fails.
pub fn measure_overhead_instrumented(
    name: &str,
    inst: &Instrumented,
    input: &[i64],
    densities: &[SamplingDensity],
    config: &OverheadConfig,
) -> Result<OverheadMeasurement, WorkloadError> {
    let run_ops = |program: &Program, bank: Option<CountdownBank>| -> Result<u64, WorkloadError> {
        let mut vm = Vm::new(program);
        vm.with_sites(&inst.sites)
            .with_input(input.to_vec())
            .with_op_limit(config.op_limit);
        if let Some(bank) = bank {
            vm.with_sampling(Box::new(bank));
        }
        let result = vm.run()?;
        if !result.outcome.is_success() {
            return Err(WorkloadError::new(format!(
                "overhead run of `{name}` did not complete: {}",
                result.outcome
            )));
        }
        Ok(result.ops)
    };

    let baseline = strip_sites(&inst.program);
    let baseline_ops = run_ops(&baseline, None)?;
    let unconditional_ops = run_ops(&inst.program, None)?;

    let (sampled_program, _) = apply_sampling(&inst.program, &config.transform)?;
    let mut sampled = Vec::with_capacity(densities.len());
    for (di, &density) in densities.iter().enumerate() {
        let mut total = 0u64;
        for run in 0..config.runs_per_density {
            let bank_seed = config
                .seed
                .wrapping_add(di as u64 * 1000)
                .wrapping_add(run);
            let bank = CountdownBank::generate(density, config.bank_size, bank_seed);
            total += run_ops(&sampled_program, Some(bank))?;
        }
        let mean = total as f64 / config.runs_per_density as f64;
        sampled.push((density, mean / baseline_ops as f64));
    }

    Ok(OverheadMeasurement {
        name: name.to_string(),
        baseline_ops,
        unconditional: unconditional_ops as f64 / baseline_ops as f64,
        sampled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::benchmark;

    fn densities() -> Vec<SamplingDensity> {
        vec![
            SamplingDensity::one_in(100),
            SamplingDensity::one_in(1000),
            SamplingDensity::one_in(1_000_000),
        ]
    }

    #[test]
    fn overhead_ordering_holds_for_treeadd() {
        let b = benchmark("treeadd").unwrap();
        let m = measure_overhead(b.name, &b.program, &[], &densities(), &OverheadConfig::default())
            .unwrap();
        assert!(m.unconditional > 1.0, "always-on must cost: {m:?}");
        for &(_, ratio) in &m.sampled {
            assert!(ratio > 1.0, "sampling floor is above baseline: {m:?}");
            assert!(
                ratio < m.unconditional * 1.05,
                "sampling should not exceed unconditional much: {m:?}"
            );
        }
        // Monotone: sparser sampling is never more expensive.
        for w in m.sampled.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "{m:?}");
        }
    }

    #[test]
    fn dense_programs_benefit_most() {
        // ijpeg is check-dense: unconditional overhead is large, sparse
        // sampling recovers most of it (paper: 2.46 -> 1.03).
        let b = benchmark("ijpeg").unwrap();
        let m = measure_overhead(b.name, &b.program, &[], &densities(), &OverheadConfig::default())
            .unwrap();
        assert!(m.unconditional > 1.5, "{m:?}");
        let sparse = m.sampled.last().unwrap().1;
        assert!(
            sparse - 1.0 < (m.unconditional - 1.0) / 2.0,
            "sparse sampling must reclaim most overhead: {m:?}"
        );
    }

    #[test]
    fn measurements_are_deterministic() {
        let b = benchmark("power").unwrap();
        let cfg = OverheadConfig::default();
        let a = measure_overhead(b.name, &b.program, &[], &densities(), &cfg).unwrap();
        let c = measure_overhead(b.name, &b.program, &[], &densities(), &cfg).unwrap();
        assert_eq!(a, c);
    }
}
