//! Overhead measurement for Table 2 and Figure 4.
//!
//! Each benchmark runs in three builds — baseline (checks stripped),
//! unconditional instrumentation, and sampling-transformed at several
//! densities — and we report the ratio of operation counts relative to the
//! baseline (1.00 = no overhead; the paper's 2.81 for `bh` means a 181%
//! slowdown).  Sampled numbers average four runs with different
//! pre-generated countdown banks, as in §3.1.1.

use crate::WorkloadError;
use cbi_instrument::{
    apply_sampling, instrument, strip_sites, Instrumented, Scheme, SiteTable, TransformOptions,
};
use cbi_minic::slots::SlotProgram;
use cbi_minic::Program;
use cbi_sampler::{CountdownBank, SamplingDensity};
use cbi_vm::Vm;

/// Overhead ratios for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadMeasurement {
    /// Benchmark name.
    pub name: String,
    /// Baseline op count (checks removed).
    pub baseline_ops: u64,
    /// Unconditional-instrumentation ratio (the "always" column).
    pub unconditional: f64,
    /// `(density, ratio)` per sampled density, in input order.
    pub sampled: Vec<(SamplingDensity, f64)>,
}

/// Configuration for overhead measurement.
#[derive(Debug, Clone, Copy)]
pub struct OverheadConfig {
    /// Instrumentation scheme (Table 2 uses CCured-style checks).
    pub scheme: Scheme,
    /// Sampling transformation options.
    pub transform: TransformOptions,
    /// Runs (each with a fresh countdown bank) averaged per density.
    pub runs_per_density: u64,
    /// Countdown bank size.
    pub bank_size: usize,
    /// Master seed for banks.
    pub seed: u64,
    /// Per-run operation budget.
    pub op_limit: u64,
    /// Worker threads to shard the sampled-run grid over (`0` and `1`
    /// both mean serial).  Any value produces identical measurements:
    /// every `(density, run)` cell draws its bank from its own seed.
    pub jobs: usize,
}

impl Default for OverheadConfig {
    fn default() -> Self {
        OverheadConfig {
            scheme: Scheme::Checks,
            transform: TransformOptions::default(),
            runs_per_density: 4,
            bank_size: 1024,
            seed: 97,
            op_limit: 2_000_000_000,
            jobs: 1,
        }
    }
}

impl OverheadConfig {
    /// Sets the worker-thread count for sampled runs.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

/// Measures overhead ratios for one program at the given densities, using
/// a fixed input script for every run.
///
/// # Errors
///
/// Returns [`WorkloadError`] if instrumentation or any run fails — the
/// overhead benchmarks must run to completion ("all programs run to
/// completion; we are simply measuring the overhead").
pub fn measure_overhead(
    name: &str,
    program: &Program,
    input: &[i64],
    densities: &[SamplingDensity],
    config: &OverheadConfig,
) -> Result<OverheadMeasurement, WorkloadError> {
    let inst = instrument(program, config.scheme)?;
    measure_overhead_instrumented(name, &inst, input, densities, config)
}

/// Like [`measure_overhead`], but for an already instrumented program —
/// used by the statically-selective experiments that share one site table
/// across many variants.
///
/// # Errors
///
/// Returns [`WorkloadError`] if transformation or any run fails.
pub fn measure_overhead_instrumented(
    name: &str,
    inst: &Instrumented,
    input: &[i64],
    densities: &[SamplingDensity],
    config: &OverheadConfig,
) -> Result<OverheadMeasurement, WorkloadError> {
    let baseline = strip_sites(&inst.program);
    let baseline_slots = cbi_minic::lower(&baseline);
    let baseline_ops = run_ops(&baseline_slots, &inst.sites, input, name, None, config)?;
    let inst_slots = cbi_minic::lower(&inst.program);
    let unconditional_ops = run_ops(&inst_slots, &inst.sites, input, name, None, config)?;

    let (sampled_program, _) = apply_sampling(&inst.program, &config.transform)?;
    let sampled_slots = cbi_minic::lower(&sampled_program);

    // One grid cell per (density, run); each cell's bank comes from its
    // own seed, so cells are independent and shardable.
    let cells: Vec<(usize, SamplingDensity, u64)> = densities
        .iter()
        .enumerate()
        .flat_map(|(di, &density)| {
            (0..config.runs_per_density).map(move |run| {
                let bank_seed = config.seed.wrapping_add(di as u64 * 1000).wrapping_add(run);
                (di, density, bank_seed)
            })
        })
        .collect();

    let jobs = config.jobs.clamp(1, cells.len().max(1));
    let mut totals = vec![0u64; densities.len()];
    if jobs <= 1 {
        for &(di, ops) in &run_cells(&sampled_slots, &inst.sites, input, name, &cells, config)? {
            totals[di] += ops;
        }
    } else {
        let chunk = cells.len().div_ceil(jobs);
        let slots = &sampled_slots;
        let sites = &inst.sites;
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = cells
                .chunks(chunk)
                .map(|shard| {
                    scope.spawn(move || run_cells(slots, sites, input, name, shard, config))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("overhead worker panicked"))
                .collect::<Vec<_>>()
        });
        for shard in results {
            for (di, ops) in shard? {
                totals[di] += ops;
            }
        }
    }

    let sampled = densities
        .iter()
        .zip(&totals)
        .map(|(&density, &total)| {
            let mean = total as f64 / config.runs_per_density as f64;
            (density, mean / baseline_ops as f64)
        })
        .collect();

    Ok(OverheadMeasurement {
        name: name.to_string(),
        baseline_ops,
        unconditional: unconditional_ops as f64 / baseline_ops as f64,
        sampled,
    })
}

/// Runs one shard of the sampled grid, reusing a single countdown bank
/// across cells via [`CountdownBank::reseed`] (bit-identical to a fresh
/// bank per cell).  Returns `(density index, ops)` per cell.
fn run_cells(
    slots: &SlotProgram,
    sites: &SiteTable,
    input: &[i64],
    name: &str,
    cells: &[(usize, SamplingDensity, u64)],
    config: &OverheadConfig,
) -> Result<Vec<(usize, u64)>, WorkloadError> {
    let mut out = Vec::with_capacity(cells.len());
    let mut bank: Option<CountdownBank> = None;
    for &(di, density, bank_seed) in cells {
        if let Some(bank) = bank.as_mut() {
            bank.reseed(density, bank_seed);
        } else {
            bank = Some(CountdownBank::generate(
                density,
                config.bank_size,
                bank_seed,
            ));
        }
        let ops = run_ops(slots, sites, input, name, bank.as_mut(), config)?;
        out.push((di, ops));
    }
    Ok(out)
}

/// Executes one run on the slot engine with a borrowed input script and
/// an optional borrowed countdown bank; returns the op count.
fn run_ops(
    slots: &SlotProgram,
    sites: &SiteTable,
    input: &[i64],
    name: &str,
    bank: Option<&mut CountdownBank>,
    config: &OverheadConfig,
) -> Result<u64, WorkloadError> {
    let mut vm = Vm::from_slots(slots);
    vm.with_sites(sites)
        .with_input(input)
        .with_op_limit(config.op_limit);
    if let Some(bank) = bank {
        vm.with_sampling_ref(bank);
    }
    let result = vm.run()?;
    if !result.outcome.is_success() {
        return Err(WorkloadError::new(format!(
            "overhead run of `{name}` did not complete: {}",
            result.outcome
        )));
    }
    Ok(result.ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::benchmark;

    fn densities() -> Vec<SamplingDensity> {
        vec![
            SamplingDensity::one_in(100),
            SamplingDensity::one_in(1000),
            SamplingDensity::one_in(1_000_000),
        ]
    }

    #[test]
    fn overhead_ordering_holds_for_treeadd() {
        let b = benchmark("treeadd").unwrap();
        let m = measure_overhead(
            b.name,
            &b.program,
            &[],
            &densities(),
            &OverheadConfig::default(),
        )
        .unwrap();
        assert!(m.unconditional > 1.0, "always-on must cost: {m:?}");
        for &(_, ratio) in &m.sampled {
            assert!(ratio > 1.0, "sampling floor is above baseline: {m:?}");
            assert!(
                ratio < m.unconditional * 1.05,
                "sampling should not exceed unconditional much: {m:?}"
            );
        }
        // Monotone: sparser sampling is never more expensive.
        for w in m.sampled.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "{m:?}");
        }
    }

    #[test]
    fn dense_programs_benefit_most() {
        // ijpeg is check-dense: unconditional overhead is large, sparse
        // sampling recovers most of it (paper: 2.46 -> 1.03).
        let b = benchmark("ijpeg").unwrap();
        let m = measure_overhead(
            b.name,
            &b.program,
            &[],
            &densities(),
            &OverheadConfig::default(),
        )
        .unwrap();
        assert!(m.unconditional > 1.5, "{m:?}");
        let sparse = m.sampled.last().unwrap().1;
        assert!(
            sparse - 1.0 < (m.unconditional - 1.0) / 2.0,
            "sparse sampling must reclaim most overhead: {m:?}"
        );
    }

    #[test]
    fn measurements_are_deterministic() {
        let b = benchmark("power").unwrap();
        let cfg = OverheadConfig::default();
        let a = measure_overhead(b.name, &b.program, &[], &densities(), &cfg).unwrap();
        let c = measure_overhead(b.name, &b.program, &[], &densities(), &cfg).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn jobs_do_not_change_measurements() {
        let b = benchmark("power").unwrap();
        let serial = measure_overhead(
            b.name,
            &b.program,
            &[],
            &densities(),
            &OverheadConfig::default(),
        )
        .unwrap();
        for jobs in [2, 4, 99] {
            let sharded = measure_overhead(
                b.name,
                &b.program,
                &[],
                &densities(),
                &OverheadConfig::default().with_jobs(jobs),
            )
            .unwrap();
            assert_eq!(serial, sharded, "jobs {jobs}");
        }
    }
}
