//! Randomized bc trials (§3.3).
//!
//! "We find that feeding bc nine megabytes of random input causes it to
//! crash roughly one time in four."  A trial is an input script for the
//! `bc` MiniC analogue: interpreter configuration followed by a command
//! stream that defines variables, defines arrays, and evaluates
//! expressions.  Crashes require enough variable definitions to push
//! `v_count` past the next arrays capacity *and* a second arrays growth to
//! free the corrupted block — both input-dependent, hence the bug's
//! non-determinism.

use cbi_sampler::Pcg32;

/// Distribution parameters for bc trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BcTrialConfig {
    /// Variable definitions per run are uniform in `0..=max_vars`.
    pub max_vars: u64,
    /// Array definitions per run are uniform in `0..=max_arrays`.
    pub max_arrays: u64,
    /// Expression evaluations per run are uniform in `0..=max_evals`.
    pub max_evals: u64,
}

impl Default for BcTrialConfig {
    fn default() -> Self {
        BcTrialConfig {
            max_vars: 24,
            max_arrays: 24,
            max_evals: 8,
        }
    }
}

/// Generates one trial's input script.
///
/// Variables are (mostly) defined before arrays, as interactive bc
/// sessions define names before using them; expression evaluations are
/// sprinkled between commands.
pub fn bc_trial(rng: &mut Pcg32, config: &BcTrialConfig) -> Vec<i64> {
    // Interpreter configuration: scale, i_base, use_math, opterr.
    let mut script: Vec<i64> = vec![
        rng.below(4) as i64,
        10 + rng.below(4) as i64,
        rng.below(2) as i64,
        rng.below(2) as i64,
    ];

    let n_vars = rng.below(config.max_vars + 1);
    let n_arrays = rng.below(config.max_arrays + 1);
    let n_evals = rng.below(config.max_evals + 1);

    let mut commands: Vec<Vec<i64>> = Vec::new();
    for _ in 0..n_vars {
        commands.push(vec![1]);
    }
    for _ in 0..n_arrays {
        commands.push(vec![2]);
    }
    // Keep the variables-then-arrays order, but interleave evaluations at
    // random positions.
    for _ in 0..n_evals {
        let at = rng.below(commands.len() as u64 + 1) as usize;
        commands.insert(at, vec![3, rng.below(10_000) as i64]);
    }
    for c in commands {
        script.extend(c);
    }
    script.push(0); // quit
    script
}

/// Generates `n` trials from a master seed.
pub fn bc_trials(n: usize, seed: u64, config: &BcTrialConfig) -> Vec<Vec<i64>> {
    let mut rng = Pcg32::new(seed);
    (0..n).map(|_| bc_trial(&mut rng, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::bc_program;
    use cbi_vm::{CrashKind, RunOutcome, Vm};

    #[test]
    fn crash_rate_is_roughly_one_in_four() {
        let program = bc_program();
        let trials = bc_trials(1000, 7, &BcTrialConfig::default());
        let mut crashes = 0;
        for t in trials {
            let r = Vm::new(&program).with_input(t).run().unwrap();
            match r.outcome {
                RunOutcome::Crash(_) => crashes += 1,
                RunOutcome::Success(_) => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        let rate = crashes as f64 / 1000.0;
        assert!(
            (0.15..=0.40).contains(&rate),
            "crash rate {rate} outside the bc band"
        );
    }

    #[test]
    fn crashes_are_heap_corruption() {
        let program = bc_program();
        // Deterministic crashing script: 16 variables (v_count -> 20), then
        // 16 arrays (two growths: corruption then free of damaged block).
        let mut script = vec![0, 10, 0, 0];
        script.extend(std::iter::repeat_n(1, 16));
        script.extend(std::iter::repeat_n(2, 16));
        script.push(0);
        let r = Vm::new(&program).with_input(script).run().unwrap();
        assert_eq!(r.outcome, RunOutcome::Crash(CrashKind::HeapCorruption));
    }

    #[test]
    fn overrun_without_second_growth_gets_lucky() {
        let program = bc_program();
        // 16 variables then only 8 arrays: one growth corrupts, but the
        // damaged block is never freed — the program "gets lucky".
        let mut script = vec![0, 10, 0, 0];
        script.extend(std::iter::repeat_n(1, 16));
        script.extend(std::iter::repeat_n(2, 8));
        script.push(0);
        let r = Vm::new(&program).with_input(script).run().unwrap();
        assert!(r.outcome.is_success(), "{:?}", r.outcome);
    }

    #[test]
    fn few_variables_never_crash() {
        let program = bc_program();
        // Arrays growth with small v_count: the buggy loop bound is benign.
        let mut script = vec![2, 11, 1, 0];
        script.extend(std::iter::repeat_n(1, 4));
        script.extend(std::iter::repeat_n(2, 20));
        script.push(0);
        let r = Vm::new(&program).with_input(script).run().unwrap();
        assert!(r.outcome.is_success(), "{:?}", r.outcome);
    }

    #[test]
    fn empty_command_stream_succeeds() {
        let program = bc_program();
        let r = Vm::new(&program)
            .with_input(vec![1, 10, 0, 0, 0])
            .run()
            .unwrap();
        assert!(r.outcome.is_success());
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let a = bc_trials(10, 3, &BcTrialConfig::default());
        let b = bc_trials(10, 3, &BcTrialConfig::default());
        assert_eq!(a, b);
    }
}
