//! Campaign driver: instrument once, run many randomized trials, collect
//! reports — the client half of the deployment loop of §1.

use crate::WorkloadError;
use cbi_instrument::{apply_sampling, instrument, Instrumented, Scheme, TransformOptions};
use cbi_minic::Program;
use cbi_reports::{Collector, Label, Report};
use cbi_sampler::{CountdownBank, SamplingDensity};
use cbi_vm::{RunOutcome, Vm};

/// Configuration of one report-collection campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Which observations to instrument.
    pub scheme: Scheme,
    /// Sampling transformation options.
    pub transform: TransformOptions,
    /// Sampling density, or `None` to run unconditional instrumentation.
    pub density: Option<SamplingDensity>,
    /// Pre-generated countdown bank size per run (§3.1.1 uses 1024).
    pub bank_size: usize,
    /// Master seed for per-run countdown banks.
    pub seed: u64,
    /// Per-run operation budget.
    pub op_limit: u64,
    /// Heap slack per allocation (overrun tolerance).
    pub heap_slack: usize,
}

impl CampaignConfig {
    /// A sampled campaign at the given density with sensible defaults.
    pub fn sampled(scheme: Scheme, density: SamplingDensity) -> Self {
        CampaignConfig {
            scheme,
            transform: TransformOptions::default(),
            density: Some(density),
            bank_size: 1024,
            seed: 0x5eed,
            op_limit: cbi_vm::DEFAULT_OP_LIMIT,
            heap_slack: cbi_vm::heap::DEFAULT_SLACK,
        }
    }

    /// An unconditional-instrumentation campaign.
    pub fn unconditional(scheme: Scheme) -> Self {
        CampaignConfig {
            density: None,
            ..CampaignConfig::sampled(scheme, SamplingDensity::always())
        }
    }
}

/// The outcome of a campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// The instrumented program and its site table.
    pub instrumented: Instrumented,
    /// The collected reports.
    pub collector: Collector,
    /// Runs dropped because they exhausted the operation budget.
    pub dropped: usize,
}

impl CampaignResult {
    /// Site `(counter_base, arity)` groups, as the elimination strategies
    /// expect them.
    pub fn site_groups(&self) -> Vec<(usize, usize)> {
        self.instrumented
            .sites
            .iter()
            .map(|s| (s.counter_base, s.kind.arity()))
            .collect()
    }
}

/// Instruments `program` with `config.scheme`, transforms it (when a
/// density is given), runs every trial, and collects one report per run.
///
/// # Errors
///
/// Returns [`WorkloadError`] if instrumentation, transformation, or VM
/// configuration fails.  Individual run crashes are data, not errors.
pub fn run_campaign(
    program: &Program,
    trials: &[Vec<i64>],
    config: &CampaignConfig,
) -> Result<CampaignResult, WorkloadError> {
    let instrumented = instrument(program, config.scheme)?;
    let executable = match config.density {
        Some(_) => apply_sampling(&instrumented.program, &config.transform)?.0,
        None => instrumented.program.clone(),
    };

    let mut collector = Collector::new(instrumented.sites.total_counters());
    let mut dropped = 0;
    for (i, input) in trials.iter().enumerate() {
        let mut vm = Vm::new(&executable);
        vm.with_sites(&instrumented.sites)
            .with_input(input.clone())
            .with_op_limit(config.op_limit)
            .with_heap_slack(config.heap_slack);
        if let Some(density) = config.density {
            let bank = CountdownBank::generate(
                density,
                config.bank_size,
                config.seed.wrapping_add(i as u64),
            );
            vm.with_sampling(Box::new(bank));
        }
        let result = vm.run()?;
        let label = match result.outcome {
            RunOutcome::Success(_) => Label::Success,
            RunOutcome::Crash(_) | RunOutcome::AssertionFailure(_) => Label::Failure,
            RunOutcome::OpLimit => {
                dropped += 1;
                continue;
            }
        };
        collector
            .add(Report::new(i as u64, label, result.counters))
            .expect("campaign reports share one layout");
    }
    Ok(CampaignResult {
        instrumented,
        collector,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::{bc_trials, BcTrialConfig};
    use crate::benchmarks::{bc_program, ccrypt_program};
    use crate::ccrypt::{ccrypt_trials, CcryptTrialConfig};

    #[test]
    fn ccrypt_campaign_collects_labeled_reports() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(300, 11, &CcryptTrialConfig::default());
        let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(10));
        let result = run_campaign(&program, &trials, &config).unwrap();
        assert_eq!(result.collector.len(), 300);
        assert!(result.collector.failure_count() > 0, "some runs crash");
        assert!(result.collector.success_count() > 250);
        assert_eq!(result.dropped, 0);
        assert!(!result.site_groups().is_empty());
    }

    #[test]
    fn unconditional_campaign_observes_every_crossing() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(50, 5, &CcryptTrialConfig::default());
        let sampled = run_campaign(
            &program,
            &trials,
            &CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(1000)),
        )
        .unwrap();
        let uncond =
            run_campaign(&program, &trials, &CampaignConfig::unconditional(Scheme::Returns))
                .unwrap();
        let total = |c: &Collector| -> u64 {
            c.reports().iter().map(|r| r.counters.iter().sum::<u64>()).sum()
        };
        assert!(total(&uncond.collector) > 50 * total(&sampled.collector));
    }

    #[test]
    fn bc_campaign_with_scalar_pairs() {
        let program = bc_program();
        let trials = bc_trials(120, 3, &BcTrialConfig::default());
        let config = CampaignConfig::sampled(Scheme::ScalarPairs, SamplingDensity::one_in(10));
        let result = run_campaign(&program, &trials, &config).unwrap();
        assert_eq!(result.collector.len(), 120);
        let failures = result.collector.failure_count();
        assert!(
            (10..=60).contains(&failures),
            "bc failure count {failures} out of band"
        );
        // Scalar pairs generate a large counter space.
        assert!(result.instrumented.sites.total_counters() > 300);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(60, 21, &CcryptTrialConfig::default());
        let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(100));
        let a = run_campaign(&program, &trials, &config).unwrap();
        let b = run_campaign(&program, &trials, &config).unwrap();
        assert_eq!(a.collector.reports(), b.collector.reports());
    }
}
