//! Campaign driver: instrument once, run many randomized trials, emit
//! reports into a sink — the client half of the deployment loop of §1.
//!
//! The driver is built for throughput (§2.5 contemplates millions of
//! runs): the program is lowered to slot form once and shared by every
//! trial, trial inputs are borrowed rather than cloned, each worker
//! reseeds one countdown bank instead of allocating a fresh one per run,
//! and trials shard across `jobs` scoped threads.  Because trial `i` is
//! fully determined by `(program, trials[i], seed + i)`, workers fill
//! private report buffers over contiguous trial ranges and the driver
//! drains them in run-id order — the emitted sequence is bit-identical
//! to serial execution at any job count.
//!
//! Collection policy is a parameter: [`run_campaign_into`] feeds any
//! [`ReportSink`] — an in-memory [`Collector`], a spool file, a live
//! socket, or a streaming analyzer.  With `jobs <= 1` each report goes
//! straight from the VM into the sink with no intermediate buffering, so
//! memory use is bounded by the sink, not the trial count.

use crate::WorkloadError;
use cbi_instrument::{
    apply_sampling, instrument, Instrumented, Scheme, SiteTable, TransformOptions,
};
use cbi_minic::slots::SlotProgram;
use cbi_minic::Program;
use cbi_reports::{Collector, Label, Report, ReportLayout, ReportSink};
use cbi_sampler::{LazyBank, SamplingDensity};
use cbi_telemetry as telemetry;
use cbi_vm::{bytecode::BcProgram, Engine, RunOutcome, Vm};
use std::borrow::Cow;

/// Configuration of one report-collection campaign.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Which observations to instrument.
    pub scheme: Scheme,
    /// Sampling transformation options.
    pub transform: TransformOptions,
    /// Sampling density, or `None` to run unconditional instrumentation.
    pub density: Option<SamplingDensity>,
    /// Pre-generated countdown bank size per run (§3.1.1 uses 1024).
    pub bank_size: usize,
    /// Master seed for per-run countdown banks.
    pub seed: u64,
    /// Per-run operation budget.
    pub op_limit: u64,
    /// Heap slack per allocation (overrun tolerance).
    pub heap_slack: usize,
    /// Worker threads to shard trials over (`0` and `1` both mean
    /// serial).  Any value produces bit-identical results.
    pub jobs: usize,
    /// Interpreter engine for every trial.  The default is
    /// [`Engine::Bytecode`] — the program is compiled once and every run
    /// executes straight-line instructions; all engines produce
    /// bit-identical reports, so this is purely a throughput knob.
    pub engine: Engine,
}

impl CampaignConfig {
    /// A sampled campaign at the given density with sensible defaults.
    pub fn sampled(scheme: Scheme, density: SamplingDensity) -> Self {
        CampaignConfig {
            scheme,
            transform: TransformOptions::default(),
            density: Some(density),
            bank_size: 1024,
            seed: 0x5eed,
            op_limit: cbi_vm::DEFAULT_OP_LIMIT,
            heap_slack: cbi_vm::heap::DEFAULT_SLACK,
            jobs: 1,
            engine: Engine::Bytecode,
        }
    }

    /// The same campaign sharded over `jobs` worker threads.
    pub fn with_jobs(self, jobs: usize) -> Self {
        CampaignConfig { jobs, ..self }
    }

    /// The same campaign executed by `engine`.
    pub fn with_engine(self, engine: Engine) -> Self {
        CampaignConfig { engine, ..self }
    }

    /// An unconditional-instrumentation campaign.
    pub fn unconditional(scheme: Scheme) -> Self {
        CampaignConfig {
            density: None,
            ..CampaignConfig::sampled(scheme, SamplingDensity::always())
        }
    }
}

/// The outcome of a campaign.
#[derive(Debug)]
pub struct CampaignResult {
    /// The instrumented program and its site table.
    pub instrumented: Instrumented,
    /// The collected reports.
    pub collector: Collector,
    /// Runs dropped because they exhausted the operation budget.
    pub dropped: usize,
}

impl CampaignResult {
    /// Site `(counter_base, arity)` groups, as the elimination strategies
    /// expect them.
    pub fn site_groups(&self) -> Vec<(usize, usize)> {
        self.instrumented
            .sites
            .iter()
            .map(|s| (s.counter_base, s.kind.arity()))
            .collect()
    }
}

/// The outcome of a campaign emitted into an external sink: everything
/// [`CampaignResult`] records except the reports themselves, which went
/// wherever the sink sent them.
#[derive(Debug)]
pub struct CampaignRun {
    /// The instrumented program and its site table.
    pub instrumented: Instrumented,
    /// Runs dropped because they exhausted the operation budget.
    pub dropped: usize,
    /// Reports accepted by the sink.
    pub emitted: usize,
}

impl CampaignRun {
    /// Site `(counter_base, arity)` groups, as the elimination strategies
    /// expect them.
    pub fn site_groups(&self) -> Vec<(usize, usize)> {
        self.instrumented
            .sites
            .iter()
            .map(|s| (s.counter_base, s.kind.arity()))
            .collect()
    }
}

/// Instruments `program` with `config.scheme`, transforms it (when a
/// density is given), runs every trial, and collects one report per run
/// into an in-memory [`Collector`].
///
/// Equivalent to [`run_campaign_into`] with a `Collector` sink; see that
/// function for the sharding and ordering contract.
///
/// # Errors
///
/// Returns [`WorkloadError`] if instrumentation, transformation, or VM
/// configuration fails.  Individual run crashes are data, not errors.
pub fn run_campaign(
    program: &Program,
    trials: &[Vec<i64>],
    config: &CampaignConfig,
) -> Result<CampaignResult, WorkloadError> {
    // Layout is adopted from the sink's `begin`, so the counter width
    // here is provisional and overwritten before the first report.
    let mut collector = Collector::new(0);
    let run = run_campaign_into(program, trials, config, &mut collector)?;
    Ok(CampaignResult {
        instrumented: run.instrumented,
        collector,
        dropped: run.dropped,
    })
}

/// Instruments `program` with `config.scheme`, transforms it (when a
/// density is given), runs every trial, and emits one report per run
/// into `sink`.
///
/// The sink's [`begin`](ReportSink::begin) is called with the site
/// table's layout (counter count and layout hash) before any report, and
/// [`finish`](ReportSink::finish) after the last one.  Trials shard over
/// `config.jobs` scoped worker threads; the report sequence the sink
/// observes is bit-identical to serial execution at any job count (see
/// the module docs).  With `jobs <= 1` reports flow straight from the VM
/// into the sink, one at a time, with no intermediate buffering.
///
/// # Errors
///
/// Returns [`WorkloadError`] if instrumentation, transformation, or VM
/// configuration fails, or if the sink rejects a report (I/O failure,
/// layout mismatch).  Individual run crashes are data, not errors.
pub fn run_campaign_into<S: ReportSink>(
    program: &Program,
    trials: &[Vec<i64>],
    config: &CampaignConfig,
    sink: &mut S,
) -> Result<CampaignRun, WorkloadError> {
    let instrumented =
        telemetry::time("campaign.instrument", || instrument(program, config.scheme))?;
    let executable: Cow<'_, Program> = match config.density {
        Some(_) => Cow::Owned(
            telemetry::time("campaign.transform", || {
                apply_sampling(&instrumented.program, &config.transform)
            })?
            .0,
        ),
        None => Cow::Borrowed(&instrumented.program),
    };
    // Lower once; every trial indexes the shared slot program.  Under the
    // bytecode engine, compile once more to flat instructions — the
    // campaign then never touches the AST on the execution path.
    let slots = telemetry::time("campaign.lower", || cbi_minic::lower(&executable));
    let bytecode = (config.engine == Engine::Bytecode)
        .then(|| telemetry::time("campaign.compile", || cbi_vm::bytecode::compile(&slots)));
    let exe = match config.engine {
        Engine::NameMap => Exe::Ast(&executable),
        Engine::Slots => Exe::Slots(&slots),
        Engine::Bytecode => Exe::Bytecode(bytecode.as_ref().expect("compiled above")),
    };

    sink.begin(ReportLayout {
        counters: instrumented.sites.total_counters(),
        layout_hash: instrumented.sites.layout_hash(),
    })?;

    let jobs = config.jobs.clamp(1, trials.len().max(1));
    let mut dropped = 0;
    let mut emitted = 0usize;

    if jobs <= 1 {
        let _execute = telemetry::span("campaign.execute");
        dropped = run_shard(exe, &instrumented.sites, trials, 0, config, &mut |r| {
            emitted += 1;
            sink.accept(r).map_err(WorkloadError::from)
        })?;
    } else {
        let chunk = trials.len().div_ceil(jobs);
        let shards: Vec<Result<(Vec<Report>, usize), WorkloadError>> = {
            let _execute = telemetry::span("campaign.execute");
            let tm_on = telemetry::enabled();
            std::thread::scope(|s| {
                let handles: Vec<_> = trials
                    .chunks(chunk)
                    .enumerate()
                    .map(|(w, shard)| {
                        let sites = &instrumented.sites;
                        // Spawn-to-start latency per worker: how long a
                        // shard waited for the scheduler ("queue wait").
                        let spawned_ns = tm_on.then(telemetry::now_ns);
                        s.spawn(move || {
                            if let Some(t0) = spawned_ns {
                                telemetry::set_worker(w as u32 + 1);
                                // A counter (not a histogram) so the wait
                                // stays attributed to its worker label.
                                telemetry::count(
                                    "campaign.queue_wait_ns",
                                    telemetry::now_ns().saturating_sub(t0),
                                );
                            }
                            let _shard_span = telemetry::span("campaign.shard");
                            let mut reports = Vec::with_capacity(shard.len());
                            let dropped =
                                run_shard(exe, sites, shard, w * chunk, config, &mut |r| {
                                    reports.push(r);
                                    Ok(())
                                })?;
                            Ok((reports, dropped))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("campaign worker panicked"))
                    .collect()
            })
        };
        // Shards cover contiguous, increasing trial ranges, so draining
        // them in order reproduces the serial report sequence exactly.
        let _merge = telemetry::span("campaign.merge");
        for shard in shards {
            let (reports, d) = shard?;
            for report in reports {
                emitted += 1;
                sink.accept(report)?;
            }
            dropped += d;
        }
    }

    sink.finish()?;
    Ok(CampaignRun {
        instrumented,
        dropped,
        emitted,
    })
}

/// The shared executable form every trial runs: compiled once per
/// campaign for the configured engine, borrowed by every worker.
#[derive(Clone, Copy)]
enum Exe<'a> {
    Ast(&'a Program),
    Slots(&'a SlotProgram),
    Bytecode(&'a BcProgram),
}

impl<'a> Exe<'a> {
    fn vm(self) -> Vm<'a> {
        match self {
            Exe::Ast(p) => {
                let mut vm = Vm::new(p);
                vm.with_engine(Engine::NameMap);
                vm
            }
            Exe::Slots(p) => Vm::from_slots(p),
            Exe::Bytecode(p) => Vm::from_bytecode(p),
        }
    }
}

/// Runs trials `base..base + shard.len()`, passing each surviving report
/// to `emit` in run-id order; returns the dropped-run count.
fn run_shard(
    exe: Exe<'_>,
    sites: &SiteTable,
    shard: &[Vec<i64>],
    base: usize,
    config: &CampaignConfig,
    emit: &mut dyn FnMut(Report) -> Result<(), WorkloadError>,
) -> Result<usize, WorkloadError> {
    let mut dropped = 0;
    // One lazy bank per worker, reseeded per trial: the countdown sequence
    // is identical to `CountdownBank::generate(d, n, seed + i)`, but draws
    // happen on demand, so a trial with few refills skips most of the
    // generation cost.
    let mut bank = config
        .density
        .map(|d| LazyBank::new(d, config.bank_size, config.seed.wrapping_add(base as u64)));
    for (offset, input) in shard.iter().enumerate() {
        let i = base + offset;
        let mut vm = exe.vm();
        vm.with_sites(sites)
            .with_input(&input[..])
            .with_op_limit(config.op_limit)
            .with_heap_slack(config.heap_slack);
        if let Some(bank) = bank.as_mut() {
            if offset > 0 {
                let density = config.density.expect("bank implies density");
                bank.reseed(density, config.seed.wrapping_add(i as u64));
            }
            vm.with_sampling_ref(bank);
        }
        let result = vm.run()?;
        let label = match result.outcome {
            RunOutcome::Success(_) => Label::Success,
            RunOutcome::Crash(_) | RunOutcome::AssertionFailure(_) => Label::Failure,
            RunOutcome::OpLimit => {
                dropped += 1;
                continue;
            }
        };
        emit(Report::new(i as u64, label, result.counters))?;
    }
    // Attributed to the calling thread's worker label, so the per-worker
    // breakdown shows how trials and drops spread across the shards.
    telemetry::count("campaign.trials", shard.len() as u64);
    telemetry::count("campaign.dropped", dropped as u64);
    Ok(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::{bc_trials, BcTrialConfig};
    use crate::benchmarks::{bc_program, ccrypt_program};
    use crate::ccrypt::{ccrypt_trials, CcryptTrialConfig};

    #[test]
    fn ccrypt_campaign_collects_labeled_reports() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(300, 11, &CcryptTrialConfig::default());
        let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(10));
        let result = run_campaign(&program, &trials, &config).unwrap();
        assert_eq!(result.collector.len(), 300);
        assert!(result.collector.failure_count() > 0, "some runs crash");
        assert!(result.collector.success_count() > 250);
        assert_eq!(result.dropped, 0);
        assert!(!result.site_groups().is_empty());
    }

    #[test]
    fn unconditional_campaign_observes_every_crossing() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(50, 5, &CcryptTrialConfig::default());
        let sampled = run_campaign(
            &program,
            &trials,
            &CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(1000)),
        )
        .unwrap();
        let uncond = run_campaign(
            &program,
            &trials,
            &CampaignConfig::unconditional(Scheme::Returns),
        )
        .unwrap();
        let total = |c: &Collector| -> u64 {
            c.reports()
                .iter()
                .map(|r| r.counters.iter().sum::<u64>())
                .sum()
        };
        assert!(total(&uncond.collector) > 50 * total(&sampled.collector));
    }

    #[test]
    fn bc_campaign_with_scalar_pairs() {
        let program = bc_program();
        let trials = bc_trials(120, 3, &BcTrialConfig::default());
        let config = CampaignConfig::sampled(Scheme::ScalarPairs, SamplingDensity::one_in(10));
        let result = run_campaign(&program, &trials, &config).unwrap();
        assert_eq!(result.collector.len(), 120);
        let failures = result.collector.failure_count();
        assert!(
            (10..=60).contains(&failures),
            "bc failure count {failures} out of band"
        );
        // Scalar pairs generate a large counter space.
        assert!(result.instrumented.sites.total_counters() > 300);
    }

    #[test]
    fn campaigns_are_deterministic() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(60, 21, &CcryptTrialConfig::default());
        let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(100));
        let a = run_campaign(&program, &trials, &config).unwrap();
        let b = run_campaign(&program, &trials, &config).unwrap();
        assert_eq!(a.collector.reports(), b.collector.reports());
    }

    #[test]
    fn parallel_matches_serial() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(200, 33, &CcryptTrialConfig::default());
        let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(10));
        let serial = run_campaign(&program, &trials, &config.with_jobs(1)).unwrap();
        let parallel = run_campaign(&program, &trials, &config.with_jobs(8)).unwrap();
        assert_eq!(serial.collector.reports(), parallel.collector.reports());
        assert_eq!(serial.dropped, parallel.dropped);
        assert_eq!(
            serial.collector.success_count(),
            parallel.collector.success_count()
        );
        assert_eq!(
            serial.collector.failure_count(),
            parallel.collector.failure_count()
        );
    }

    #[test]
    fn parallel_preserves_oplimit_drop_accounting() {
        // A tiny op budget drops many trials; the dropped count and the
        // surviving run-id sequence must be identical at any job count.
        let program = ccrypt_program();
        let trials = ccrypt_trials(96, 7, &CcryptTrialConfig::default());
        let mut config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(10));
        config.op_limit = 2_000;
        let serial = run_campaign(&program, &trials, &config).unwrap();
        assert!(serial.dropped > 0, "op limit must actually drop runs");
        assert!(serial.collector.len() < trials.len());
        for jobs in [2, 3, 8, 96, 200] {
            let parallel = run_campaign(&program, &trials, &config.with_jobs(jobs)).unwrap();
            assert_eq!(
                serial.collector.reports(),
                parallel.collector.reports(),
                "jobs {jobs}"
            );
            assert_eq!(serial.dropped, parallel.dropped, "jobs {jobs}");
        }
    }

    #[test]
    fn unconditional_campaign_borrows_instrumented_program() {
        // jobs > 1 with density None exercises the borrowed-executable
        // path under sharding.
        let program = ccrypt_program();
        let trials = ccrypt_trials(40, 3, &CcryptTrialConfig::default());
        let config = CampaignConfig::unconditional(Scheme::Returns);
        let serial = run_campaign(&program, &trials, &config).unwrap();
        let parallel = run_campaign(&program, &trials, &config.with_jobs(4)).unwrap();
        assert_eq!(serial.collector.reports(), parallel.collector.reports());
    }
}
