//! Randomized ccrypt trials (§3.2.3).
//!
//! "In lieu of a large user community, we generate many runs artificially
//! in the spirit of the Fuzz project.  Each run uses a randomly selected
//! set of present or absent files, randomized command line flags, and
//! randomized responses to ccrypt prompts including the occasional EOF."
//!
//! A trial is an input script for the `ccrypt` MiniC analogue; the
//! generator controls the probability that the script ends (EOF) exactly
//! at a confirmation prompt, which is the crash trigger.

use cbi_sampler::Pcg32;

/// Distribution parameters for ccrypt trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcryptTrialConfig {
    /// Probability a given output file already exists.
    pub p_exists: f64,
    /// Probability the run uses `-f` (no prompts at all).
    pub p_force: f64,
    /// Probability that, given at least one prompt, the input stream is
    /// truncated at a uniformly chosen prompt — the user hitting EOF.
    pub p_eof: f64,
    /// Probability a prompt is answered "yes" (1) rather than "no" (2).
    pub p_yes: f64,
    /// Files per run are uniform in `1..=max_files`.
    pub max_files: u64,
}

impl Default for CcryptTrialConfig {
    fn default() -> Self {
        CcryptTrialConfig {
            p_exists: 0.03,
            p_force: 0.3,
            p_yes: 0.7,
            p_eof: 0.85,
            max_files: 5,
        }
    }
}

/// Generates one trial's input script.
///
/// Token order matches the program's consumption order exactly: key seed,
/// force flag, file count, then per file its `exists` flag, length seed,
/// and (if it will prompt) the response — with possible truncation at a
/// chosen prompt.
pub fn ccrypt_trial(rng: &mut Pcg32, config: &CcryptTrialConfig) -> Vec<i64> {
    let mut script: Vec<i64> = Vec::new();
    script.push(rng.below(100_000) as i64); // key seed
    let force = i64::from(rng.next_f64() < config.p_force);
    script.push(force);
    let nfiles = 1 + rng.below(config.max_files);
    script.push(nfiles as i64);

    // Positions (token indices) at which a prompt response is consumed.
    let mut prompt_positions: Vec<usize> = Vec::new();
    for _ in 0..nfiles {
        let exists = i64::from(rng.next_f64() < config.p_exists);
        script.push(exists);
        script.push(rng.below(1000) as i64); // length seed
        if exists == 1 && force == 0 {
            prompt_positions.push(script.len());
            let response = if rng.next_f64() < config.p_yes { 1 } else { 2 };
            script.push(response);
        }
    }

    if !prompt_positions.is_empty() && rng.next_f64() < config.p_eof {
        // Truncate exactly at one of the prompts: everything from that
        // response onward is cut, so xreadline() hits EOF there.
        let k = rng.below(prompt_positions.len() as u64) as usize;
        script.truncate(prompt_positions[k]);
    }
    script
}

/// Generates `n` trials from a master seed.
pub fn ccrypt_trials(n: usize, seed: u64, config: &CcryptTrialConfig) -> Vec<Vec<i64>> {
    let mut rng = Pcg32::new(seed);
    (0..n).map(|_| ccrypt_trial(&mut rng, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::ccrypt_program;
    use cbi_vm::{CrashKind, RunOutcome, Vm};

    #[test]
    fn scripts_have_valid_header() {
        let trials = ccrypt_trials(50, 1, &CcryptTrialConfig::default());
        for t in &trials {
            assert!(t.len() >= 3, "{t:?}");
            assert!(t[1] == 0 || t[1] == 1, "force flag");
            assert!((1..=5).contains(&t[2]), "file count");
        }
    }

    #[test]
    fn uninstrumented_crash_rate_is_a_few_percent() {
        let program = ccrypt_program();
        let trials = ccrypt_trials(2000, 42, &CcryptTrialConfig::default());
        let mut crashes = 0;
        let mut successes = 0;
        for t in trials {
            let r = Vm::new(&program).with_input(t).run().unwrap();
            match r.outcome {
                RunOutcome::Crash(CrashKind::NullDeref) => crashes += 1,
                RunOutcome::Success(_) => successes += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(successes > 1800);
        let rate = crashes as f64 / 2000.0;
        assert!(
            (0.01..=0.08).contains(&rate),
            "crash rate {rate} ({crashes} crashes) outside the ccrypt band"
        );
    }

    #[test]
    fn eof_at_prompt_always_crashes() {
        // Hand-built script: one file that exists, no force, no response.
        let program = ccrypt_program();
        let script = vec![7, 0, 1, 1, 50];
        let r = Vm::new(&program).with_input(script).run().unwrap();
        assert_eq!(r.outcome, RunOutcome::Crash(CrashKind::NullDeref));
    }

    #[test]
    fn answered_prompt_succeeds() {
        let program = ccrypt_program();
        for response in [1, 2] {
            let script = vec![7, 0, 1, 1, 50, response];
            let r = Vm::new(&program).with_input(script).run().unwrap();
            assert!(
                r.outcome.is_success(),
                "response {response}: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn force_flag_never_prompts() {
        let program = ccrypt_program();
        // Force = 1, file exists, NO response provided: must still succeed.
        let script = vec![7, 1, 1, 1, 50];
        let r = Vm::new(&program).with_input(script).run().unwrap();
        assert!(r.outcome.is_success());
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let a = ccrypt_trials(20, 9, &CcryptTrialConfig::default());
        let b = ccrypt_trials(20, 9, &CcryptTrialConfig::default());
        assert_eq!(a, b);
        let c = ccrypt_trials(20, 10, &CcryptTrialConfig::default());
        assert_ne!(a, c);
    }
}
