//! Fleet study — community-scale throughput and detection economics.
//!
//! The paper's premise is that sampling makes instrumentation cheap
//! enough to deploy to a whole user community.  This study runs the
//! fleet simulator against a corpus entry with planted ground truth and
//! sweeps the sampling density, measuring what the community costs and
//! what it buys: client-runs/sec through the simulator, bytes on the
//! wire per accepted report, and the detection latency + regression
//! rank of the true predicate at each density.
//!
//! Usage: `fleet_study [clients] [runs] [seed]` (defaults 32 / 8000 /
//! 0xf1ee7); sweeps densities 1, 1/10, 1/100, 1/1000 with a mildly
//! lossy channel.  Writes `BENCH_fleet.json` at the repository root.

use cbi::{health_registry, HealthConfig, HealthMonitor};
use cbi_corpus::{generate_corpus, GenerateConfig};
use cbi_fleet::{run_corpus_fleet, ChannelSpec, FleetSpec};
use std::time::Instant;

const DENSITIES: [u64; 4] = [1, 10, 100, 1000];
const JOBS: usize = 8;
const POOL: usize = 256;

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: usize = args
        .next()
        .map(|a| a.parse().expect("clients must be a number"))
        .unwrap_or(32);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(8000);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0xf1ee7);

    let corpus = generate_corpus(&GenerateConfig {
        size: 4,
        seed: 7,
        trials: 32,
    })
    .expect("generate corpus");
    let entry = corpus
        .entries
        .iter()
        .find(|e| e.bug.deterministic())
        .unwrap_or_else(|| corpus.entries.first().expect("non-empty corpus"));
    println!("== fleet throughput and detection economics ==");
    println!(
        "entry {} ({}, {}), {clients} clients, {runs} community runs, jobs {JOBS}",
        entry.bug.id,
        entry.bug.operator_label(),
        entry.bug.primary().trigger
    );
    println!();
    println!("density   runs/sec   bytes/report   accepted   latency      rank");

    let mut rows = Vec::new();
    for d in DENSITIES {
        let mut spec = FleetSpec::new(clients, runs);
        spec.densities = vec![(d, 1.0)];
        spec.zipf_exponent = 1.0;
        spec.batch_size = 16;
        spec.epoch_len = (runs as u64 / 8).max(1);
        spec.channel = ChannelSpec {
            drop: 0.05,
            truncate: 0.02,
            bit_flip: 0.01,
            max_retries: 3,
            backoff_base: 1,
        };
        spec.seed = seed;
        spec.jobs = JOBS;

        let start = Instant::now();
        let report = run_corpus_fleet(entry, POOL, &spec).expect("run fleet");
        let elapsed = start.elapsed().as_secs_f64();
        let s = &report.summary;

        let runs_per_sec = s.runs as f64 / elapsed;
        let bytes_per_report = if s.accepted_reports > 0 {
            s.bytes_accepted as f64 / s.accepted_reports as f64
        } else {
            0.0
        };
        let latency = s.target_latency.map_or("-".to_string(), |l| l.to_string());
        let rank = report
            .target_rank
            .map_or("-".to_string(), |r| r.to_string());
        println!(
            "1/{d:<7} {runs_per_sec:>9.0} {bytes_per_report:>14.1} {:>10} {latency:>9} {rank:>9}",
            s.accepted_reports
        );
        rows.push(format!(
            "    {{\"density\": \"1/{d}\", \"runs_per_sec\": {runs_per_sec:.1}, \"bytes_per_report\": {bytes_per_report:.2}, \"accepted_reports\": {}, \"bytes_sent\": {}, \"lost_batches\": {}, \"retries\": {}, \"target_latency\": {}, \"target_rank\": {}}}",
            s.accepted_reports,
            s.bytes_sent,
            s.lost_batches,
            s.retries,
            s.target_latency.map_or("null".to_string(), |l| l.to_string()),
            report.target_rank.map_or("null".to_string(), |r| r.to_string()),
        ));
    }

    // Monitor-path overhead: the same fleet with health monitoring off
    // (plain run) versus on (health pass + deployment-metric registry +
    // both exports rendered).  The monitor path budgets <2% overhead;
    // the row records what it actually costs.
    let mut spec = FleetSpec::new(clients, runs);
    spec.densities = vec![(100, 1.0)];
    spec.zipf_exponent = 1.0;
    spec.batch_size = 16;
    spec.epoch_len = (runs as u64 / 8).max(1);
    spec.channel = ChannelSpec {
        drop: 0.05,
        truncate: 0.02,
        bit_flip: 0.01,
        max_retries: 3,
        backoff_base: 1,
    };
    spec.seed = seed;
    spec.jobs = JOBS;
    const REPS: usize = 3;
    let mut baseline_ms = f64::INFINITY;
    let mut monitored_ms = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let report = run_corpus_fleet(entry, POOL, &spec).expect("run fleet");
        baseline_ms = baseline_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box(report.summary.accepted_reports);

        let start = Instant::now();
        let report = run_corpus_fleet(entry, POOL, &spec).expect("run fleet");
        let mut monitor = HealthMonitor::new(HealthConfig::default(), true);
        monitor.observe_all(&report.epochs);
        let registry = health_registry(&report.aggregator, &monitor);
        let mut prom = Vec::new();
        cbi::telemetry::export::write_prometheus(&registry, &mut prom).expect("prometheus");
        let mut timeline = Vec::new();
        cbi::telemetry::export::write_timeline(&registry, &mut timeline).expect("timeline");
        monitored_ms = monitored_ms.min(start.elapsed().as_secs_f64() * 1e3);
        std::hint::black_box((prom.len(), timeline.len(), monitor.events().len()));
    }
    let overhead_pct = (monitored_ms / baseline_ms - 1.0) * 100.0;
    println!();
    println!(
        "monitor path: baseline {baseline_ms:.0} ms, monitored {monitored_ms:.0} ms \
         ({overhead_pct:+.2}% overhead, budget <2%)"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"fleet\",\n  \"entry\": \"{}\",\n  \"clients\": {clients},\n  \"runs\": {runs},\n  \"pool\": {POOL},\n  \"seed\": {seed},\n  \"jobs\": {JOBS},\n  \"densities\": [\n{}\n  ],\n  \"monitor_overhead\": {{\"baseline_ms\": {baseline_ms:.1}, \"monitored_ms\": {monitored_ms:.1}, \"overhead_pct\": {overhead_pct:.2}, \"budget_pct\": 2.0}}\n}}\n",
        entry.bug.id,
        rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(out, json).expect("write BENCH_fleet.json");
    println!();
    println!("wrote {out}");
}
