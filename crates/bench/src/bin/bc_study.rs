//! §3.3.3 — Statistical debugging of bc with ℓ₁ logistic regression.
//!
//! The paper collects 4390 runs at 1/1000 sampling (crash rate ≈ ¼) over
//! 30,150 scalar-pair counters, trains an ℓ₁-regularized logistic model
//! (λ = 0.3 by cross-validation), and finds the top-ranked coefficients
//! all point at large `indx` on the buggy zeroing loop of `more_arrays()`
//! — while the literal smoking gun `indx > a_count` ranks only 240th.
//!
//! Our bc analogue is smaller, so we sample at 1/100 over 4390 runs by
//! default.  Usage: `bc_study [runs] [seed]`.

use cbi::prelude::*;
use cbi::workloads::{bc_program, bc_trials, BcTrialConfig};
use cbi::RegressionConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(4390);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(106);

    let program = bc_program();
    let trials = bc_trials(runs, seed, &BcTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::ScalarPairs, SamplingDensity::one_in(100));
    let result = run_campaign(&program, &trials, &config).expect("campaign");

    println!("== bc statistical debugging (paper §3.3.3) ==");
    println!(
        "scalar-pair sites: {} ({} counters); paper: 10,050 sites (30,150 counters)",
        result.instrumented.sites.len(),
        result.instrumented.sites.total_counters()
    );
    println!(
        "runs: {} total, {} crashes ({:.1}%); paper: 4390 runs, ~25% crashes",
        result.collector.len(),
        result.collector.failure_count(),
        100.0 * result.collector.failure_count() as f64 / result.collector.len() as f64,
    );

    let study = cbi::regress(&result, &RegressionConfig::paper_proportions(runs))
        .expect("bc study campaign yields reports");
    println!(
        "effective features after universal-falsehood filtering: {} of {} (paper: 2908 of 30,150)",
        study.effective_features, study.total_counters
    );
    println!(
        "cross-validated lambda: {} (paper: 0.3); test accuracy: {:.3}",
        study.lambda, study.test_accuracy
    );

    println!();
    println!("top predicates by |beta| (paper: five `indx > …` at storage.c:176):");
    for (i, (name, beta)) in study.top(8).iter().enumerate() {
        println!("  {:>2}. beta={beta:+.4}  {name}", i + 1);
    }

    println!();
    match study.rank_of("indx > a_count") {
        Some(rank) => println!(
            "literal smoking gun `indx > a_count` ranked #{} of {} (paper: #240)",
            rank + 1,
            study.ranked.len()
        ),
        None => println!("`indx > a_count` not among surviving features"),
    }
    let top_is_buggy_line = study
        .top(5)
        .iter()
        .all(|(name, _)| name.contains("more_arrays") && name.contains("indx"));
    println!("all top-5 predicates point at `indx` in more_arrays(): {top_is_buggy_line}");
}
