//! Ablations of the design choices called out in DESIGN.md:
//!
//! 1. geometric countdowns vs periodic / uniform-interval triggers
//!    (§2.1, §4) — statistical fairness over rotating sites;
//! 2. acyclic-region threshold checks vs the devolved per-site pattern
//!    (§2.2, §3.2.5) — sampled overhead;
//! 3. local countdown + coalescing vs global countdown (§2.4);
//! 4. interprocedural weightless analysis vs separate compilation (§2.3).

use cbi::instrument::{CountdownStorage, Scheme, TransformOptions};
use cbi::sampler::fairness::{chi_square_critical_001, rotate_sites};
use cbi::sampler::{Geometric, Periodic, SamplingDensity, UniformInterval};
use cbi::workloads::{benchmark, measure_overhead, OverheadConfig};

fn main() {
    fairness_ablation();
    println!();
    transform_ablation();
}

fn fairness_ablation() {
    println!("== ablation 1: sampling trigger fairness (4 rotating sites) ==");
    println!(
        "{:<22} {:>10} {:>12} {:>8}",
        "trigger", "chi-square", "max/min", "fair?"
    );
    let crit = chi_square_critical_001(3);
    let mut geo = Geometric::new(SamplingDensity::one_in(10), 7);
    let mut per = Periodic::new(10);
    let mut uni = UniformInterval::new(8, 12, 7);
    let rows: Vec<(&str, cbi::sampler::fairness::SiteCounts)> = vec![
        ("geometric (ours)", rotate_sites(&mut geo, 4, 200_000)),
        ("periodic (A&R)", rotate_sites(&mut per, 4, 200_000)),
        ("uniform 8..12 (DCPI)", rotate_sites(&mut uni, 4, 200_000)),
    ];
    for (name, counts) in rows {
        let chi = counts.chi_square();
        println!(
            "{:<22} {:>10.1} {:>12.2} {:>8}",
            name,
            chi,
            counts.max_min_ratio(),
            if chi < crit { "yes" } else { "NO" }
        );
    }
    println!("(critical value at significance 0.001: {crit:.1})");
}

fn transform_ablation() {
    println!("== ablation 2-4: transformation variants on `em3d` (1/1000) ==");
    let b = benchmark("em3d").expect("benchmark exists");
    let density = vec![SamplingDensity::one_in(1000)];

    let variants: Vec<(&str, TransformOptions)> = vec![
        ("full (default)", TransformOptions::default()),
        (
            "no coalescing",
            TransformOptions {
                coalesce: false,
                ..TransformOptions::default()
            },
        ),
        (
            "global countdown",
            TransformOptions {
                countdown: CountdownStorage::Global,
                ..TransformOptions::default()
            },
        ),
        (
            "devolved (no regions)",
            TransformOptions {
                regions: false,
                ..TransformOptions::default()
            },
        ),
        (
            "separate compilation",
            TransformOptions {
                interprocedural: false,
                ..TransformOptions::default()
            },
        ),
    ];

    println!("{:<24} {:>10} {:>10}", "variant", "always", "1/1000");
    for (name, transform) in variants {
        let config = OverheadConfig {
            scheme: Scheme::Checks,
            transform,
            ..OverheadConfig::default()
        };
        let m = measure_overhead(b.name, &b.program, &[], &density, &config)
            .expect("overhead measurement");
        println!(
            "{:<24} {:>10.3} {:>10.3}",
            name, m.unconditional, m.sampled[0].1
        );
    }
    println!();
    println!("expected ordering: default <= each ablated variant at 1/1000.");
}
