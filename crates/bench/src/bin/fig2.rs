//! Figure 2 — Progressive elimination by (successful counterexample) as
//! successful runs accumulate.
//!
//! Prints the mean and standard deviation of the surviving candidate
//! count for randomized subsets of successful runs in steps of fifty,
//! repeated one hundred times, exactly as in §3.2.4.
//! Usage: `fig2 [runs] [seed]`.

use cbi::prelude::*;
use cbi::stats::elimination::{apply, survivors};
use cbi::stats::{progressive_elimination, ProgressiveConfig};
use cbi::workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(3000);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(42);

    let program = ccrypt_program();
    let trials = ccrypt_trials(runs, seed, &CcryptTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(100));
    let result = run_campaign(&program, &trials, &config).expect("campaign");

    // Candidates: counters ever observed true on any run (§3.2.4 starts
    // from the 141 universal-falsehood survivors).
    let stats: SufficientStats = result.collector.reports().iter().cloned().collect();
    let groups = result.site_groups();
    let uf = apply(&stats, Strategy::UniversalFalsehood, &groups);
    let candidates = survivors(&uf);

    println!("== Figure 2: progressive elimination by successful counterexample ==");
    println!(
        "{} successful runs, {} starting candidates (paper: 2902 runs, 141 candidates)",
        result.collector.success_count(),
        candidates.len()
    );
    println!();
    println!("{:>6}  {:>8}  {:>8}", "runs", "mean", "stddev");
    let points = progressive_elimination(
        result.collector.reports(),
        &candidates,
        &ProgressiveConfig::default(),
    );
    for p in &points {
        println!("{:>6}  {:>8.2}  {:>8.2}", p.runs, p.mean, p.std_dev);
    }

    let first = points.first().expect("at least one point");
    let last = points.last().expect("at least one point");
    println!();
    println!(
        "candidate set shrank from {:.1} (at {} runs) to {:.1} (at {} runs)",
        first.mean, first.runs, last.mean, last.runs
    );
}
