//! Isolation study — the §3.3 multi-bug elimination loop measured
//! against planted ground truth.
//!
//! A seeded fault injector plants 2 or 3 interacting deterministic bugs
//! per program; per entry, sampling density, and statistical scorer the
//! study streams a campaign into a failure index, runs the iterative
//! isolation loop, and scores the emitted bug clusters: run-weighted
//! cluster purity, mean per-bug rank of the true predicates in the
//! pre-isolation ranking, and iterations-to-isolation.  The campaign
//! per entry × density is shared across every scorer — only the ranking
//! arithmetic differs — so the grid cost is campaigns + cheap integer
//! re-ranks.
//!
//! Usage: `isolate_study [size] [seed] [trials]` (defaults 4 / 0xc0de /
//! 96); sweeps bug counts {2, 3} × densities {1, 1/10, 1/100} × every
//! registered scorer.  Writes `BENCH_isolate.json` at the repository
//! root.

use cbi_corpus::{evaluate_multi, generate_multi_corpus, MultiEvalConfig, MultiGenerateConfig};
use cbi_scoring::SCORER_NAMES;
use std::time::Instant;

const DENSITIES: [u64; 3] = [1, 10, 100];
const BUG_COUNTS: [usize; 2] = [2, 3];
const JOBS: usize = 8;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args
        .next()
        .map(|a| a.parse().expect("size must be a number"))
        .unwrap_or(4);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0xc0de);
    let trials: usize = args
        .next()
        .map(|a| a.parse().expect("trials must be a number"))
        .unwrap_or(96);

    println!("== multi-bug iterative isolation (planted ground truth) ==");
    println!(
        "{size} entries per bug count, {trials} trials each, seed {seed:#x}, jobs {JOBS}"
    );
    println!();
    println!(
        "{:<6} {:<11} {:>8} {:>7} {:>9} {:>10} {:>8} {:>9}",
        "bugs", "scorer", "density", "purity", "recovered", "mean-rank", "iters", "runs/sec"
    );

    let mut rows = Vec::new();
    for bugs in BUG_COUNTS {
        let start = Instant::now();
        let corpus = generate_multi_corpus(&MultiGenerateConfig {
            size,
            seed,
            trials,
            bugs_per_entry: bugs,
        })
        .expect("generate multi-bug corpus");
        let generation = start.elapsed();
        for note in &corpus.log {
            eprintln!("note: {note}");
        }
        eprintln!(
            "bugs={bugs}: {} entries generated in {:.2}s",
            corpus.entries.len(),
            generation.as_secs_f64()
        );

        let start = Instant::now();
        let report = evaluate_multi(
            &corpus.entries,
            &MultiEvalConfig {
                densities: DENSITIES.to_vec(),
                scorers: SCORER_NAMES.iter().map(|s| s.to_string()).collect(),
                jobs: JOBS,
                ..MultiEvalConfig::default()
            },
        )
        .expect("evaluate multi-bug corpus");
        let evaluation = start.elapsed();

        // Campaign runs executed: one attribution replay plus one
        // campaign per density, each over every entry's trial set.
        let runs_per_entry: u64 = report
            .scores
            .iter()
            .filter(|s| s.scorer == SCORER_NAMES[0] && s.density == DENSITIES[0])
            .map(|s| s.failures + s.successes)
            .sum();
        let total_runs = runs_per_entry * (DENSITIES.len() as u64 + 1);
        let runs_per_sec = total_runs as f64 / evaluation.as_secs_f64();

        for scorer in SCORER_NAMES {
            for d in DENSITIES {
                let scores: Vec<_> = report
                    .scores
                    .iter()
                    .filter(|s| s.scorer == *scorer && s.density == d)
                    .collect();
                let entries = scores.len();
                let total_bugs: usize = scores.iter().map(|s| s.bugs).sum();
                let recovered: usize = scores.iter().map(|s| s.recovered()).sum();
                let clustered: u64 = scores
                    .iter()
                    .map(|s| s.failures - s.unexplained as u64)
                    .sum();
                let purity_weighted: u64 = scores
                    .iter()
                    .map(|s| s.purity_mille * (s.failures - s.unexplained as u64))
                    .sum();
                let purity = if clustered == 0 {
                    0
                } else {
                    purity_weighted / clustered
                };
                let rank_sum: usize = scores.iter().map(|s| s.rank_sum()).sum();
                let mean_rank = rank_sum as f64 / total_bugs as f64;
                let iters: usize = scores.iter().map(|s| s.iterations).sum();
                let mean_iters = iters as f64 / entries as f64;
                println!(
                    "{:<6} {:<11} {:>8} {:>7} {:>9} {:>10.2} {:>8.2} {:>9.0}",
                    bugs,
                    scorer,
                    format!("1/{d}"),
                    purity,
                    format!("{recovered}/{total_bugs}"),
                    mean_rank,
                    mean_iters,
                    runs_per_sec
                );
                rows.push(format!(
                    "    {{\"bugs\": {bugs}, \"scorer\": \"{scorer}\", \"density\": \"1/{d}\", \
                     \"entries\": {entries}, \"purity_mille\": {purity}, \
                     \"recovered\": {recovered}, \"planted\": {total_bugs}, \
                     \"mean_rank\": {mean_rank:.3}, \"mean_iterations\": {mean_iters:.3}, \
                     \"runs_per_sec\": {runs_per_sec:.1}}}"
                ));
            }
        }
        println!();
    }

    let json = format!(
        "{{\n  \"benchmark\": \"isolate\",\n  \"entries_per_bug_count\": {size},\n  \
         \"seed\": {seed},\n  \"trials\": {trials},\n  \"jobs\": {JOBS},\n  \
         \"scorers\": [{}],\n  \"grid\": [\n{}\n  ]\n}}\n",
        SCORER_NAMES
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", "),
        rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_isolate.json");
    std::fs::write(out, json).expect("write BENCH_isolate.json");
    println!("wrote {out}");
}
