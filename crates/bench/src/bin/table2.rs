//! Table 2 — Relative performance of unconditional vs sampled
//! instrumentation.
//!
//! Columns: the "always" build (unconditional checks) and sampling at
//! densities 1/100, 1/1000, 1/10⁴, 1/10⁶, all as op-count ratios against
//! the instrumentation-free baseline.  Values > 1 are slowdowns, exactly
//! like the paper's table.

use cbi::workloads::{all_benchmarks, measure_overhead, OverheadConfig};
use cbi_bench::table2_densities;

fn main() {
    let densities = table2_densities();
    println!("== Table 2: relative performance (ops vs baseline) ==");
    println!(
        "{:<10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "always", "1/100", "1/1000", "1/10^4", "1/10^6"
    );
    let mut sampled_beats_always = 0;
    let mut rows = 0;
    for b in all_benchmarks() {
        let m = measure_overhead(
            b.name,
            &b.program,
            &[],
            &densities,
            &OverheadConfig::default(),
        )
        .expect("overhead measurement");
        println!(
            "{:<10} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            m.name, m.unconditional, m.sampled[0].1, m.sampled[1].1, m.sampled[2].1, m.sampled[3].1
        );
        rows += 1;
        if m.sampled[0].1 < m.unconditional {
            sampled_beats_always += 1;
        }
    }
    println!();
    println!(
        "benchmarks where 1/100 sampling beats unconditional: {sampled_beats_always}/{rows} \
         (paper: more than two thirds)"
    );
}
