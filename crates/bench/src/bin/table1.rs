//! Table 1 — Static metrics for the CCured-style benchmarks.
//!
//! For each benchmark: total functions, weightless functions, functions
//! with sites, and (over site-containing functions) average sites,
//! threshold check points, and threshold weight.

use cbi::instrument::{apply_sampling, instrument, Scheme, StaticMetrics, TransformOptions};
use cbi::workloads::all_benchmarks;

fn main() {
    println!("== Table 1: static metrics (checks scheme, whole-program) ==");
    println!(
        "{:<10} {:>6} {:>11} {:>9} {:>8} {:>8} {:>8}",
        "benchmark", "total", "weightless", "has sites", "sites", "checks", "weight"
    );
    for b in all_benchmarks() {
        let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
        let (_, stats) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        let m = StaticMetrics::from_stats(b.name, &inst.program, &stats);
        println!(
            "{:<10} {:>6} {:>11} {:>9} {:>8.1} {:>8.1} {:>8.1}",
            m.benchmark,
            m.total_functions,
            m.weightless,
            m.with_sites,
            m.avg_sites,
            m.avg_threshold_checks,
            m.avg_threshold_weight
        );
    }
    println!();
    println!("paper shape: weightless < total; avg threshold weight > 2 indicates");
    println!("good amortization of countdown checks over multiple sites.");
}
