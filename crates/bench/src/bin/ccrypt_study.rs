//! §3.2.3 — Bug isolation in ccrypt using predicate elimination.
//!
//! The paper collects 2990 runs at 1/1000 sampling (88 crashes) and
//! reports how many candidate predicates each elimination strategy leaves:
//! 141 / 132 / 45 / 1571 of 1710 counters, with the combination of
//! (universal falsehood) and (successful counterexample) leaving exactly
//! two — `file_exists() > 0` and `xreadline() == 0`.
//!
//! Our analogue is far smaller than ccrypt-1.2 (dozens of call sites, not
//! 570), so each run crosses the decisive sites fewer times; we compensate
//! with 1/100 sampling over 6000 runs, keeping the crash-rate and analysis
//! pipeline identical.  Usage: `ccrypt_study [runs] [seed]`.

use cbi::prelude::*;
use cbi::workloads::{ccrypt_program, ccrypt_trials, CcryptTrialConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: usize = args
        .next()
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(6000);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(42);

    let program = ccrypt_program();
    let trials = ccrypt_trials(runs, seed, &CcryptTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(100));
    let result = run_campaign(&program, &trials, &config).expect("campaign");

    let total = result.instrumented.sites.total_counters();
    println!("== ccrypt predicate elimination (paper §3.2.3) ==");
    println!(
        "sites: {} ({} counters); paper: 570 sites (1710 counters)",
        result.instrumented.sites.len(),
        total
    );
    println!(
        "runs: {} total, {} crashes ({:.1}%); paper: 2990 runs, 88 crashes (2.9%)",
        result.collector.len(),
        result.collector.failure_count(),
        100.0 * result.collector.failure_count() as f64 / result.collector.len() as f64,
    );

    let report = cbi::eliminate(&result);
    let [uf, cov, ex, sc] = report.independent_survivors;
    println!();
    println!("strategy                        survivors   (paper)");
    println!("universal falsehood             {uf:>9}   (141)");
    println!("lack of failing coverage        {cov:>9}   (132)");
    println!("lack of failing example         {ex:>9}   (45)");
    println!("successful counterexample       {sc:>9}   (1571)");
    println!();
    println!(
        "combined (falsehood ∧ counterexample): {} predicates (paper: 2)",
        report.combined.len()
    );
    for name in &report.combined_names {
        println!("  {name}");
    }

    let hit_xreadline = report
        .combined_names
        .iter()
        .any(|n| n.contains("xreadline() == 0"));
    let hit_exists = report
        .combined_names
        .iter()
        .any(|n| n.contains("file_exists() > 0"));
    println!();
    println!("smoking gun `xreadline() == 0` isolated: {hit_xreadline}");
    println!("correlated `file_exists() > 0` isolated: {hit_exists}");
}
