//! Corpus study — isolation quality against planted ground truth.
//!
//! The paper evaluates its analyses on programs whose bugs are known in
//! advance (ccrypt's EOF crash, bc's array overrun).  This study scales
//! that idea: a seeded fault injector plants one labeled bug per program,
//! a campaign runs per corpus entry at each sampling density, and the
//! scores say how often the *true* predicate survives §3.2 elimination
//! and where it lands in the §3.3 regression ordering — survival rate,
//! mean rank, recall@k, and Doric-style wasted effort (rank / counters).
//!
//! Usage: `corpus_study [size] [seed] [trials]` (defaults 100 / 0xc0de /
//! 48); sweeps densities 1, 1/10, 1/100, 1/1000.  Writes
//! `BENCH_corpus.json` at the repository root.

use cbi_corpus::{evaluate, generate_corpus, EvalConfig, GenerateConfig};
use std::collections::BTreeMap;
use std::time::Instant;

const DENSITIES: [u64; 4] = [1, 10, 100, 1000];
const JOBS: usize = 8;

fn main() {
    let mut args = std::env::args().skip(1);
    let size: usize = args
        .next()
        .map(|a| a.parse().expect("size must be a number"))
        .unwrap_or(100);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0xc0de);
    let trials: usize = args
        .next()
        .map(|a| a.parse().expect("trials must be a number"))
        .unwrap_or(48);

    let start = Instant::now();
    let corpus = generate_corpus(&GenerateConfig { size, seed, trials }).expect("generate corpus");
    let generation = start.elapsed();
    for note in &corpus.log {
        eprintln!("note: {note}");
    }

    let deterministic = corpus
        .entries
        .iter()
        .filter(|e| e.bug.deterministic())
        .count();
    println!("== corpus isolation quality (planted ground truth) ==");
    println!(
        "entries: {} ({} deterministic, {} conditional), {} trials each, seed {seed:#x}",
        corpus.entries.len(),
        deterministic,
        corpus.entries.len() - deterministic,
        trials,
    );

    let start = Instant::now();
    let report = evaluate(
        &corpus.entries,
        &EvalConfig {
            densities: DENSITIES.to_vec(),
            jobs: JOBS,
            ..EvalConfig::default()
        },
    )
    .expect("evaluate corpus");
    let evaluation = start.elapsed();
    println!(
        "generation {:.2}s, evaluation {:.2}s ({} campaigns, jobs {JOBS})",
        generation.as_secs_f64(),
        evaluation.as_secs_f64(),
        report.scores.len(),
    );

    // Operator × density → survival rate / mean rank, operators in
    // first-seen manifest order.
    let mut op_order: Vec<String> = Vec::new();
    let mut cells: BTreeMap<(usize, u64), (usize, usize, usize)> = BTreeMap::new();
    for s in &report.scores {
        let op = match op_order.iter().position(|o| o == &s.operator) {
            Some(i) => i,
            None => {
                op_order.push(s.operator.clone());
                op_order.len() - 1
            }
        };
        let cell = cells.entry((op, s.density)).or_insert((0, 0, 0));
        cell.0 += 1;
        cell.1 += usize::from(s.survived);
        cell.2 += s.rank;
    }
    println!();
    println!("operator x density -> survival rate / mean rank");
    print!("{:<24}", "operator");
    for d in DENSITIES {
        print!("  {:>13}", format!("1/{d}"));
    }
    println!();
    for (i, op) in op_order.iter().enumerate() {
        print!("{op:<24}");
        for d in DENSITIES {
            let (n, surv, rank_sum) = cells[&(i, d)];
            print!(
                "  {:>13}",
                format!(
                    "{:.2} / {:.1}",
                    surv as f64 / n as f64,
                    rank_sum as f64 / n as f64
                )
            );
        }
        println!();
    }

    // Per-density aggregates across all operators.
    println!();
    println!("density   survival   mean-rank   recall@5   wasted-effort");
    let mut density_rows = Vec::new();
    for d in DENSITIES {
        let scores: Vec<_> = report.scores.iter().filter(|s| s.density == d).collect();
        let n = scores.len() as f64;
        let survival = scores.iter().filter(|s| s.survived).count() as f64 / n;
        let mean_rank = scores.iter().map(|s| s.rank as f64).sum::<f64>() / n;
        let recall5 = scores.iter().filter(|s| s.rank < 5).count() as f64 / n;
        let wasted = scores
            .iter()
            .map(|s| s.rank as f64 / s.counters as f64)
            .sum::<f64>()
            / n;
        println!("1/{d:<7} {survival:>8.2} {mean_rank:>11.2} {recall5:>10.2} {wasted:>15.3}");
        density_rows.push(format!(
            "    {{\"density\": \"1/{d}\", \"survival_rate\": {survival:.4}, \"mean_rank\": {mean_rank:.3}, \"recall_at_5\": {recall5:.4}, \"wasted_effort\": {wasted:.4}}}"
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"corpus\",\n  \"entries\": {},\n  \"deterministic\": {deterministic},\n  \"seed\": {seed},\n  \"trials\": {trials},\n  \"jobs\": {JOBS},\n  \"generation_seconds\": {:.6},\n  \"evaluation_seconds\": {:.6},\n  \"densities\": [\n{}\n  ]\n}}\n",
        corpus.entries.len(),
        generation.as_secs_f64(),
        evaluation.as_secs_f64(),
        density_rows.join(",\n"),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_corpus.json");
    std::fs::write(out, json).expect("write BENCH_corpus.json");
    println!();
    println!("wrote {out}");
}
