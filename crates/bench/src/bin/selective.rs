//! §3.1.2 — Statically selective sampling.
//!
//! Build one executable per site-containing function, each keeping only
//! that function's instrumentation.  The paper reports: full executables
//! grow 13%–149%, single-function variants average 12% (Olden) / 6%
//! (SPEC); at 1/1000 sampling, 94% of variants stay under 5% slowdown and
//! the worst is under 12%.

use cbi::instrument::Instrumented;
use cbi::instrument::{
    apply_sampling, code_growth, instrument, single_function_variants, strip_sites, Scheme,
    TransformOptions,
};
use cbi::sampler::SamplingDensity;
use cbi::workloads::{all_benchmarks, measure_overhead_instrumented, OverheadConfig};

fn main() {
    let density = vec![SamplingDensity::one_in(1000)];
    let mut variant_growths: Vec<f64> = Vec::new();
    let mut variant_overheads: Vec<f64> = Vec::new();
    let mut full_growths: Vec<(String, f64)> = Vec::new();

    for b in all_benchmarks() {
        let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
        let baseline = strip_sites(&inst.program);
        let (full, _) =
            apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
        full_growths.push((b.name.to_string(), code_growth(&baseline, &full)));

        for variant in single_function_variants(&inst) {
            let (transformed, _) = apply_sampling(&variant.program, &TransformOptions::default())
                .expect("variant transform");
            variant_growths.push(code_growth(&baseline, &transformed));

            // Overhead of this variant at 1/1000, sharing the site table.
            let vinst = Instrumented {
                program: variant.program.clone(),
                sites: inst.sites.clone(),
                scheme: inst.scheme,
            };
            let m = measure_overhead_instrumented(
                &format!("{}::{}", b.name, variant.function),
                &vinst,
                &[],
                &density,
                &OverheadConfig::default(),
            )
            .expect("variant overhead");
            variant_overheads.push(m.sampled[0].1 - 1.0);
        }
    }

    println!("== §3.1.2: statically selective sampling ==");
    println!("full-program code growth (paper: 13%-149%):");
    for (name, g) in &full_growths {
        println!("  {name:<10} {:>6.1}%", g * 100.0);
    }

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    println!();
    println!(
        "single-function variants: {} built, mean growth {:.1}% (paper: 12%/6%)",
        variant_growths.len(),
        mean(&variant_growths) * 100.0
    );
    let under5 = variant_overheads.iter().filter(|&&o| o < 0.05).count();
    let worst = variant_overheads.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "variants under 5% slowdown at 1/1000: {under5}/{} = {:.0}% (paper: 94%)",
        variant_overheads.len(),
        100.0 * under5 as f64 / variant_overheads.len() as f64
    );
    println!(
        "worst variant slowdown: {:.1}% (paper: < 12%)",
        worst * 100.0
    );
}
