//! Serve study — production ingest throughput, latency, and recovery.
//!
//! The paper's central server must absorb feedback from an entire user
//! community ("230,258 runs every nineteen minutes", §3.1.3).  This
//! study drives the `cbi-serve` TCP ingest server at community scale
//! with pre-encoded report batches: ~100k simulated clients worth of
//! envelopes multiplexed over a fixed set of connections, 10M+ reports
//! in total.  It measures, per shard count, reports/sec ingested and
//! the client-observed ingest latency distribution (integer µs
//! buckets), asserts the folded analysis is byte-identical at shards
//! 1/2/4, and runs a recovery-after-kill pass: ingest half the batches
//! into a journal, tear the final record, resume, retransmit
//! everything, and pin the resumed analysis byte-identical to an
//! uninterrupted run.
//!
//! Usage: `serve_study [clients] [reports] [seed]` (defaults 100000 /
//! 10000000 / 0x5e12e).  Writes `BENCH_serve.json` at the repository
//! root.

use cbi::prelude::*;
use cbi::reports::frame::read_ack;
use cbi::reports::{wire, AckVerdict, BatchEnvelope};
use cbi_serve::{
    render_analysis, FsyncPolicy, IngestCore, ServeConfig, ServerOptions, TcpIngestServer,
};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Instant;

const RARE: &str = "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
     fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }";

const BATCH_SIZE: usize = 16;
const PAYLOAD_VARIANTS: usize = 64;
const CONNECTIONS: usize = 16;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Pre-encodes a cycle of distinct batch payloads so the hot loop only
/// clones bytes: the study measures the server, not the simulator.
fn payloads(layout_hash: u64, counters: usize, seed: u64) -> Vec<Vec<u8>> {
    (0..PAYLOAD_VARIANTS)
        .map(|v| {
            let reports: Vec<Report> = (0..BATCH_SIZE)
                .map(|i| {
                    let run = (v * BATCH_SIZE + i) as u64;
                    let label = if (run + seed).is_multiple_of(10) {
                        Label::Failure
                    } else {
                        Label::Success
                    };
                    let values = (0..counters)
                        .map(|c| (run + seed).wrapping_mul(c as u64 + 1) % 4)
                        .collect();
                    Report::new(run, label, values)
                })
                .collect();
            wire::encode_reports(&reports, layout_hash, counters).expect("encode payload")
        })
        .collect()
}

/// The `b`-th envelope of the stream: batches round-robin over the
/// simulated client population, so (client, seq) is unique.
fn envelope(b: u64, clients: u64, payloads: &[Vec<u8>]) -> BatchEnvelope {
    BatchEnvelope::new(
        b % clients,
        b / clients,
        0,
        payloads[(b % payloads.len() as u64) as usize].clone(),
    )
}

struct SocketRow {
    shards: usize,
    ingest_secs: f64,
    fold_secs: f64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    shed: u64,
    rendered: String,
}

fn run_socket(
    sites: &SiteTable,
    shards: usize,
    clients: u64,
    batches: u64,
    epoch_len: u64,
    payloads: &[Vec<u8>],
) -> SocketRow {
    let config = ServeConfig {
        shards,
        queue_cap: 1024,
        epoch_len,
        ..ServeConfig::default()
    };
    let core = IngestCore::new(sites.clone(), config).expect("core");
    let server = TcpIngestServer::bind(
        core,
        "127.0.0.1:0",
        ServerOptions {
            acceptors: CONNECTIONS,
            max_clients: CONNECTIONS as u64,
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.run().expect("serve"));

    let ingest_start = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNECTIONS as u64)
            .map(|conn| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
                    let mut lat = Vec::new();
                    let mut b = conn;
                    while b < batches {
                        let env = envelope(b, clients, payloads);
                        let bytes = env.encode();
                        let start = Instant::now();
                        loop {
                            stream.write_all(&bytes).expect("send");
                            let ack = read_ack(&mut reader)
                                .expect("ack")
                                .expect("server closed early");
                            match ack.verdict {
                                AckVerdict::Accepted | AckVerdict::Duplicate => break,
                                AckVerdict::Overloaded => continue,
                                other => panic!("unexpected verdict {other:?}"),
                            }
                        }
                        lat.push(start.elapsed().as_micros() as u64);
                        b += CONNECTIONS as u64;
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let ingest_secs = ingest_start.elapsed().as_secs_f64();

    let fold_start = Instant::now();
    let outcome = server_thread.join().expect("server thread");
    let fold_secs = fold_start.elapsed().as_secs_f64();
    assert_eq!(outcome.summary.batches, batches, "every batch must commit");

    latencies.sort_unstable();
    let q = |f: usize, of: usize| latencies[(latencies.len() * f / of).min(latencies.len() - 1)];
    SocketRow {
        shards,
        ingest_secs,
        fold_secs,
        p50_us: q(50, 100),
        p99_us: q(99, 100),
        max_us: *latencies.last().expect("nonempty"),
        shed: outcome.summary.shed,
        rendered: render_analysis(&outcome.aggregator, 10),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let clients: u64 = args
        .next()
        .map(|a| a.parse().expect("clients must be a number"))
        .unwrap_or(100_000);
    let reports: u64 = args
        .next()
        .map(|a| a.parse().expect("reports must be a number"))
        .unwrap_or(10_000_000);
    let seed: u64 = args
        .next()
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0x5e12e);

    let program = parse(RARE).expect("parse");
    resolve(&program).expect("resolve");
    let inst = instrument(&program, Scheme::Returns).expect("instrument");
    let sites = inst.sites;
    let counters = sites.total_counters();
    let payloads = payloads(sites.layout_hash(), counters, seed);

    let batches = (reports / BATCH_SIZE as u64).max(1);
    let total_reports = batches * BATCH_SIZE as u64;
    let epoch_len = (total_reports / 8).max(1);

    println!("== production ingest throughput and recovery ==");
    println!(
        "{clients} simulated clients, {total_reports} reports in {batches} batches \
         over {CONNECTIONS} connections"
    );
    println!();
    println!("shards   reports/sec   p50 µs   p99 µs   max µs   fold s");

    let mut rows = Vec::new();
    let mut golden: Option<String> = None;
    let mut identical = true;
    for shards in SHARD_COUNTS {
        let row = run_socket(&sites, shards, clients, batches, epoch_len, &payloads);
        let rps = total_reports as f64 / row.ingest_secs;
        println!(
            "{:>6} {rps:>13.0} {:>8} {:>8} {:>8} {:>8.2}",
            row.shards, row.p50_us, row.p99_us, row.max_us, row.fold_secs
        );
        match &golden {
            None => golden = Some(row.rendered.clone()),
            Some(g) => identical &= *g == row.rendered,
        }
        rows.push(format!(
            "    {{\"shards\": {}, \"reports_per_sec\": {rps:.0}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"shed\": {}, \"fold_secs\": {:.3}}}",
            row.shards, row.p50_us, row.p99_us, row.max_us, row.shed, row.fold_secs
        ));
    }
    assert!(
        identical,
        "analysis must be byte-identical at any shard count"
    );
    println!();
    println!("analysis byte-identical at shards {SHARD_COUNTS:?}: {identical}");

    // Recovery after a kill: journal half the stream, tear the final
    // record (the crash landed mid-append), resume, then run the full
    // retransmit sweep a real fleet would.  The resumed analysis must
    // match an uninterrupted journaled run byte for byte.
    let recovery_batches = (batches / 10).clamp(1, 50_000);
    let dir = std::env::temp_dir();
    let golden_path = dir.join(format!("serve-study-golden-{}.cbij", std::process::id()));
    let crash_path = dir.join(format!("serve-study-crash-{}.cbij", std::process::id()));
    let submit_all = |mut core: IngestCore| -> IngestCore {
        for b in 0..recovery_batches {
            let verdict = core
                .submit(None, envelope(b, clients, &payloads), true)
                .expect("submit");
            assert!(matches!(
                verdict,
                AckVerdict::Accepted | AckVerdict::Duplicate
            ));
        }
        core
    };
    let config = || ServeConfig {
        epoch_len: (recovery_batches * BATCH_SIZE as u64 / 8).max(1),
        ..ServeConfig::default()
    };
    let policy = FsyncPolicy::EveryN(4096);

    let core = IngestCore::new(sites.clone(), config())
        .expect("core")
        .with_journal(&golden_path, policy)
        .expect("journal");
    let golden_outcome = submit_all(core).finish().expect("finish");
    let golden_render = render_analysis(&golden_outcome.aggregator, 10);

    let mut core = IngestCore::new(sites.clone(), config())
        .expect("core")
        .with_journal(&crash_path, policy)
        .expect("journal");
    for b in 0..recovery_batches / 2 {
        core.submit(None, envelope(b, clients, &payloads), true)
            .expect("submit");
    }
    drop(core); // the kill
    {
        // Tear the tail: a partial append of the next record.
        let torn = envelope(recovery_batches / 2, clients, &payloads).encode();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&crash_path)
            .expect("open crash journal");
        f.write_all(&torn[..torn.len() * 2 / 3]).expect("tear");
    }
    let resume_start = Instant::now();
    let resumed = IngestCore::new(sites.clone(), config())
        .expect("core")
        .resume(&crash_path, policy)
        .expect("resume");
    let resume_ms = resume_start.elapsed().as_secs_f64() * 1e3;
    let outcome = submit_all(resumed).finish().expect("finish");
    let recovered_render = render_analysis(&outcome.aggregator, 10);
    let recovery_identical = recovered_render == golden_render;
    assert!(recovery_identical, "resumed analysis must match golden");
    assert!(outcome.summary.torn_tail, "the torn record must be seen");
    println!(
        "recovery: {} batches journaled, {} replayed after kill (torn tail truncated), \
         resume {resume_ms:.0} ms, analysis identical: {recovery_identical}",
        recovery_batches, outcome.summary.replayed
    );
    std::fs::remove_file(&golden_path).ok();
    std::fs::remove_file(&crash_path).ok();

    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"clients\": {clients},\n  \"reports\": {total_reports},\n  \"batches\": {batches},\n  \"batch_size\": {BATCH_SIZE},\n  \"connections\": {CONNECTIONS},\n  \"seed\": {seed},\n  \"shard_rows\": [\n{}\n  ],\n  \"analysis_identical_across_shards\": {identical},\n  \"recovery\": {{\"batches\": {recovery_batches}, \"replayed\": {}, \"torn_tail\": {}, \"resume_ms\": {resume_ms:.1}, \"identical\": {recovery_identical}}}\n}}\n",
        rows.join(",\n"),
        outcome.summary.replayed,
        outcome.summary.torn_tail,
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, json).expect("write BENCH_serve.json");
    println!();
    println!("wrote {out}");
}
