//! §3.2.5 — Performance impact of the returns-scheme instrumentation on
//! ccrypt.
//!
//! The paper: most call sites terminate acyclic regions and ccrypt is
//! compiled one object at a time, so the transformation devolves toward a
//! per-site countdown check — yet 1/1000 sampling still costs under 4%.
//! We measure the same three conditions: unconditional, sampled with the
//! interprocedural analysis, and sampled under separate compilation
//! (`interprocedural = false`).

use cbi::instrument::{CountdownStorage, Scheme, TransformOptions};
use cbi::sampler::SamplingDensity;
use cbi::workloads::{ccrypt_program, measure_overhead, OverheadConfig};

fn main() {
    let program = ccrypt_program();
    // A busy non-crashing input: 5 files, all existing, all confirmed.
    let input = vec![
        99, 0, 5, 1, 400, 1, 1, 300, 1, 1, 200, 1, 1, 500, 1, 1, 100, 1,
    ];
    let densities = vec![
        SamplingDensity::one_in(100),
        SamplingDensity::one_in(1_000),
        SamplingDensity::one_in(10_000),
    ];

    println!("== §3.2.5: ccrypt instrumentation overhead (returns scheme) ==");
    for (label, transform) in [
        ("whole-program", TransformOptions::default()),
        (
            "separate-compilation",
            TransformOptions {
                interprocedural: false,
                ..TransformOptions::default()
            },
        ),
        (
            "devolved(global cd)",
            TransformOptions {
                interprocedural: false,
                regions: false,
                countdown: CountdownStorage::Global,
                coalesce: false,
            },
        ),
    ] {
        let config = OverheadConfig {
            scheme: Scheme::Returns,
            transform,
            ..OverheadConfig::default()
        };
        let m = measure_overhead("ccrypt", &program, &input, &densities, &config)
            .expect("overhead measurement");
        println!();
        println!("[{label}]");
        println!("  always: {:.3}", m.unconditional);
        for (density, ratio) in &m.sampled {
            println!("  {density}: {ratio:.3}");
        }
    }
    println!();
    println!("paper: 1/1000 sampling overhead below 4% even devolved.");
}
