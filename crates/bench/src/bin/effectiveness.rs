//! §3.1.3 — The effectiveness of sampling: runs needed to observe rare
//! events at given confidence, and the Office-XP-scale deployment
//! arithmetic.

use cbi::stats::{detection_probability, runs_needed};

fn main() {
    println!("== §3.1.3: sampling effectiveness arithmetic ==");
    let n90 = runs_needed(0.01, 0.001, 0.90);
    println!("event 1/100 runs, sampling 1/1000, 90% confidence: {n90} runs (paper: 230,258)");
    let n99 = runs_needed(0.001, 0.001, 0.99);
    println!("event 1/1000 runs, sampling 1/1000, 99% confidence: {n99} runs (paper: 4,605,168)");

    // Sixty million Office XP licenses, two runs per licensee per week.
    let runs_per_minute = 60_000_000.0 * 2.0 / (7.0 * 24.0 * 60.0);
    println!();
    println!("deployment arithmetic at {runs_per_minute:.0} runs/minute:");
    println!(
        "  {n90} runs gathered in {:.0} minutes (paper: every nineteen minutes)",
        n90 as f64 / runs_per_minute
    );
    println!(
        "  {n99} runs gathered in {:.1} hours (paper: less than seven hours)",
        n99 as f64 / runs_per_minute / 60.0
    );

    println!();
    println!("detection probability vs run count (event 1/100, sampling 1/1000):");
    for runs in [10_000u64, 50_000, 100_000, 230_258, 500_000, 1_000_000] {
        println!(
            "  {runs:>9} runs -> {:.3}",
            detection_probability(0.01, 0.001, runs)
        );
    }
}
