//! Figure 4 — Relative performance of bc with unconditional or sampled
//! instrumentation.
//!
//! The paper's bars: 1.13 unconditional, ≈1.06 at 1/100, ≈1.005 at
//! 1/1000, and ≈1.00 below that.  We print the same series as op-count
//! ratios for the bc analogue under the scalar-pairs scheme.

use cbi::instrument::Scheme;
use cbi::sampler::SamplingDensity;
use cbi::workloads::{bc_program, measure_overhead, OverheadConfig};

fn main() {
    let program = bc_program();
    // A busy, non-crashing session: configuration, a few variable and
    // array definitions (too few to trigger the overrun), and a batch of
    // expression evaluations that exercise the digit arithmetic.
    let mut input: Vec<i64> = vec![3, 11, 0, 1];
    input.extend(std::iter::repeat_n(1, 8));
    input.extend(std::iter::repeat_n(2, 8));
    for seed in 0..20 {
        input.push(3);
        input.push(1000 + 37 * seed);
    }
    input.push(0);

    let densities = vec![
        SamplingDensity::one_in(100),
        SamplingDensity::one_in(1_000),
        SamplingDensity::one_in(10_000),
        SamplingDensity::one_in(100_000),
    ];
    let config = OverheadConfig {
        scheme: Scheme::ScalarPairs,
        ..OverheadConfig::default()
    };
    let m = measure_overhead("bc", &program, &input, &densities, &config)
        .expect("overhead measurement");

    println!("== Figure 4: bc relative performance (scalar-pairs scheme) ==");
    println!("{:<12} {:>8}  (paper)", "build", "ratio");
    println!("{:<12} {:>8.3}  (1.13)", "always", m.unconditional);
    let paper = ["(~1.06)", "(~1.005)", "(~1.00)", "(~1.00)"];
    for ((density, ratio), p) in m.sampled.iter().zip(paper) {
        println!("{:<12} {:>8.3}  {p}", density.to_string(), ratio);
    }
    println!();
    println!(
        "shape check: always > 1/100 > 1/1000 >= floor: {}",
        m.unconditional > m.sampled[0].1
            && m.sampled[0].1 > m.sampled[1].1
            && m.sampled[1].1 + 1e-9 >= m.sampled[3].1
    );
}
