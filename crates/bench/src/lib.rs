//! Experiment harness for the PLDI 2003 evaluation.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; `cargo bench` micro-benchmarks live under `benches/`.  This
//! library holds shared formatting and configuration helpers.
//!
//! | binary             | reproduces                                   |
//! |--------------------|----------------------------------------------|
//! | `table1`           | Table 1: static metrics                      |
//! | `table2`           | Table 2: overhead at sampling densities      |
//! | `selective`        | §3.1.2: single-function instrumentation      |
//! | `effectiveness`    | §3.1.3: runs needed for rare events          |
//! | `ccrypt_study`     | §3.2.3: elimination strategy counts          |
//! | `fig2`             | Figure 2: progressive elimination            |
//! | `ccrypt_overhead`  | §3.2.5: ccrypt sampling overhead             |
//! | `bc_study`         | §3.3.3: regularized logistic regression      |
//! | `fig4`             | Figure 4: bc overhead bars                   |
//! | `ablation`         | design-choice ablations (§2.2/§2.4/§4)       |

/// The sampling densities of Table 2, in column order.
pub fn table2_densities() -> Vec<cbi::sampler::SamplingDensity> {
    use cbi::sampler::SamplingDensity;
    vec![
        SamplingDensity::one_in(100),
        SamplingDensity::one_in(1_000),
        SamplingDensity::one_in(10_000),
        SamplingDensity::one_in(1_000_000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_densities_are_the_paper_columns() {
        let ds = table2_densities();
        assert_eq!(ds.len(), 4);
        let names: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
        assert_eq!(names, vec!["1/100", "1/1000", "1/10000", "1/1000000"]);
    }
}
