//! Experiment harness for the PLDI 2003 evaluation.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper; `cargo bench` micro-benchmarks live under `benches/`.  This
//! library holds shared formatting and configuration helpers.
//!
//! | binary             | reproduces                                   |
//! |--------------------|----------------------------------------------|
//! | `table1`           | Table 1: static metrics                      |
//! | `table2`           | Table 2: overhead at sampling densities      |
//! | `selective`        | §3.1.2: single-function instrumentation      |
//! | `effectiveness`    | §3.1.3: runs needed for rare events          |
//! | `ccrypt_study`     | §3.2.3: elimination strategy counts          |
//! | `fig2`             | Figure 2: progressive elimination            |
//! | `ccrypt_overhead`  | §3.2.5: ccrypt sampling overhead             |
//! | `bc_study`         | §3.3.3: regularized logistic regression      |
//! | `fig4`             | Figure 4: bc overhead bars                   |
//! | `ablation`         | design-choice ablations (§2.2/§2.4/§4)       |

/// The sampling densities of Table 2, in column order.
pub fn table2_densities() -> Vec<cbi::sampler::SamplingDensity> {
    use cbi::sampler::SamplingDensity;
    vec![
        SamplingDensity::one_in(100),
        SamplingDensity::one_in(1_000),
        SamplingDensity::one_in(10_000),
        SamplingDensity::one_in(1_000_000),
    ]
}

pub mod harness {
    //! A dependency-free micro-benchmark harness: `Instant`-timed, with
    //! warm-up and an adaptive iteration count sized to a fixed budget.

    use std::time::{Duration, Instant};

    /// Target measurement budget per benchmark.
    const BUDGET: Duration = Duration::from_millis(400);

    /// Times `f` and prints `name: mean per iteration (iters)`.  One
    /// warm-up call sizes the iteration count to [`BUDGET`]; returns the
    /// mean per-iteration time.
    pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Duration {
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let mean = start.elapsed() / iters;
        println!("{name:<44} {:>12}  ({iters} iters)", format_duration(mean));
        mean
    }

    /// Formats a duration with an appropriate unit.
    pub fn format_duration(d: Duration) -> String {
        let ns = d.as_nanos();
        if ns < 10_000 {
            format!("{ns} ns")
        } else if ns < 10_000_000 {
            format!("{:.2} µs", ns as f64 / 1e3)
        } else if ns < 10_000_000_000 {
            format!("{:.2} ms", ns as f64 / 1e6)
        } else {
            format!("{:.2} s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_formats() {
        let mean = harness::bench("noop", || 1 + 1);
        assert!(mean <= std::time::Duration::from_millis(100));
        assert_eq!(
            harness::format_duration(std::time::Duration::from_nanos(12)),
            "12 ns"
        );
        assert_eq!(
            harness::format_duration(std::time::Duration::from_micros(250)),
            "250.00 µs"
        );
        assert_eq!(
            harness::format_duration(std::time::Duration::from_millis(15)),
            "15.00 ms"
        );
        assert_eq!(
            harness::format_duration(std::time::Duration::from_secs(11)),
            "11.00 s"
        );
    }

    #[test]
    fn table2_densities_are_the_paper_columns() {
        let ds = table2_densities();
        assert_eq!(ds.len(), 4);
        let names: Vec<String> = ds.iter().map(|d| d.to_string()).collect();
        assert_eq!(names, vec!["1/100", "1/1000", "1/10000", "1/1000000"]);
    }
}
