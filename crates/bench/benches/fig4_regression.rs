//! Figure 4 / §3.3 companion bench: training throughput of the
//! ℓ₁-regularized logistic regression (the paper's MATLAB run took thirty
//! minutes for sixty epochs on 2729 × 2908 features).

use cbi::reports::{Label, Report};
use cbi::sampler::Pcg32;
use cbi::stats::{Dataset, LogisticModel, TrainConfig};
use cbi_bench::harness::bench;
use std::hint::black_box;

fn synthetic_dataset(rows: usize, counters: usize) -> Dataset {
    let mut rng = Pcg32::new(11);
    let reports: Vec<Report> = (0..rows)
        .map(|i| {
            let crash = rng.next_f64() < 0.25;
            let cs = (0..counters)
                .map(|c| {
                    if c == 17 && crash {
                        5 + rng.below(20)
                    } else {
                        rng.below(3)
                    }
                })
                .collect();
            Report::new(
                i as u64,
                if crash {
                    Label::Failure
                } else {
                    Label::Success
                },
                cs,
            )
        })
        .collect();
    let mut d = Dataset::from_reports(&reports);
    d.fit_scale();
    d
}

fn main() {
    let data = synthetic_dataset(1000, 500);
    bench("fig4_regression/sga_60_epochs_1000x500", || {
        black_box(LogisticModel::train(
            &data,
            &TrainConfig {
                lambda: 0.3,
                ..TrainConfig::default()
            },
        ))
    });
    let model = LogisticModel::train(&data, &TrainConfig::default());
    bench("fig4_regression/prediction_1000_rows", || {
        black_box(model.accuracy(&data))
    });
}
