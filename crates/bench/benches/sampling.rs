//! Micro-benchmarks of the sampling runtime (§2.1): geometric countdown
//! generation must be cheap enough to amortize, and vastly cheaper than
//! tossing the coin at every site.

use cbi::sampler::{Bernoulli, CountdownBank, CountdownSource, Geometric, SamplingDensity};
use cbi_bench::harness::bench;
use std::hint::black_box;

fn main() {
    for d in [100u64, 1000, 1_000_000] {
        let mut g = Geometric::new(SamplingDensity::one_in(d), 42);
        bench(&format!("countdown_generation/geometric_1in{d}"), || {
            black_box(g.next_countdown())
        });
    }

    // The naive equivalent: toss the biased coin until it comes up heads.
    // At 1/1000 density this is ~1000 RNG calls per countdown.
    let mut coin = Bernoulli::new(SamplingDensity::one_in(100), 42);
    bench("countdown_generation/bernoulli_expansion_1in100", || {
        black_box(coin.next_countdown())
    });

    let mut seed = 0u64;
    bench("bank_1024_at_1in1000", || {
        seed += 1;
        black_box(CountdownBank::generate(
            SamplingDensity::one_in(1000),
            1024,
            seed,
        ))
    });
}
