//! Micro-benchmarks of the sampling runtime (§2.1): geometric countdown
//! generation must be cheap enough to amortize, and vastly cheaper than
//! tossing the coin at every site.

use cbi::sampler::{
    Bernoulli, CountdownBank, CountdownSource, Geometric, SamplingDensity,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_countdown_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("countdown_generation");
    for d in [100u64, 1000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("geometric", d), &d, |b, &d| {
            let mut g = Geometric::new(SamplingDensity::one_in(d), 42);
            b.iter(|| black_box(g.next_countdown()));
        });
    }
    // The naive equivalent: toss the biased coin until it comes up heads.
    // At 1/1000 density this is ~1000 RNG calls per countdown.
    group.bench_function("bernoulli_expansion_1in100", |b| {
        let mut coin = Bernoulli::new(SamplingDensity::one_in(100), 42);
        b.iter(|| black_box(coin.next_countdown()));
    });
    group.finish();
}

fn bench_bank_generation(c: &mut Criterion) {
    c.bench_function("bank_1024_at_1in1000", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(CountdownBank::generate(
                SamplingDensity::one_in(1000),
                1024,
                seed,
            ))
        });
    });
}

criterion_group!(benches, bench_countdown_generation, bench_bank_generation);
criterion_main!(benches);
