//! Table 2 companion bench: wall-clock cost of executing the three builds
//! (baseline, unconditional, sampled) of a representative benchmark.
//! The printed Table 2 uses deterministic op counts; this bench confirms
//! the same ordering holds for real time in our interpreter, and shows
//! the slot-resolved engine against the name-map reference engine.

use cbi::instrument::{apply_sampling, instrument, strip_sites, Scheme, TransformOptions};
use cbi::minic::lower;
use cbi::sampler::{CountdownBank, SamplingDensity};
use cbi::vm::{Engine, Vm};
use cbi::workloads::benchmark;
use cbi_bench::harness::bench;
use std::hint::black_box;

fn main() {
    let b = benchmark("mst").expect("benchmark exists");
    let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
    let baseline = strip_sites(&inst.program);
    let baseline_slots = lower(&baseline);
    let inst_slots = lower(&inst.program);
    let (sampled, _) =
        apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
    let sampled_slots = lower(&sampled);

    bench("table2_execution_mst/baseline", || {
        black_box(Vm::from_slots(&baseline_slots).run().expect("run"))
    });
    bench("table2_execution_mst/baseline_namemap", || {
        black_box(
            Vm::new(&baseline)
                .with_engine(Engine::NameMap)
                .run()
                .expect("run"),
        )
    });
    bench("table2_execution_mst/unconditional", || {
        black_box(
            Vm::from_slots(&inst_slots)
                .with_sites(&inst.sites)
                .run()
                .expect("run"),
        )
    });
    let mut bank = CountdownBank::generate(SamplingDensity::one_in(1000), 1024, 0);
    let mut seed = 0;
    bench("table2_execution_mst/sampled_1in1000", || {
        seed += 1;
        bank.reseed(SamplingDensity::one_in(1000), seed);
        let mut vm = Vm::from_slots(&sampled_slots);
        vm.with_sites(&inst.sites).with_sampling_ref(&mut bank);
        black_box(vm.run().expect("run"))
    });
}
