//! Table 2 companion bench: wall-clock cost of executing the three builds
//! (baseline, unconditional, sampled) of a representative benchmark.
//! The printed Table 2 uses deterministic op counts; this bench confirms
//! the same ordering holds for real time in our interpreter.

use cbi::instrument::{apply_sampling, instrument, strip_sites, Scheme, TransformOptions};
use cbi::sampler::{CountdownBank, SamplingDensity};
use cbi::vm::Vm;
use cbi::workloads::benchmark;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_builds(c: &mut Criterion) {
    let b = benchmark("mst").expect("benchmark exists");
    let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
    let baseline = strip_sites(&inst.program);
    let (sampled, _) =
        apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");

    let mut group = c.benchmark_group("table2_execution_mst");
    group.sample_size(20);
    group.bench_function("baseline", |bench| {
        bench.iter(|| black_box(Vm::new(&baseline).run().expect("run")));
    });
    group.bench_function("unconditional", |bench| {
        bench.iter(|| {
            black_box(
                Vm::new(&inst.program)
                    .with_sites(&inst.sites)
                    .run()
                    .expect("run"),
            )
        });
    });
    group.bench_function("sampled_1in1000", |bench| {
        let mut seed = 0;
        bench.iter(|| {
            seed += 1;
            let bank = CountdownBank::generate(SamplingDensity::one_in(1000), 1024, seed);
            black_box(
                Vm::new(&sampled)
                    .with_sites(&inst.sites)
                    .with_sampling(Box::new(bank))
                    .run()
                    .expect("run"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
