//! Figure 2 companion bench: throughput of the elimination strategies and
//! the progressive-elimination experiment over a synthetic report set.

use cbi::reports::{Label, Report, SufficientStats};
use cbi::sampler::Pcg32;
use cbi::stats::elimination::{apply, Strategy};
use cbi::stats::{progressive_elimination, ProgressiveConfig};
use cbi_bench::harness::bench;
use std::hint::black_box;

fn synthetic_reports(n: usize, counters: usize) -> Vec<Report> {
    let mut rng = Pcg32::new(5);
    (0..n)
        .map(|i| {
            let label = if rng.next_f64() < 0.05 {
                Label::Failure
            } else {
                Label::Success
            };
            let cs = (0..counters)
                .map(|c| u64::from(rng.next_f64() < (c % 7) as f64 / 40.0))
                .collect();
            Report::new(i as u64, label, cs)
        })
        .collect()
}

fn main() {
    let reports = synthetic_reports(3000, 1710);
    let stats: SufficientStats = reports.iter().cloned().collect();
    let groups: Vec<(usize, usize)> = (0..570).map(|i| (i * 3, 3)).collect();

    bench("fig2_elimination/four_strategies_1710_counters", || {
        for s in [
            Strategy::UniversalFalsehood,
            Strategy::LackOfFailingCoverage,
            Strategy::LackOfFailingExample,
            Strategy::SuccessfulCounterexample,
        ] {
            black_box(apply(&stats, s, &groups));
        }
    });

    let candidates: Vec<usize> = (0..141).collect();
    let config = ProgressiveConfig {
        step: 500,
        repetitions: 100,
        seed: 9,
    };
    bench("fig2_elimination/progressive_100x_repetitions", || {
        black_box(progressive_elimination(&reports, &candidates, &config))
    });
}
