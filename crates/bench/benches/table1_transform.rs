//! Table 1 companion bench: cost of instrumenting and sampling-transforming
//! each benchmark (the "compiler side" of the system).

use cbi::instrument::{apply_sampling, instrument, Scheme, TransformOptions};
use cbi::workloads::all_benchmarks;
use cbi_bench::harness::bench;
use std::hint::black_box;

fn main() {
    for b in all_benchmarks() {
        bench(&format!("table1_transform/checks/{}", b.name), || {
            let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
            let out =
                apply_sampling(&inst.program, &TransformOptions::default()).expect("transform");
            black_box(out)
        });
    }
}
