//! Table 1 companion bench: cost of instrumenting and sampling-transforming
//! each benchmark (the "compiler side" of the system).

use cbi::instrument::{apply_sampling, instrument, Scheme, TransformOptions};
use cbi::workloads::all_benchmarks;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_instrument_and_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_transform");
    group.sample_size(20);
    for b in all_benchmarks() {
        group.bench_with_input(BenchmarkId::new("checks", b.name), &b, |bench, b| {
            bench.iter(|| {
                let inst = instrument(&b.program, Scheme::Checks).expect("instrument");
                let out = apply_sampling(&inst.program, &TransformOptions::default())
                    .expect("transform");
                black_box(out)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_instrument_and_transform);
criterion_main!(benches);
