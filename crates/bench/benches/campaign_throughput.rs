//! Campaign throughput: the seed's serial name-map campaign loop against
//! the slot-resolved, sharded `run_campaign` (§2.5 contemplates millions
//! of runs, so driver throughput is the experiment bottleneck).
//!
//! The baseline reconstructs the pre-optimization code path exactly: the
//! name-map interpreter, a cloned input vector per trial, and a freshly
//! allocated boxed countdown bank per trial.  Both paths must produce
//! bit-identical report streams; wall-clock times and the speedup land in
//! `BENCH_campaign.json` at the repository root.

use cbi::instrument::{apply_sampling, instrument, Scheme};
use cbi::reports::{Collector, Label, Report};
use cbi::sampler::{CountdownBank, SamplingDensity};
use cbi::vm::{Engine, RunOutcome, Vm};
use cbi::workloads::{
    ccrypt_program, ccrypt_trials, run_campaign, CampaignConfig, CcryptTrialConfig,
};
use std::time::{Duration, Instant};

const TRIALS: usize = 2000;
const JOBS: usize = 8;
/// Wall-clock repetitions per path; the minimum is reported, which
/// discards scheduler noise on shared machines.
const REPS: usize = 5;

/// The seed's `run_campaign` inner loop, verbatim in spirit: name-map
/// engine, `input.clone()` per trial, `Box<CountdownBank>` per trial.
fn baseline_campaign(
    program: &cbi::minic::Program,
    trials: &[Vec<i64>],
    config: &CampaignConfig,
) -> (Collector, usize) {
    let inst = instrument(program, config.scheme).expect("instrument");
    let (executable, _) = apply_sampling(&inst.program, &config.transform).expect("transform");
    let mut collector = Collector::new(inst.sites.total_counters());
    let mut dropped = 0;
    for (i, input) in trials.iter().enumerate() {
        let bank = CountdownBank::generate(
            config.density.expect("sampled config"),
            config.bank_size,
            config.seed.wrapping_add(i as u64),
        );
        let result = Vm::new(&executable)
            .with_engine(Engine::NameMap)
            .with_sites(&inst.sites)
            .with_input(input.clone())
            .with_op_limit(config.op_limit)
            .with_heap_slack(config.heap_slack)
            .with_sampling(Box::new(bank))
            .run()
            .expect("vm config");
        let label = match result.outcome {
            RunOutcome::Success(_) => Label::Success,
            RunOutcome::Crash(_) | RunOutcome::AssertionFailure(_) => Label::Failure,
            RunOutcome::OpLimit => {
                dropped += 1;
                continue;
            }
        };
        collector
            .add(Report::new(i as u64, label, result.counters))
            .expect("one layout");
    }
    (collector, dropped)
}

fn main() {
    let program = ccrypt_program();
    let trials = ccrypt_trials(TRIALS, 77, &CcryptTrialConfig::default());
    let config = CampaignConfig::sampled(Scheme::Returns, SamplingDensity::one_in(100));

    // Interleave the two paths so machine-load drift hits both equally,
    // and keep the minimum of each: the cleanest wall-clock estimate a
    // shared box allows.
    let mut baseline = Duration::MAX;
    let mut parallel = Duration::MAX;
    let mut baseline_out = None;
    let mut result = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let out = baseline_campaign(&program, &trials, &config);
        baseline = baseline.min(start.elapsed());
        baseline_out = Some(out);

        let start = Instant::now();
        let out = run_campaign(&program, &trials, &config.with_jobs(JOBS)).expect("campaign");
        parallel = parallel.min(start.elapsed());
        result = Some(out);
    }
    let (baseline_reports, baseline_dropped) = baseline_out.expect("REPS > 0");
    let result = result.expect("REPS > 0");

    assert_eq!(
        baseline_reports.reports(),
        result.collector.reports(),
        "optimized campaign must reproduce the seed report stream"
    );
    assert_eq!(baseline_dropped, result.dropped);

    let speedup = baseline.as_secs_f64() / parallel.as_secs_f64();
    println!("campaign_throughput: {TRIALS} ccrypt trials, returns @ 1/100, jobs={JOBS}");
    println!(
        "  seed baseline {:>9.3} s   optimized {:>9.3} s   speedup {speedup:.2}x",
        baseline.as_secs_f64(),
        parallel.as_secs_f64()
    );

    // Engine comparison: the identical serial campaign on every engine.
    // The streams must be bit-identical — only the wall clock may move.
    let serial = config.with_jobs(1);
    let mut engine_times: Vec<(Engine, Duration)> = Vec::new();
    for engine in [Engine::NameMap, Engine::Slots, Engine::Bytecode] {
        let mut best = Duration::MAX;
        for _ in 0..REPS {
            let start = Instant::now();
            let out =
                run_campaign(&program, &trials, &serial.with_engine(engine)).expect("campaign");
            best = best.min(start.elapsed());
            assert_eq!(
                baseline_reports.reports(),
                out.collector.reports(),
                "{} campaign must reproduce the seed report stream",
                engine.name()
            );
        }
        engine_times.push((engine, best));
    }
    let secs_of = |needle: Engine| {
        engine_times
            .iter()
            .find(|(e, _)| *e == needle)
            .expect("measured")
            .1
            .as_secs_f64()
    };
    let slot_secs = secs_of(Engine::Slots);
    let mut engine_rows = String::new();
    for (engine, t) in &engine_times {
        let secs = t.as_secs_f64();
        println!(
            "  engine {:>8}: {secs:>9.3} s   {:>9.0} runs/s   {:.2}x vs slot",
            engine.name(),
            TRIALS as f64 / secs,
            slot_secs / secs,
        );
        if !engine_rows.is_empty() {
            engine_rows.push_str(",\n");
        }
        engine_rows.push_str(&format!(
            "    {{\"engine\": \"{}\", \"seconds\": {secs:.6}, \"runs_per_sec\": {:.0}, \"speedup_vs_slot\": {:.3}}}",
            engine.name(),
            TRIALS as f64 / secs,
            slot_secs / secs,
        ));
    }
    let bytecode_vs_slot = slot_secs / secs_of(Engine::Bytecode);

    // Instrumented vs stripped: the same trials through the
    // observation-free binary (sites stripped — the paper's baseline
    // build), slot vs bytecode.  This isolates the dispatch-loop gain
    // from instrumentation and sampling bookkeeping.
    let stripped = cbi::instrument::strip_sites(
        &instrument(&program, config.scheme)
            .expect("instrument")
            .program,
    );
    let stripped_slots = cbi::minic::lower(&stripped);
    let stripped_bc = cbi::vm::bytecode::compile(&stripped_slots);
    let mut stripped_rows = String::new();
    let mut stripped_slot_secs = 0.0f64;
    for engine in [Engine::Slots, Engine::Bytecode] {
        let mut best = Duration::MAX;
        for _ in 0..REPS {
            let start = Instant::now();
            for input in &trials {
                let mut vm = match engine {
                    Engine::Bytecode => Vm::from_bytecode(&stripped_bc),
                    _ => Vm::from_slots(&stripped_slots),
                };
                vm.with_input(&input[..])
                    .with_op_limit(config.op_limit)
                    .with_heap_slack(config.heap_slack)
                    .run()
                    .expect("vm config");
            }
            best = best.min(start.elapsed());
        }
        let secs = best.as_secs_f64();
        if engine == Engine::Slots {
            stripped_slot_secs = secs;
        }
        println!(
            "  stripped {:>8}: {secs:>9.3} s   {:>9.0} runs/s   {:.2}x vs slot",
            engine.name(),
            TRIALS as f64 / secs,
            stripped_slot_secs / secs,
        );
        if !stripped_rows.is_empty() {
            stripped_rows.push_str(",\n");
        }
        stripped_rows.push_str(&format!(
            "    {{\"engine\": \"{}\", \"seconds\": {secs:.6}, \"runs_per_sec\": {:.0}, \"speedup_vs_slot\": {:.3}}}",
            engine.name(),
            TRIALS as f64 / secs,
            stripped_slot_secs / secs,
        ));
    }

    // Telemetry overhead: the same campaign with the sink off vs on, at
    // each job level.  The off timing is the tax every ordinary run pays
    // (one relaxed atomic load per record site); the issue budget is <2%.
    let mut telemetry_rows = String::new();
    for jobs in [1usize, JOBS] {
        let jobs_config = config.with_jobs(jobs);
        let mut off = Duration::MAX;
        let mut on = Duration::MAX;
        for _ in 0..REPS {
            let start = Instant::now();
            let out_off = run_campaign(&program, &trials, &jobs_config).expect("campaign");
            off = off.min(start.elapsed());

            cbi::telemetry::reset();
            cbi::telemetry::enable();
            let start = Instant::now();
            let out_on = run_campaign(&program, &trials, &jobs_config).expect("campaign");
            on = on.min(start.elapsed());
            cbi::telemetry::disable();
            cbi::telemetry::collect(); // drain the buffers between reps

            assert_eq!(
                out_off.collector.reports(),
                out_on.collector.reports(),
                "telemetry recording must not change the report stream"
            );
        }
        let overhead = (on.as_secs_f64() / off.as_secs_f64() - 1.0) * 100.0;
        println!(
            "  telemetry jobs={jobs}: off {:>9.3} s   on {:>9.3} s   overhead {overhead:+.1}%",
            off.as_secs_f64(),
            on.as_secs_f64()
        );
        if !telemetry_rows.is_empty() {
            telemetry_rows.push_str(",\n");
        }
        telemetry_rows.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"off_seconds\": {:.6}, \"on_seconds\": {:.6}, \"overhead_pct\": {overhead:.2}}}",
            off.as_secs_f64(),
            on.as_secs_f64(),
        ));
    }

    // Wire codec throughput: encode/decode the campaign's report stream
    // and compare against the JSONL archive format on both size and
    // speed.  These are the numbers that decide whether remote
    // collection can keep up with the campaign driver.
    let reports = result.collector.reports();
    let layout_hash = result.instrumented.sites.layout_hash();
    let counters = result.instrumented.sites.total_counters();

    let mut encode = Duration::MAX;
    let mut decode = Duration::MAX;
    let mut jsonl_encode = Duration::MAX;
    let mut wire_bytes = 0usize;
    let mut jsonl_bytes = 0usize;
    for _ in 0..REPS {
        let start = Instant::now();
        let bytes =
            cbi::reports::wire::encode_reports(reports, layout_hash, counters).expect("encode");
        encode = encode.min(start.elapsed());
        wire_bytes = bytes.len();

        let start = Instant::now();
        let (decoded, _) = cbi::reports::wire::read_collector(bytes.as_slice()).expect("decode");
        decode = decode.min(start.elapsed());
        assert_eq!(decoded.reports(), reports, "wire must round-trip exactly");

        let mut jsonl = Vec::new();
        let start = Instant::now();
        result.collector.write_jsonl(&mut jsonl).expect("jsonl");
        jsonl_encode = jsonl_encode.min(start.elapsed());
        jsonl_bytes = jsonl.len();
    }
    let n = reports.len() as f64;
    let encode_rps = n / encode.as_secs_f64();
    let decode_rps = n / decode.as_secs_f64();
    let jsonl_rps = n / jsonl_encode.as_secs_f64();
    let wire_bpr = wire_bytes as f64 / n;
    let jsonl_bpr = jsonl_bytes as f64 / n;
    println!(
        "  wire encode {encode_rps:>11.0} rep/s   ingest {decode_rps:>11.0} rep/s   {wire_bpr:.1} B/report"
    );
    println!(
        "  jsonl encode {jsonl_rps:>10.0} rep/s   {jsonl_bpr:.1} B/report   binary is {:.2}x smaller",
        jsonl_bpr / wire_bpr
    );
    let wire_rows = format!(
        "    {{\"format\": \"binary\", \"encode_reports_per_sec\": {encode_rps:.0}, \"ingest_reports_per_sec\": {decode_rps:.0}, \"bytes_per_report\": {wire_bpr:.2}}},\n    {{\"format\": \"jsonl\", \"encode_reports_per_sec\": {jsonl_rps:.0}, \"bytes_per_report\": {jsonl_bpr:.2}}}"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"ccrypt\",\n  \"scheme\": \"returns\",\n  \"density\": \"1/100\",\n  \"trials\": {TRIALS},\n  \"jobs\": {JOBS},\n  \"reports\": {},\n  \"dropped\": {},\n  \"baseline_seconds\": {:.6},\n  \"optimized_seconds\": {:.6},\n  \"speedup\": {speedup:.3},\n  \"bytecode_vs_slot\": {bytecode_vs_slot:.3},\n  \"engines\": [\n{engine_rows}\n  ],\n  \"stripped\": [\n{stripped_rows}\n  ],\n  \"telemetry\": [\n{telemetry_rows}\n  ],\n  \"wire\": [\n{wire_rows}\n  ]\n}}\n",
        result.collector.len(),
        result.dropped,
        baseline.as_secs_f64(),
        parallel.as_secs_f64(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(out, json).expect("write BENCH_campaign.json");
    println!("  wrote {out}");
}
