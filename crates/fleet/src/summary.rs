//! Text rendering of a fleet summary, built for golden-file diffing.
//!
//! Every line is derived from integer counts (runs, batches, bytes,
//! latencies), never from floating-point aggregates, so the output is
//! byte-stable across platforms, libm versions, and `--jobs` settings.

use crate::sim::FleetSummary;
use cbi::epoch::EpochSnapshot;
use std::fmt::Write as _;

/// Renders the operator's view of a fleet run: community composition,
/// channel accounting, and the per-epoch detection trajectory.
pub fn render_summary(summary: &FleetSummary, epochs: &[EpochSnapshot]) -> String {
    let mut out = String::new();
    let s = summary;
    let _ = writeln!(
        out,
        "fleet: {} clients, {} runs ({} dropped)",
        s.clients, s.runs, s.dropped_runs
    );
    let mix: Vec<String> = s
        .density_clients
        .iter()
        .map(|&(d, n)| format!("1/{d}={n}"))
        .collect();
    let _ = writeln!(
        out,
        "community: densities [{}], {} variant, {} stale",
        mix.join(" "),
        s.variant_clients,
        s.stale_clients
    );
    let _ = writeln!(
        out,
        "channel: {} batches, {} accepted ({} corrupt), {} lost, {} stale-rejected, {} retries, {} backoff ticks",
        s.batches,
        s.accepted_batches,
        s.corrupt_batches,
        s.lost_batches,
        s.stale_batches,
        s.retries,
        s.backoff_ticks
    );
    let _ = writeln!(
        out,
        "wire: {} bytes sent, {} bytes accepted, {} deliveries rejected ({} stale)",
        s.bytes_sent, s.bytes_accepted, s.rejected_deliveries, s.stale_rejections
    );
    let _ = writeln!(
        out,
        "server: {} of {} spooled reports accepted, {} failures, {} of {} counters observed, {} survivors",
        s.accepted_reports, s.spooled_reports, s.failures, s.observed_counters, s.counters, s.survivors
    );
    match s.target_latency {
        Some(latency) => {
            let _ = writeln!(out, "target: detected at community run {latency}");
        }
        None => {
            let _ = writeln!(out, "target: not detected");
        }
    }
    let _ = writeln!(
        out,
        "epoch     runs failures observed survivors  accepted   corrupt  rejected     stale     bytes"
    );
    for e in epochs {
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            e.epoch,
            e.runs,
            e.failures,
            e.observed,
            e.survivors,
            e.batches,
            e.corrupt_batches,
            e.rejected_batches,
            e.stale_batches,
            e.bytes
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_fleet, FleetSpec};

    #[test]
    fn rendering_is_integer_only_and_stable() {
        let program =
            cbi_minic::parse("fn main() -> int { int v = read(); print(v); return 0; }").unwrap();
        let pool: Vec<Vec<i64>> = (0..8).map(|i| vec![i]).collect();
        let mut spec = FleetSpec::new(4, 40);
        spec.densities = vec![(2, 1.0)];
        spec.epoch_len = 16;
        let report = run_fleet(&program, &pool, &spec, None).unwrap();
        let a = render_summary(&report.summary, &report.epochs);
        let b = render_summary(&report.summary, &report.epochs);
        assert_eq!(a, b);
        assert!(a.contains("fleet: 4 clients, 40 runs"));
        assert!(a.contains("epoch"));
        assert!(!a.contains('.'), "no floats in the golden surface:\n{a}");
    }
}
