//! The fleet over a real wire: drive a community of TCP clients against
//! a live `cbi serve` ingest server.
//!
//! [`run_fleet_over_socket`] produces exactly the batches
//! [`run_fleet`](crate::run_fleet) would — same VM runs, same spooled
//! payloads — and pushes them through the **same seeded fault coins**
//! ([`crate::channel::transmit`] keyed by `(seed, batch_uid, attempt)`),
//! but each surviving attempt really crosses a socket inside a
//! CRC-framed envelope and waits for the server's typed ack.  The set
//! of batches the server commits is therefore a pure function of the
//! fleet seed, identical to what the in-memory channel fold accepts:
//! kill the server mid-run, restart it from its journal, rerun the same
//! seed, and the dedup layer converges the committed set to the
//! uninterrupted one.
//!
//! Two fault classes are deliberately kept apart:
//!
//! * **channel faults** (drop/truncate/bit-flip) consume the bounded
//!   per-batch retry budget, exactly like [`crate::send_batch`];
//! * **transport hiccups** — `overloaded` NACKs from backpressure, a
//!   seeded "lost ack" forcing an idempotent retransmit, an io error
//!   answered by one reconnect — are retried *without* burning fault
//!   attempts, so runtime timing can never change which batches commit.

use crate::channel::{attempt_rng, transmit, Delivery};
use crate::sim::{produce_fleet, FleetSpec, ProducedBatch};
use crate::FleetError;
use cbi_minic::Program;
use cbi_reports::frame::{read_ack, AckVerdict, BatchEnvelope};
use cbi_telemetry as telemetry;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How the socket driver behaves beyond the channel model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocketOptions {
    /// Probability the server's *accept* ack is lost on the way back
    /// (seeded, drawn after the attempt's channel coins).  The client
    /// retransmits the identical envelope and the server answers
    /// `duplicate` — the idempotent-retransmit path under test.
    pub ack_drop: f64,
    /// Client connections driven concurrently (clamped to the
    /// community size).  Any value yields the same committed set.
    pub streams: usize,
}

impl Default for SocketOptions {
    fn default() -> Self {
        SocketOptions {
            ack_drop: 0.0,
            streams: 8,
        }
    }
}

/// Integer accounting of a socket-driven fleet run.
///
/// Everything except `overload_retransmits` is a pure function of the
/// fleet seed against a fresh server (backpressure NACKs depend on
/// runtime queue timing, so they are excluded from [`Self::render`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SocketFleetSummary {
    /// Community size (and connections dialed, barring reconnects).
    pub clients: usize,
    /// Community runs attempted.
    pub runs: usize,
    /// Runs dropped client-side (operation budget exhausted).
    pub dropped_runs: usize,
    /// Reports spooled across all clients.
    pub spooled_reports: u64,
    /// Batches spooled (each enters the send loop once).
    pub batches: u64,
    /// Batches the server holds after the run (acked `accepted` or
    /// `duplicate`).
    pub delivered_batches: u64,
    /// Deliveries the server answered `duplicate` — retransmits of
    /// batches it already owned (lost acks, or a journal surviving a
    /// previous run).
    pub duplicate_acks: u64,
    /// Retransmits forced by seeded lost acks.
    pub ack_retransmits: u64,
    /// Batches abandoned at the stale-layout rejection.
    pub stale_batches: u64,
    /// Batches abandoned after exhausting channel-fault retries.
    pub lost_batches: u64,
    /// Delivered-but-rejected attempts (truncated payloads, stale
    /// layouts) the server NACKed with a typed wire error.
    pub rejected_deliveries: u64,
    /// Channel-fault attempts beyond each batch's first.
    pub retries: u64,
    /// Backoff ticks accumulated between fault attempts.
    pub backoff_ticks: u64,
    /// Payload bytes put on the wire across all attempts.
    pub bytes_sent: u64,
    /// Retransmits after `overloaded` NACKs (timing-dependent; not
    /// rendered).
    pub overload_retransmits: u64,
    /// Retransmits after `bad crc` NACKs (a damaged TCP leg; expected
    /// zero on loopback).
    pub crc_retransmits: u64,
    /// Connections re-dialed after an io error.
    pub reconnects: u64,
    /// Clients abandoned after reconnecting failed.
    pub dead_clients: u64,
    /// Batches never offered because their client's connection died.
    pub connection_lost_batches: u64,
}

impl SocketFleetSummary {
    fn absorb(&mut self, other: &SocketFleetSummary) {
        self.dropped_runs += other.dropped_runs;
        self.spooled_reports += other.spooled_reports;
        self.batches += other.batches;
        self.delivered_batches += other.delivered_batches;
        self.duplicate_acks += other.duplicate_acks;
        self.ack_retransmits += other.ack_retransmits;
        self.stale_batches += other.stale_batches;
        self.lost_batches += other.lost_batches;
        self.rejected_deliveries += other.rejected_deliveries;
        self.retries += other.retries;
        self.backoff_ticks += other.backoff_ticks;
        self.bytes_sent += other.bytes_sent;
        self.overload_retransmits += other.overload_retransmits;
        self.crc_retransmits += other.crc_retransmits;
        self.reconnects += other.reconnects;
        self.dead_clients += other.dead_clients;
        self.connection_lost_batches += other.connection_lost_batches;
    }

    /// The golden-safe view: every line integer-only and seed-pure
    /// (timing-dependent backpressure retransmits are left out).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "socket fleet: {} clients, {} runs ({} dropped)",
            self.clients, self.runs, self.dropped_runs
        );
        let _ = writeln!(
            out,
            "batches: {} spooled, {} delivered ({} duplicate acks), {} lost, {} stale",
            self.batches,
            self.delivered_batches,
            self.duplicate_acks,
            self.lost_batches,
            self.stale_batches
        );
        let _ = writeln!(
            out,
            "channel: {} retries, {} backoff ticks, {} rejected deliveries, {} ack retransmits",
            self.retries, self.backoff_ticks, self.rejected_deliveries, self.ack_retransmits
        );
        let _ = writeln!(
            out,
            "wire: {} payload bytes sent, {} reconnects, {} dead clients, {} batches stranded",
            self.bytes_sent, self.reconnects, self.dead_clients, self.connection_lost_batches
        );
        out
    }
}

/// How one batch's send loop ended at the socket layer.
enum BatchFate {
    Delivered,
    Stale,
    Lost,
}

/// One client's connection, re-dialable after an io error.
struct ClientConn {
    addr: SocketAddr,
    stream: TcpStream,
}

impl ClientConn {
    fn dial(addr: SocketAddr) -> io::Result<ClientConn> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ClientConn { addr, stream })
    }

    fn redial(&mut self) -> io::Result<()> {
        self.stream = TcpStream::connect(self.addr)?;
        let _ = self.stream.set_nodelay(true);
        Ok(())
    }

    /// Writes one envelope and reads its ack, absorbing `overloaded`
    /// and `bad crc` NACKs with bounded-free retransmits (they carry no
    /// channel-fault information, so they must not burn attempts).
    fn exchange(
        &mut self,
        envelope: &BatchEnvelope,
        acc: &mut SocketFleetSummary,
    ) -> io::Result<AckVerdict> {
        let bytes = envelope.encode();
        loop {
            self.stream.write_all(&bytes)?;
            let ack = read_ack(&mut self.stream)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::UnexpectedEof, "server closed before ack")
                })?;
            if ack.client != envelope.client || ack.seq != envelope.seq {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "ack answers a different envelope",
                ));
            }
            match ack.verdict {
                AckVerdict::Overloaded => {
                    acc.overload_retransmits += 1;
                    std::thread::sleep(Duration::from_millis(1));
                }
                AckVerdict::BadCrc => acc.crc_retransmits += 1,
                verdict => return Ok(verdict),
            }
        }
    }
}

/// Runs one batch's bounded-retry send loop over the socket, flipping
/// the same seeded coins as [`crate::send_batch`].
fn push_batch(
    conn: &mut ClientConn,
    batch: &ProducedBatch,
    spec: &FleetSpec,
    options: &SocketOptions,
    acc: &mut SocketFleetSummary,
) -> io::Result<BatchFate> {
    let uid = batch.last_run as u64;
    let max_retries = u64::from(spec.channel.max_retries);
    for attempt in 0..=max_retries {
        if attempt > 0 {
            acc.retries += 1;
        }
        acc.bytes_sent += batch.bytes.len() as u64;
        let mut rng = attempt_rng(spec.seed, uid, attempt);
        let delivered = match transmit(&batch.bytes, &mut rng, &spec.channel) {
            Delivery::Dropped => None,
            Delivery::Arrived(payload) => Some(payload),
        };
        if let Some(payload) = delivered {
            let envelope = BatchEnvelope::new(batch.client as u64, uid, attempt as u32, payload);
            let mut duplicate = false;
            let fate = loop {
                match conn.exchange(&envelope, acc)? {
                    verdict @ (AckVerdict::Accepted | AckVerdict::Duplicate) => {
                        duplicate |= verdict == AckVerdict::Duplicate;
                        if duplicate {
                            acc.duplicate_acks += 1;
                        }
                        // The ack-loss coin comes after the attempt's
                        // channel coins, on the same stream: losing an
                        // ack forces an identical retransmit that the
                        // server must answer `duplicate`.
                        if rng.next_f64() < options.ack_drop {
                            acc.ack_retransmits += 1;
                            continue;
                        }
                        break Some(BatchFate::Delivered);
                    }
                    AckVerdict::Rejected(kind) => {
                        acc.rejected_deliveries += 1;
                        if kind == cbi_reports::WireErrorKind::LayoutHashMismatch {
                            break Some(BatchFate::Stale);
                        }
                        break None; // burn this fault attempt, retry
                    }
                    AckVerdict::Overloaded | AckVerdict::BadCrc => {
                        unreachable!("exchange absorbs transport NACKs")
                    }
                }
            };
            if let Some(fate) = fate {
                return Ok(fate);
            }
        }
        if attempt < max_retries {
            // Same shift-capped exponential backoff as the channel fold.
            acc.backoff_ticks += spec.channel.backoff_base << attempt.min(16);
        }
    }
    Ok(BatchFate::Lost)
}

/// Sends every batch of one client over its connection, answering one
/// io error with one reconnect; a second failure abandons the client
/// and strands its remaining batches.
fn drive_client(
    addr: SocketAddr,
    batches: &[ProducedBatch],
    spec: &FleetSpec,
    options: &SocketOptions,
    acc: &mut SocketFleetSummary,
) {
    let mut conn = match ClientConn::dial(addr) {
        Ok(conn) => conn,
        Err(_) => {
            acc.dead_clients += 1;
            acc.connection_lost_batches += batches.len() as u64;
            return;
        }
    };
    for (i, batch) in batches.iter().enumerate() {
        acc.batches += 1;
        acc.dropped_runs += batch.dropped_runs;
        acc.spooled_reports += batch.spooled_reports;
        let fate = push_batch(&mut conn, batch, spec, options, acc).or_else(|_| {
            // One reconnect, then replay the batch's whole send loop:
            // the coins are keyed by (uid, attempt), so the rerun flips
            // the same faults, and anything the server already committed
            // answers `duplicate`.
            acc.reconnects += 1;
            conn.redial()?;
            push_batch(&mut conn, batch, spec, options, acc)
        });
        match fate {
            Ok(BatchFate::Delivered) => acc.delivered_batches += 1,
            Ok(BatchFate::Stale) => acc.stale_batches += 1,
            Ok(BatchFate::Lost) => acc.lost_batches += 1,
            Err(_) => {
                acc.dead_clients += 1;
                acc.connection_lost_batches += (batches.len() - i) as u64;
                return;
            }
        }
    }
}

/// Drives the whole community against a live ingest server at `addr`.
///
/// Every client dials exactly one connection (even spool-less clients,
/// so the server's connection ledger sees the full community), sends
/// its batches in spool order, and closes.  The committed set on the
/// server — and therefore the server's analysis — is a pure function of
/// `spec.seed`, byte-identical to what [`run_fleet`](crate::run_fleet)
/// commits in memory.
///
/// # Errors
///
/// Returns [`FleetError`] for an inconsistent spec, a failed setup, or
/// an unresolvable address.  Connection failures mid-run are *data*
/// (`dead_clients`, `connection_lost_batches`), never errors: a fleet
/// outlives its collection server.
pub fn run_fleet_over_socket(
    program: &Program,
    pool: &[Vec<i64>],
    spec: &FleetSpec,
    addr: impl ToSocketAddrs,
    options: &SocketOptions,
) -> Result<SocketFleetSummary, FleetError> {
    let addr: SocketAddr = addr
        .to_socket_addrs()
        .map_err(|e| FleetError::Config(format!("serve address: {e}")))?
        .next()
        .ok_or_else(|| FleetError::Config("serve address resolved to nothing".to_string()))?;
    let production = produce_fleet(program, pool, spec)?;

    let _send = telemetry::span("fleet.socket_send");
    let mut per_client: Vec<Vec<ProducedBatch>> = (0..spec.clients).map(|_| Vec::new()).collect();
    for batch in production.batches {
        per_client[batch.client].push(batch);
    }

    let streams = options.streams.clamp(1, spec.clients);
    let chunk = spec.clients.div_ceil(streams);
    let partials: Vec<SocketFleetSummary> = std::thread::scope(|s| {
        let handles: Vec<_> = per_client
            .chunks(chunk.max(1))
            .map(|mine| {
                s.spawn(move || {
                    let mut acc = SocketFleetSummary::default();
                    for batches in mine {
                        drive_client(addr, batches, spec, options, &mut acc);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("socket fleet worker panicked"))
            .collect()
    });

    let mut summary = SocketFleetSummary {
        clients: spec.clients,
        runs: spec.runs,
        ..SocketFleetSummary::default()
    };
    for partial in &partials {
        summary.absorb(partial);
    }
    telemetry::count("fleet.socket.batches", summary.batches);
    telemetry::count("fleet.socket.delivered", summary.delivered_batches);
    telemetry::count("fleet.socket.duplicate_acks", summary.duplicate_acks);
    telemetry::count("fleet.socket.reconnects", summary.reconnects);
    Ok(summary)
}
