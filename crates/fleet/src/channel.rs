//! The lossy channel between a client's spool and the collection server.
//!
//! Remote sampling lives on real networks: batches vanish, arrive cut
//! short, or arrive with flipped bits.  The channel model applies those
//! faults per transmission *attempt*, seeded, so an entire campaign of
//! failures replays bit-for-bit from the fleet seed.  Clients respond
//! with bounded retry under exponential backoff; what that policy does
//! to a batch is decided here, in one place, as a pure function of the
//! fault coin flips and the server's (deterministic) accept/reject
//! verdict.

use cbi_reports::{decode_batch, Report, ReportLayout, WireErrorKind};
use cbi_sampler::Pcg32;

/// PRNG stream tag for channel faults (one stream per attempt).  Shared
/// with the socket driver so a real-wire fleet draws the exact same
/// fault coins as the in-memory fold.
pub(crate) const CHANNEL_STREAM: u64 = 0x63_68_61_6e; // "chan"

/// Attempts per batch are bounded, so per-attempt streams can be packed
/// as `batch_uid * ATTEMPT_STRIDE + attempt`.
pub(crate) const ATTEMPT_STRIDE: u64 = 64;

/// The seeded fault RNG for one `(batch_uid, attempt)` pair — the coins
/// [`send_batch`] flips, reproducible by any transport.
pub(crate) fn attempt_rng(seed: u64, batch_uid: u64, attempt: u64) -> Pcg32 {
    Pcg32::with_stream(
        seed,
        CHANNEL_STREAM ^ (batch_uid.wrapping_mul(ATTEMPT_STRIDE) + attempt),
    )
}

/// Fault probabilities and retry policy for the client↔server channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelSpec {
    /// Probability an attempt vanishes entirely (nothing reaches the
    /// server; the client times out and retries).
    pub drop: f64,
    /// Probability a delivered attempt arrives truncated.
    pub truncate: f64,
    /// Probability a delivered attempt arrives with one flipped bit.
    pub bit_flip: f64,
    /// Retries after the first attempt before the batch is abandoned.
    pub max_retries: u32,
    /// Backoff after failed attempt `k` costs `backoff_base << k` ticks.
    pub backoff_base: u64,
}

impl Default for ChannelSpec {
    /// A clean channel: nothing dropped, nothing corrupted.
    fn default() -> Self {
        ChannelSpec {
            drop: 0.0,
            truncate: 0.0,
            bit_flip: 0.0,
            max_retries: 3,
            backoff_base: 1,
        }
    }
}

impl ChannelSpec {
    /// A channel that loses or corrupts roughly `fault` of attempts,
    /// split evenly between drops, truncations, and bit flips.
    pub fn faulty(fault: f64) -> Self {
        ChannelSpec {
            drop: fault / 3.0,
            truncate: fault / 3.0,
            bit_flip: fault / 3.0,
            ..ChannelSpec::default()
        }
    }
}

/// What one transmission attempt put on the server's doorstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// The attempt never arrived.
    Dropped,
    /// These bytes arrived (possibly truncated or bit-flipped).
    Arrived(Vec<u8>),
}

/// Applies seeded channel faults to one attempt's payload.
pub fn transmit(bytes: &[u8], rng: &mut Pcg32, spec: &ChannelSpec) -> Delivery {
    if rng.next_f64() < spec.drop {
        return Delivery::Dropped;
    }
    let mut payload = bytes.to_vec();
    if rng.next_f64() < spec.truncate && !payload.is_empty() {
        payload.truncate(rng.below(payload.len() as u64) as usize);
    }
    if rng.next_f64() < spec.bit_flip && !payload.is_empty() {
        let pos = rng.below(payload.len() as u64) as usize;
        payload[pos] ^= 1 << rng.below(8);
    }
    Delivery::Arrived(payload)
}

/// How a batch's send loop ended.
#[derive(Debug, Clone, PartialEq)]
pub enum SendOutcome {
    /// The server decoded an attempt cleanly and committed these
    /// reports (decoded from the *delivered* bytes, so a bit flip that
    /// still parses delivers silently corrupt data, as on a real wire).
    Accepted {
        /// The committed reports.
        reports: Vec<Report>,
        /// Payload bytes of the accepted attempt.
        bytes: u64,
        /// The delivered bytes differed from what the client sent: the
        /// channel altered the stream but it still decoded.
        corrupted: bool,
    },
    /// The server rejected the stream's layout fingerprint: a stale
    /// client.  The client gives up immediately (its binary will never
    /// match), so one rejection is recorded and no retries burn.
    Stale,
    /// Every allowed attempt was dropped or rejected; the batch is
    /// abandoned and its reports are lost.
    Lost,
}

/// One delivered-but-rejected attempt, with the server's typed verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejection {
    /// Zero-based attempt index the rejection happened on.
    pub attempt: u32,
    /// The typed wire-error kind the server rejected with.
    pub kind: WireErrorKind,
}

impl Rejection {
    /// Whether this was a stale-layout handshake rejection.
    pub fn is_stale(&self) -> bool {
        self.kind == WireErrorKind::LayoutHashMismatch
    }
}

/// The full accounting of one batch's send loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SendResult {
    /// How the loop ended.
    pub outcome: SendOutcome,
    /// Attempts transmitted (including the successful one, if any).
    pub attempts: u32,
    /// Bytes put on the wire across all attempts.
    pub bytes_sent: u64,
    /// Backoff ticks accumulated between attempts.
    pub backoff_ticks: u64,
    /// Delivered-but-rejected attempts, in order, each carrying its
    /// attempt index and the server's typed [`WireErrorKind`].
    pub rejections: Vec<Rejection>,
}

/// Runs the bounded-retry send loop for one spooled batch.
///
/// `batch_uid` must be globally unique (it seeds the per-attempt fault
/// stream); `expected` is the server's current layout, against which
/// each delivered attempt is validated exactly as the server's
/// transactional ingest would.
pub fn send_batch(
    bytes: &[u8],
    batch_uid: u64,
    seed: u64,
    channel: &ChannelSpec,
    expected: ReportLayout,
) -> SendResult {
    let mut result = SendResult {
        outcome: SendOutcome::Lost,
        attempts: 0,
        bytes_sent: 0,
        backoff_ticks: 0,
        rejections: Vec::new(),
    };
    for attempt in 0..=u64::from(channel.max_retries) {
        let mut rng = attempt_rng(seed, batch_uid, attempt);
        result.attempts += 1;
        result.bytes_sent += bytes.len() as u64;
        let verdict = match transmit(bytes, &mut rng, channel) {
            Delivery::Dropped => None,
            Delivery::Arrived(payload) => {
                let corrupted = payload != bytes;
                Some((decode_batch(&payload, Some(expected)), corrupted))
            }
        };
        match verdict {
            Some((Ok((reports, _, consumed)), corrupted)) => {
                result.outcome = SendOutcome::Accepted {
                    reports,
                    bytes: consumed,
                    corrupted,
                };
                return result;
            }
            Some((Err(rejected), _)) => {
                let rejection = Rejection {
                    attempt: attempt as u32,
                    kind: rejected.error.kind(),
                };
                result.rejections.push(rejection);
                if rejection.is_stale() {
                    result.outcome = SendOutcome::Stale;
                    return result;
                }
            }
            None => {}
        }
        if attempt < u64::from(channel.max_retries) {
            // Exponential backoff, shift-capped so ticks cannot overflow.
            result.backoff_ticks += channel.backoff_base << attempt.min(16);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::wire::encode_reports;
    use cbi_reports::Label;

    fn layout() -> ReportLayout {
        ReportLayout {
            counters: 2,
            layout_hash: 0xf1ee7,
        }
    }

    fn batch(hash: u64) -> Vec<u8> {
        let reports = vec![
            Report::new(3, Label::Success, vec![1, 0]),
            Report::new(7, Label::Failure, vec![0, 2]),
        ];
        encode_reports(&reports, hash, 2).unwrap()
    }

    #[test]
    fn clean_channel_accepts_first_attempt() {
        let bytes = batch(layout().layout_hash);
        let r = send_batch(&bytes, 0, 1, &ChannelSpec::default(), layout());
        assert_eq!(r.attempts, 1);
        assert_eq!(r.bytes_sent, bytes.len() as u64);
        assert!(r.rejections.is_empty());
        match r.outcome {
            SendOutcome::Accepted {
                ref reports,
                bytes: b,
                corrupted,
            } => {
                assert_eq!(reports.len(), 2);
                assert_eq!(b, bytes.len() as u64);
                assert!(!corrupted, "a clean channel delivers verbatim");
            }
            ref other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn total_loss_exhausts_retries_with_backoff() {
        let channel = ChannelSpec {
            drop: 1.0,
            max_retries: 3,
            backoff_base: 2,
            ..ChannelSpec::default()
        };
        let bytes = batch(layout().layout_hash);
        let r = send_batch(&bytes, 9, 1, &channel, layout());
        assert_eq!(r.outcome, SendOutcome::Lost);
        assert_eq!(r.attempts, 4, "initial + 3 retries");
        assert_eq!(r.bytes_sent, 4 * bytes.len() as u64);
        assert_eq!(r.backoff_ticks, 2 + 4 + 8, "2<<0 + 2<<1 + 2<<2");
    }

    #[test]
    fn stale_layout_gives_up_after_one_rejection() {
        let bytes = batch(layout().layout_hash ^ 0xff);
        let channel = ChannelSpec {
            max_retries: 5,
            ..ChannelSpec::default()
        };
        let r = send_batch(&bytes, 2, 1, &channel, layout());
        assert_eq!(r.outcome, SendOutcome::Stale);
        assert_eq!(r.attempts, 1, "no point retrying a stale binary");
        assert_eq!(
            r.rejections,
            vec![Rejection {
                attempt: 0,
                kind: WireErrorKind::LayoutHashMismatch
            }]
        );
        assert!(r.rejections[0].is_stale());
    }

    #[test]
    fn corrupting_channel_is_deterministic() {
        let channel = ChannelSpec::faulty(0.9);
        let bytes = batch(layout().layout_hash);
        for uid in 0..16 {
            let a = send_batch(&bytes, uid, 77, &channel, layout());
            let b = send_batch(&bytes, uid, 77, &channel, layout());
            assert_eq!(a, b, "uid {uid}");
        }
    }

    #[test]
    fn decodable_bit_flips_are_flagged_corrupt() {
        // Every attempt flips exactly one bit; flips landing in counter
        // varints still decode — those must surface as corrupted, not
        // silently pass for clean.
        let channel = ChannelSpec {
            bit_flip: 1.0,
            max_retries: 0,
            ..ChannelSpec::default()
        };
        let bytes = batch(layout().layout_hash);
        let mut corrupt_accepts = 0;
        for uid in 0..64 {
            if let SendOutcome::Accepted { corrupted, .. } =
                send_batch(&bytes, uid, 5, &channel, layout()).outcome
            {
                assert!(corrupted, "uid {uid}: delivered bytes were altered");
                corrupt_accepts += 1;
            }
        }
        assert!(corrupt_accepts > 0, "some flips land in benign positions");
    }

    #[test]
    fn rejections_carry_ordered_attempt_indices_and_kinds() {
        let channel = ChannelSpec {
            truncate: 0.7,
            max_retries: 6,
            ..ChannelSpec::default()
        };
        let bytes = batch(layout().layout_hash);
        let multi = (0..64)
            .map(|uid| send_batch(&bytes, uid, 5, &channel, layout()))
            .find(|r| r.rejections.len() >= 2)
            .expect("heavy truncation rejects repeatedly");
        let attempts: Vec<u32> = multi.rejections.iter().map(|r| r.attempt).collect();
        let mut sorted = attempts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(attempts, sorted, "attempt indices strictly increase");
        assert!(multi.rejections.iter().all(|r| !r.is_stale()));
    }

    #[test]
    fn truncation_rejections_allow_a_later_clean_attempt() {
        // With heavy truncation but no drops, some uid eventually shows
        // a rejected-then-accepted sequence — the retry path working.
        let channel = ChannelSpec {
            truncate: 0.6,
            max_retries: 6,
            ..ChannelSpec::default()
        };
        let bytes = batch(layout().layout_hash);
        let recovered = (0..64)
            .map(|uid| send_batch(&bytes, uid, 5, &channel, layout()))
            .any(|r| !r.rejections.is_empty() && matches!(r.outcome, SendOutcome::Accepted { .. }));
        assert!(recovered, "no batch recovered after a rejection");
    }
}
