//! Fleet simulator: a heterogeneous, fault-prone user community driving
//! the remote sampling pipeline at scale.
//!
//! §3.1.3 of *Bug Isolation via Remote Program Sampling* treats the user
//! community itself as the detection instrument ("sixty million Office
//! XP licenses … produce 230,258 runs every nineteen minutes").  This
//! crate composes every ingredient the repository already has — the
//! fair sampler, single-function instrumentation variants (§3.1.2),
//! mixed sampling densities (§3.1.1), the binary wire format, and
//! streaming server-side analysis (§5) — into a deterministic model of
//! such a community:
//!
//! * [`ClientProfile`] — each simulated user draws a sampling density
//!   from a configured mix, an instrumentation variant, a binary
//!   version (stale clients are *rejected, counted, never crashed* by
//!   the layout-hash handshake), all from seeded distributions;
//! * a Zipf-skewed input population ([`cbi_sampler::Zipf`]) models
//!   which workloads users actually run;
//! * [`ChannelSpec`] — clients spool reports and transmit batches over
//!   a lossy channel (seeded drop/truncate/bit-flip faults) with
//!   bounded retry and exponential backoff;
//! * the server folds surviving batches into
//!   [`cbi::EpochAggregator`], answering "after N community runs, what
//!   is detection latency, survivor count, rank of the planted bug, and
//!   bytes on the wire?" against corpus ground truth.
//!
//! Everything is a pure function of the [`FleetSpec`] seed, and the
//! batch fold happens in a canonical order, so any `--jobs` produces
//! byte-identical summaries — the same ordered-merge contract the
//! campaign engine established.
//!
//! # Example
//!
//! ```
//! use cbi_fleet::{run_fleet, ChannelSpec, FleetSpec};
//!
//! let program = cbi_minic::parse(
//!     "fn main() -> int { int v = read(); print(v); return 0; }",
//! )?;
//! let pool: Vec<Vec<i64>> = (0..16).map(|i| vec![i]).collect();
//! let mut spec = FleetSpec::new(8, 64);
//! spec.channel = ChannelSpec::faulty(0.2);
//! let report = run_fleet(&program, &pool, &spec, None)?;
//! assert_eq!(report.summary.runs, 64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod corpus;
pub mod profile;
pub mod sim;
pub mod socket;
pub mod summary;

pub use channel::{
    send_batch, transmit, ChannelSpec, Delivery, Rejection, SendOutcome, SendResult,
};
pub use corpus::{corpus_pool, run_corpus_fleet};
pub use profile::{draw_profiles, ClientProfile};
pub use sim::{run_fleet, FleetReport, FleetSpec, FleetSummary};
pub use socket::{run_fleet_over_socket, SocketFleetSummary, SocketOptions};
pub use summary::render_summary;

use std::error::Error;
use std::fmt;

/// An error from fleet simulation setup or execution.
///
/// Channel faults, rejected batches, and crashing runs are *data*
/// (counted in the [`FleetSummary`]), never errors.
#[derive(Debug)]
pub enum FleetError {
    /// The spec is internally inconsistent.
    Config(String),
    /// Instrumentation, transformation, or VM execution failed.
    Workload(cbi_workloads::WorkloadError),
    /// Encoding a spooled batch failed.
    Wire(cbi_reports::WireError),
    /// The server sink rejected the stream at setup.
    Sink(cbi_reports::SinkError),
    /// A corpus entry's recorded layout no longer matches the
    /// instrumented program (ground truth would be meaningless).
    LayoutDrift {
        /// The manifest's recorded layout hash.
        expected: u64,
        /// The freshly instrumented layout hash.
        got: u64,
    },
    /// A corpus entry's source failed to parse.
    Parse(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Config(m) => write!(f, "fleet config: {m}"),
            FleetError::Workload(e) => write!(f, "fleet: {e}"),
            FleetError::Wire(e) => write!(f, "fleet spool: {e}"),
            FleetError::Sink(e) => write!(f, "fleet server: {e}"),
            FleetError::LayoutDrift { expected, got } => write!(
                f,
                "corpus layout drift: manifest pins {expected:#018x}, got {got:#018x}"
            ),
            FleetError::Parse(m) => write!(f, "corpus source: {m}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Workload(e) => Some(e),
            FleetError::Wire(e) => Some(e),
            FleetError::Sink(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cbi_workloads::WorkloadError> for FleetError {
    fn from(e: cbi_workloads::WorkloadError) -> Self {
        FleetError::Workload(e)
    }
}

impl From<cbi_instrument::InstrumentError> for FleetError {
    fn from(e: cbi_instrument::InstrumentError) -> Self {
        FleetError::Workload(e.into())
    }
}

impl From<cbi_vm::VmError> for FleetError {
    fn from(e: cbi_vm::VmError) -> Self {
        FleetError::Workload(e.into())
    }
}

impl From<cbi_reports::WireError> for FleetError {
    fn from(e: cbi_reports::WireError) -> Self {
        FleetError::Wire(e)
    }
}

impl From<cbi_reports::SinkError> for FleetError {
    fn from(e: cbi_reports::SinkError) -> Self {
        FleetError::Sink(e)
    }
}
