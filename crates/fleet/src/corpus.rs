//! Driving a fleet against corpus ground truth.
//!
//! A [`PlantedBug`] manifest records the mutated source, the true
//! counter, and the layout hash that pins them together.  This module
//! parses the source, regenerates an input population from the bug's
//! workload distribution (sized for a community, not a trial list),
//! verifies the layout has not drifted, and runs the fleet with the true
//! counter as the detection target — so the epoch trajectory reports
//! detection latency and rank *of a demonstrated bug*.

use crate::sim::{run_fleet, FleetReport, FleetSpec};
use crate::FleetError;
use cbi_corpus::generate::{corpus_ccrypt_config, testgen_trials};
use cbi_corpus::{CorpusEntry, PlantedBug, Workload};
use cbi_instrument::{instrument, Scheme};
use cbi_workloads::{bc_trials, ccrypt_trials, BcTrialConfig};

/// Regenerates an input population for `bug`'s workload: the same
/// distribution the corpus validated the bug against, but sized and
/// seeded for a community pool rather than a fixed trial list.
pub fn corpus_pool(bug: &PlantedBug, n: usize, seed: u64) -> Vec<Vec<i64>> {
    match bug.workload {
        Workload::Testgen => testgen_trials(n, seed),
        Workload::Ccrypt => ccrypt_trials(n, seed, &corpus_ccrypt_config()),
        Workload::Bc => bc_trials(n, seed, &BcTrialConfig::default()),
    }
}

/// Runs a fleet against a corpus entry, drawing inputs from a pool of
/// `pool_size` regenerated workload inputs and targeting the planted
/// bug's true counter.
///
/// Corpus entries are instrumented with [`Scheme::Checks`] (the scheme
/// their manifests were validated under); `spec.scheme` is overridden
/// accordingly.
///
/// # Errors
///
/// Returns [`FleetError::Parse`] if the entry's source no longer
/// parses, [`FleetError::LayoutDrift`] if the instrumented layout hash
/// disagrees with the manifest (the recorded true counter would point at
/// the wrong predicate), or any simulation error from [`run_fleet`].
pub fn run_corpus_fleet(
    entry: &CorpusEntry,
    pool_size: usize,
    spec: &FleetSpec,
) -> Result<FleetReport, FleetError> {
    let bug = &entry.bug;
    let program = cbi_minic::parse(&entry.source)
        .map_err(|e| FleetError::Parse(format!("{}: {e}", bug.id)))?;
    let mut spec = spec.clone();
    spec.scheme = Scheme::Checks;
    let sites = instrument(&program, spec.scheme)?.sites;
    if sites.layout_hash() != bug.layout_hash || sites.total_counters() != bug.counters {
        return Err(FleetError::LayoutDrift {
            expected: bug.layout_hash,
            got: sites.layout_hash(),
        });
    }
    let pool = corpus_pool(bug, pool_size, spec.seed ^ 0xc0_70_01);
    run_fleet(&program, &pool, &spec, Some(bug.primary().true_counter))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_corpus::{generate_corpus, GenerateConfig};

    fn one_entry() -> CorpusEntry {
        let cfg = GenerateConfig {
            size: 2,
            seed: 41,
            trials: 48,
        };
        let corpus = generate_corpus(&cfg).expect("corpus generation");
        corpus
            .entries
            .first()
            .expect("at least one planted bug")
            .clone()
    }

    #[test]
    fn fleet_detects_a_planted_bug_and_scores_it() {
        let entry = one_entry();
        let mut spec = FleetSpec::new(16, 600);
        spec.densities = vec![(5, 1.0)];
        spec.batch_size = 10;
        spec.epoch_len = 100;
        let report = run_corpus_fleet(&entry, 64, &spec).unwrap();
        assert_eq!(report.summary.runs, 600);
        assert!(report.summary.failures > 0, "the planted bug must fire");
        assert!(
            report.summary.target_latency.is_some(),
            "dense sampling over 600 runs must observe the true predicate"
        );
        assert!(report.target_rank.is_some());
        // The epoch trajectory is monotone in runs.
        let runs: Vec<u64> = report.epochs.iter().map(|e| e.runs).collect();
        assert!(runs.windows(2).all(|w| w[0] < w[1]), "{runs:?}");
    }

    #[test]
    fn drifted_layout_is_refused() {
        let mut entry = one_entry();
        entry.bug.layout_hash ^= 1;
        let spec = FleetSpec::new(4, 20);
        assert!(matches!(
            run_corpus_fleet(&entry, 8, &spec),
            Err(FleetError::LayoutDrift { .. })
        ));
    }

    #[test]
    fn unparsable_source_is_refused() {
        let mut entry = one_entry();
        entry.source = "fn main( {".to_string();
        let spec = FleetSpec::new(4, 20);
        assert!(matches!(
            run_corpus_fleet(&entry, 8, &spec),
            Err(FleetError::Parse(_))
        ));
    }
}
