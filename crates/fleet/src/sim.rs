//! The fleet engine: profile the community, run every client, push every
//! batch through the lossy channel, and fold what survives into the
//! server's epoch aggregation — deterministically, at any `--jobs`.
//!
//! Determinism rests on two properties.  First, every run and every
//! transmission attempt is a pure function of `(spec, index)`: run `r`
//! belongs to client `r % clients`, draws its input from a seeded Zipf
//! stream keyed by `r`, and samples with a countdown bank seeded by
//! `seed + r`; a batch's fault coins are keyed by its globally unique
//! batch id.  Second, batches are folded into the server in ascending
//! order of their *last run index* — the moment the client's spool
//! filled — which is unique per batch because every run belongs to
//! exactly one batch.  Workers therefore shard batches freely and the
//! ordered merge reproduces the serial fold bit-for-bit.

use crate::channel::{send_batch, ChannelSpec, SendOutcome};
use crate::profile::{draw_profiles, ClientProfile};
use crate::FleetError;
use cbi::epoch::{EpochAggregator, EpochSnapshot};
use cbi::streaming::StreamingConfig;
use cbi_instrument::{
    apply_sampling, instrument, single_function_variants, Scheme, SiteTable, TransformOptions,
};
use cbi_minic::slots::SlotProgram;
use cbi_minic::Program;
use cbi_reports::wire::encode_reports;
use cbi_reports::{DecodeOutcome, Label, Provenance, Report, ReportLayout, ReportSink};
use cbi_sampler::{CountdownBank, Pcg32, Zipf};
use cbi_telemetry as telemetry;
use cbi_vm::{bytecode::BcProgram, Engine, RunOutcome, Vm};

/// PRNG stream tag for per-run input selection.
const RUN_STREAM: u64 = 0x72_75_6e_73; // "runs"

/// XOR salt applied to a stale client's layout fingerprint: an older
/// binary version hashes its (different) site table differently.
const STALE_SALT: u64 = 0x57a1_e000_0000_0001;

/// Configuration of a fleet simulation.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Community size.
    pub clients: usize,
    /// Total community runs, dealt round-robin over the clients.
    pub runs: usize,
    /// Runs a client spools before transmitting one batch.
    pub batch_size: usize,
    /// Server epoch length, in accepted runs.
    pub epoch_len: u64,
    /// Input-pool popularity skew (Zipf exponent; `0` is uniform).
    pub zipf_exponent: f64,
    /// Sampling-density mix: `(denominator, weight)` pairs, e.g.
    /// `[(100, 1.0), (1000, 3.0)]` for a 1:3 mix of 1/100 and 1/1000.
    pub densities: Vec<(u64, f64)>,
    /// Fraction of clients running a single-function variant binary.
    pub variant_fraction: f64,
    /// Fraction of clients on a stale binary version.
    pub stale_fraction: f64,
    /// Observation scheme to instrument.
    pub scheme: Scheme,
    /// The lossy channel between clients and the server.
    pub channel: ChannelSpec,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Worker threads to shard batches over (`0`/`1` mean serial); any
    /// value yields bit-identical results.
    pub jobs: usize,
    /// Per-run operation budget.
    pub op_limit: u64,
    /// Heap slack per allocation.
    pub heap_slack: usize,
    /// Countdown-bank size per run.
    pub bank_size: usize,
    /// Streaming-analyzer hyper-parameters for the server.
    pub streaming: StreamingConfig,
    /// Server-side flight-recorder capacity (last N ingest events kept
    /// for anomaly dumps; `0` disables retention).
    pub flight_recorder: usize,
    /// Interpreter engine every client binary runs on.  The default is
    /// [`Engine::Bytecode`]: each binary (the full build and every
    /// variant) is compiled to flat instructions once at setup.  All
    /// engines produce bit-identical fleet reports.
    pub engine: Engine,
}

impl FleetSpec {
    /// A fleet of `clients` users performing `runs` community runs, with
    /// a uniform input pool, all-1/100 densities, full binaries, no
    /// stale clients, and a clean channel.
    pub fn new(clients: usize, runs: usize) -> Self {
        FleetSpec {
            clients,
            runs,
            batch_size: 16,
            epoch_len: 256,
            zipf_exponent: 0.0,
            densities: vec![(100, 1.0)],
            variant_fraction: 0.0,
            stale_fraction: 0.0,
            scheme: Scheme::Returns,
            channel: ChannelSpec::default(),
            seed: 0x5eed,
            jobs: 1,
            op_limit: cbi_vm::DEFAULT_OP_LIMIT,
            heap_slack: cbi_vm::heap::DEFAULT_SLACK,
            bank_size: 1024,
            streaming: StreamingConfig::default(),
            flight_recorder: 64,
            engine: Engine::Bytecode,
        }
    }

    /// The same fleet sharded over `jobs` worker threads.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Validates the parts a wrong config would turn into a panic deep
    /// inside a worker.
    fn validate(&self) -> Result<(), FleetError> {
        let bad = |message: &str| Err(FleetError::Config(message.to_string()));
        if self.clients == 0 {
            return bad("fleet needs at least one client");
        }
        if self.batch_size == 0 {
            return bad("batch size must be nonzero");
        }
        if self.epoch_len == 0 {
            return bad("epoch length must be nonzero");
        }
        if self.densities.is_empty()
            || self
                .densities
                .iter()
                .any(|&(d, w)| d == 0 || !w.is_finite() || w <= 0.0)
        {
            return bad("density mix needs positive denominators and weights");
        }
        if !(0.0..=1.0).contains(&self.variant_fraction)
            || !(0.0..=1.0).contains(&self.stale_fraction)
        {
            return bad("variant and stale fractions must be in [0, 1]");
        }
        Ok(())
    }
}

/// The integer-valued outcome of a fleet simulation — everything in the
/// operator's summary, byte-stable across platforms and `--jobs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSummary {
    /// Community size.
    pub clients: usize,
    /// Clients on a stale binary version.
    pub stale_clients: usize,
    /// Clients running a single-function variant.
    pub variant_clients: usize,
    /// Clients per density denominator, in spec order.
    pub density_clients: Vec<(u64, usize)>,
    /// Community runs attempted.
    pub runs: usize,
    /// Runs dropped client-side (operation budget exhausted).
    pub dropped_runs: usize,
    /// Reports spooled across all clients.
    pub spooled_reports: u64,
    /// Batches spooled (each enters the send loop once).
    pub batches: u64,
    /// Batches the server accepted.
    pub accepted_batches: u64,
    /// Accepted batches whose delivered bytes were altered in flight
    /// (bit flips that still decoded).
    pub corrupt_batches: u64,
    /// Batches abandoned after exhausting retries.
    pub lost_batches: u64,
    /// Batches abandoned at the stale-layout handshake.
    pub stale_batches: u64,
    /// Delivered-but-rejected attempts the server counted.
    pub rejected_deliveries: u64,
    /// Rejected deliveries that were stale-layout handshakes.
    pub stale_rejections: u64,
    /// Transmission attempts beyond each batch's first.
    pub retries: u64,
    /// Backoff ticks clients spent waiting between attempts.
    pub backoff_ticks: u64,
    /// Bytes put on the wire across all attempts.
    pub bytes_sent: u64,
    /// Bytes in accepted batches.
    pub bytes_accepted: u64,
    /// Reports the server committed.
    pub accepted_reports: u64,
    /// Failure-labelled reports the server committed.
    pub failures: u64,
    /// Counters in the instrumented layout.
    pub counters: usize,
    /// Counters observed at least once.
    pub observed_counters: usize,
    /// Survivors of combined §3.2 elimination at end of stream.
    pub survivors: usize,
    /// Detection latency of the target counter (community runs, 1-based).
    pub target_latency: Option<usize>,
    /// Epochs closed.
    pub epochs: usize,
}

/// The full result: the summary plus the float-bearing extras and the
/// server state itself.
#[derive(Debug)]
pub struct FleetReport {
    /// Integer summary (golden-file safe).
    pub summary: FleetSummary,
    /// Per-epoch snapshots, oldest first.
    pub epochs: Vec<EpochSnapshot>,
    /// 0-based regression rank of the target counter at end of stream.
    pub target_rank: Option<usize>,
    /// The folded server state, for further analysis.
    pub aggregator: EpochAggregator,
    /// The community's profiles, for inspection.
    pub profiles: Vec<ClientProfile>,
}

/// One client's spooled batch, scheduled at its last run's index.
struct BatchPlan {
    client: usize,
    runs: Vec<usize>,
}

/// One spooled batch, fully materialized but not yet transmitted: the
/// client ran its VM for every run in the spool and encoded the wire
/// payload (under the stale layout salt if the client is stale).  Which
/// transport carries it — the in-memory channel fold of [`run_fleet`]
/// or a real TCP socket — is the caller's choice; production is a pure
/// function of `(spec, plan)` either way.
#[derive(Debug, Clone)]
pub(crate) struct ProducedBatch {
    /// Owning client's index in the community.
    pub client: usize,
    /// Index of the batch's last run — globally unique, the batch uid.
    pub last_run: usize,
    /// Runs dropped client-side (operation budget exhausted).
    pub dropped_runs: usize,
    /// Reports spooled into the payload.
    pub spooled_reports: u64,
    /// The encoded CBIR wire payload.
    pub bytes: Vec<u8>,
}

/// The fleet with every batch produced: instrumentation, the community
/// profiles, and the spooled wire payloads sorted by last run — the
/// serial transmission schedule.
pub(crate) struct FleetProduction {
    pub sites: SiteTable,
    pub layout: ReportLayout,
    pub profiles: Vec<ClientProfile>,
    pub batches: Vec<ProducedBatch>,
}

/// Runs every client's VM and spools every batch, sharded over
/// `spec.jobs` workers.  No transport is touched: the result is the
/// exact byte streams the community would put on any wire.
pub(crate) fn produce_fleet(
    program: &Program,
    pool: &[Vec<i64>],
    spec: &FleetSpec,
) -> Result<FleetProduction, FleetError> {
    spec.validate()?;
    if pool.is_empty() {
        return Err(FleetError::Config(
            "fleet needs a nonempty input pool".to_string(),
        ));
    }

    // ---- Setup: instrument once, compile every binary the fleet runs.
    let _setup = telemetry::span("fleet.setup");
    let inst = instrument(program, spec.scheme)?;
    let sites = inst.sites.clone();
    let layout = ReportLayout {
        counters: sites.total_counters(),
        layout_hash: sites.layout_hash(),
    };
    let (full, _) = apply_sampling(&inst.program, &TransformOptions::default())?;
    let variants: Vec<Program> = if spec.variant_fraction > 0.0 {
        single_function_variants(&inst)
            .iter()
            .map(|v| apply_sampling(&v.program, &TransformOptions::default()).map(|(p, _)| p))
            .collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };
    let exe = FleetExe::build(spec.engine, full, variants);
    let profiles = draw_profiles(spec, exe.n_variants());
    let zipf = Zipf::new(pool.len(), spec.zipf_exponent)
        .map_err(|e| FleetError::Config(format!("input-pool popularity: {e}")))?;
    let plans = plan_batches(spec);
    drop(_setup);

    // ---- Execute: shard batches over workers; each batch is pure in
    // its indices, so the partition cannot affect any outcome.
    let outcomes: Vec<Result<Vec<ProducedBatch>, FleetError>> = {
        let _execute = telemetry::span("fleet.execute");
        let jobs = spec.jobs.clamp(1, plans.len().max(1));
        let chunk = plans.len().div_ceil(jobs);
        let tm_on = telemetry::enabled();
        std::thread::scope(|s| {
            let handles: Vec<_> = plans
                .chunks(chunk.max(1))
                .enumerate()
                .map(|(w, shard)| {
                    let ctx = WorkerCtx {
                        spec,
                        pool,
                        zipf: &zipf,
                        sites: &sites,
                        layout,
                        exe: &exe,
                        profiles: &profiles,
                    };
                    s.spawn(move || {
                        if tm_on {
                            telemetry::set_worker(w as u32 + 1);
                        }
                        let _shard_span = telemetry::span("fleet.shard");
                        shard.iter().map(|plan| produce_batch(&ctx, plan)).collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fleet worker panicked"))
                .collect()
        })
    };
    let mut batches: Vec<ProducedBatch> = Vec::with_capacity(plans.len());
    for shard in outcomes {
        batches.extend(shard?);
    }
    batches.sort_by_key(|b| b.last_run);

    Ok(FleetProduction {
        sites,
        layout,
        profiles,
        batches,
    })
}

/// Simulates the fleet: `pool` is the input population clients draw
/// from (Zipf-skewed by `spec.zipf_exponent`), and `target_counter` is
/// the ground-truth counter whose latency and rank the report tracks.
///
/// # Errors
///
/// Returns [`FleetError`] if the spec is inconsistent or
/// instrumentation, transformation, or VM setup fails.  Individual run
/// crashes and channel faults are data, not errors.
///
/// # Panics
///
/// Panics if a worker thread panics (a bug, not an input condition).
pub fn run_fleet(
    program: &Program,
    pool: &[Vec<i64>],
    spec: &FleetSpec,
    target_counter: Option<usize>,
) -> Result<FleetReport, FleetError> {
    let production = produce_fleet(program, pool, spec)?;
    let FleetProduction {
        sites,
        layout,
        profiles,
        batches,
    } = &production;

    // ---- Merge: push every batch through the channel and fold the
    // survivors in last-run order — the serial schedule.
    let _merge = telemetry::span("fleet.merge");
    let mut aggregator = EpochAggregator::new(
        sites.clone(),
        spec.epoch_len,
        spec.streaming,
        target_counter,
    )
    .with_flight_capacity(spec.flight_recorder);
    aggregator.begin(*layout)?;

    let mut summary = summary_skeleton(spec, profiles, layout.counters);
    for batch in batches {
        let send = send_batch(
            &batch.bytes,
            batch.last_run as u64,
            spec.seed,
            &spec.channel,
            *layout,
        );
        let cohort = profiles[batch.client].cohort();
        let provenance = |attempt: u32| {
            Provenance::new(batch.client as u64, attempt).with_cohort(cohort.clone())
        };
        summary.dropped_runs += batch.dropped_runs;
        summary.spooled_reports += batch.spooled_reports;
        summary.batches += 1;
        let retries = u64::from(send.attempts.saturating_sub(1));
        summary.retries += retries;
        aggregator.note_retries(&cohort, retries);
        summary.backoff_ticks += send.backoff_ticks;
        summary.bytes_sent += send.bytes_sent;
        for rejection in &send.rejections {
            summary.rejected_deliveries += 1;
            summary.stale_rejections += u64::from(rejection.is_stale());
            aggregator.note_batch(
                &provenance(rejection.attempt),
                DecodeOutcome::Rejected(rejection.kind),
                0,
            );
        }
        match &send.outcome {
            SendOutcome::Accepted {
                reports,
                bytes,
                corrupted,
            } => {
                summary.accepted_batches += 1;
                summary.corrupt_batches += u64::from(*corrupted);
                summary.bytes_accepted += bytes;
                let outcome = if *corrupted {
                    DecodeOutcome::CorruptButDecodable
                } else {
                    DecodeOutcome::Clean
                };
                aggregator.note_batch(
                    &provenance(send.attempts.saturating_sub(1)),
                    outcome,
                    *bytes,
                );
                for report in reports {
                    summary.accepted_reports += 1;
                    summary.failures += u64::from(report.label == Label::Failure);
                    aggregator.accept(report.clone())?;
                }
            }
            SendOutcome::Stale => summary.stale_batches += 1,
            SendOutcome::Lost => summary.lost_batches += 1,
        }
    }
    if aggregator
        .snapshots()
        .last()
        .is_none_or(|s| s.runs != aggregator.runs())
    {
        aggregator.snapshot_now();
    }

    summary.observed_counters = aggregator.first_observation().observed_count();
    summary.survivors = aggregator.analyzer().eliminate(sites).combined.len();
    summary.target_latency =
        target_counter.and_then(|c| aggregator.first_observation().latency_of_counter(c));
    summary.epochs = aggregator.snapshots().len();

    telemetry::count("fleet.runs", summary.runs as u64);
    telemetry::count("fleet.batches", summary.batches);
    telemetry::count("fleet.retries", summary.retries);
    telemetry::count("fleet.lost_batches", summary.lost_batches);
    telemetry::count("fleet.stale_rejections", summary.stale_rejections);
    telemetry::count("fleet.bytes_sent", summary.bytes_sent);

    let target_rank = target_counter.and_then(|c| {
        aggregator
            .analyzer()
            .ranking()
            .iter()
            .position(|&(counter, _)| counter == c)
    });
    let epochs = aggregator.snapshots().to_vec();
    Ok(FleetReport {
        summary,
        epochs,
        target_rank,
        aggregator,
        profiles: production.profiles,
    })
}

/// Everything a worker needs, borrowed from the driver.
struct WorkerCtx<'a> {
    spec: &'a FleetSpec,
    pool: &'a [Vec<i64>],
    zipf: &'a Zipf,
    sites: &'a SiteTable,
    layout: ReportLayout,
    exe: &'a FleetExe,
    profiles: &'a [ClientProfile],
}

/// Every binary the fleet runs — the full build plus each variant —
/// compiled once at setup for the configured engine and shared
/// (immutably) by all workers.
// One value per fleet run, so the size spread between engine payloads
// is irrelevant.
#[allow(clippy::large_enum_variant)]
enum FleetExe {
    Ast {
        full: Program,
        variants: Vec<Program>,
    },
    Slots {
        full: SlotProgram,
        variants: Vec<SlotProgram>,
    },
    Bytecode {
        full: BcProgram,
        variants: Vec<BcProgram>,
    },
}

impl FleetExe {
    fn build(engine: Engine, full: Program, variants: Vec<Program>) -> FleetExe {
        match engine {
            Engine::NameMap => FleetExe::Ast { full, variants },
            Engine::Slots => FleetExe::Slots {
                full: cbi_minic::lower(&full),
                variants: variants.iter().map(cbi_minic::lower).collect(),
            },
            Engine::Bytecode => FleetExe::Bytecode {
                full: cbi_vm::bytecode::compile(&cbi_minic::lower(&full)),
                variants: variants
                    .iter()
                    .map(|v| cbi_vm::bytecode::compile(&cbi_minic::lower(v)))
                    .collect(),
            },
        }
    }

    fn n_variants(&self) -> usize {
        match self {
            FleetExe::Ast { variants, .. } => variants.len(),
            FleetExe::Slots { variants, .. } => variants.len(),
            FleetExe::Bytecode { variants, .. } => variants.len(),
        }
    }

    /// A VM for the client's binary: the full build, or `variants[v]`.
    fn vm(&self, variant: Option<usize>) -> Vm<'_> {
        match self {
            FleetExe::Ast { full, variants } => {
                let mut vm = Vm::new(variant.map_or(full, |v| &variants[v]));
                vm.with_engine(Engine::NameMap);
                vm
            }
            FleetExe::Slots { full, variants } => {
                Vm::from_slots(variant.map_or(full, |v| &variants[v]))
            }
            FleetExe::Bytecode { full, variants } => {
                Vm::from_bytecode(variant.map_or(full, |v| &variants[v]))
            }
        }
    }
}

/// Deals runs round-robin over clients and chunks each client's run
/// sequence into spool-sized batches, scheduled at their last run.
fn plan_batches(spec: &FleetSpec) -> Vec<BatchPlan> {
    let mut plans = Vec::new();
    for client in 0..spec.clients.min(spec.runs) {
        let runs: Vec<usize> = (client..spec.runs).step_by(spec.clients).collect();
        for chunk in runs.chunks(spec.batch_size) {
            plans.push(BatchPlan {
                client,
                runs: chunk.to_vec(),
            });
        }
    }
    // Merge order is by last run; planning order is irrelevant but a
    // deterministic layout keeps sharding stable.
    plans.sort_by_key(|p| *p.runs.last().expect("chunks are nonempty"));
    plans
}

/// Produces one batch: run the client's VM for every run in the spool
/// and encode the wire payload.  Transmission happens elsewhere.
fn produce_batch(ctx: &WorkerCtx<'_>, plan: &BatchPlan) -> Result<ProducedBatch, FleetError> {
    let spec = ctx.spec;
    let profile = &ctx.profiles[plan.client];
    let mut reports = Vec::with_capacity(plan.runs.len());
    let mut dropped = 0usize;
    let mut bank = CountdownBank::generate(
        profile.density,
        spec.bank_size,
        spec.seed.wrapping_add(plan.runs[0] as u64),
    );
    for (i, &run) in plan.runs.iter().enumerate() {
        let mut input_rng = Pcg32::with_stream(spec.seed, RUN_STREAM ^ (run as u64));
        let input = &ctx.pool[ctx.zipf.sample(&mut input_rng)];
        if i > 0 {
            bank.reseed(profile.density, spec.seed.wrapping_add(run as u64));
        }
        let mut vm = ctx.exe.vm(profile.variant);
        vm.with_sites(ctx.sites)
            .with_input(&input[..])
            .with_op_limit(spec.op_limit)
            .with_heap_slack(spec.heap_slack)
            .with_sampling_ref(&mut bank);
        let result = vm.run()?;
        let label = match result.outcome {
            RunOutcome::Success(_) => Label::Success,
            RunOutcome::Crash(_) | RunOutcome::AssertionFailure(_) => Label::Failure,
            RunOutcome::OpLimit => {
                dropped += 1;
                continue;
            }
        };
        reports.push(Report::new(run as u64, label, result.counters));
    }

    // A stale binary fingerprints its layout differently; the server's
    // handshake catches it.
    let wire_hash = if profile.stale {
        ctx.layout.layout_hash ^ STALE_SALT
    } else {
        ctx.layout.layout_hash
    };
    let bytes = encode_reports(&reports, wire_hash, ctx.layout.counters)?;
    let last_run = *plan.runs.last().expect("chunks are nonempty");
    Ok(ProducedBatch {
        client: plan.client,
        last_run,
        dropped_runs: dropped,
        spooled_reports: reports.len() as u64,
        bytes,
    })
}

/// The profile-derived half of the summary, filled before the merge.
fn summary_skeleton(spec: &FleetSpec, profiles: &[ClientProfile], counters: usize) -> FleetSummary {
    FleetSummary {
        clients: spec.clients,
        stale_clients: profiles.iter().filter(|p| p.stale).count(),
        variant_clients: profiles.iter().filter(|p| p.variant.is_some()).count(),
        density_clients: spec
            .densities
            .iter()
            .map(|&(d, _)| (d, profiles.iter().filter(|p| p.denominator == d).count()))
            .collect(),
        runs: spec.runs,
        dropped_runs: 0,
        spooled_reports: 0,
        batches: 0,
        accepted_batches: 0,
        corrupt_batches: 0,
        lost_batches: 0,
        stale_batches: 0,
        rejected_deliveries: 0,
        stale_rejections: 0,
        retries: 0,
        backoff_ticks: 0,
        bytes_sent: 0,
        bytes_accepted: 0,
        accepted_reports: 0,
        failures: 0,
        counters,
        observed_counters: 0,
        survivors: 0,
        target_latency: None,
        epochs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RARE: &str = "fn rare(int v) -> int { if (v % 12 == 0) { return 1; } return 0; }\n\
         fn main() -> int { int v = read(); int hit = rare(v); print(hit); return 0; }";

    fn pool(n: usize) -> Vec<Vec<i64>> {
        (0..n as i64).map(|i| vec![i * 7 + 1]).collect()
    }

    fn spec() -> FleetSpec {
        let mut s = FleetSpec::new(12, 300);
        s.densities = vec![(2, 1.0)];
        s.batch_size = 8;
        s.epoch_len = 64;
        s
    }

    #[test]
    fn every_spooled_report_reaches_the_server_on_a_clean_channel() {
        let program = cbi_minic::parse(RARE).unwrap();
        let report = run_fleet(&program, &pool(48), &spec(), None).unwrap();
        let s = &report.summary;
        assert_eq!(s.runs, 300);
        assert_eq!(s.dropped_runs, 0);
        assert_eq!(s.accepted_reports, s.spooled_reports);
        assert_eq!(s.accepted_batches, s.batches);
        assert_eq!(s.lost_batches + s.stale_batches + s.rejected_deliveries, 0);
        assert_eq!(s.retries, 0);
        assert!(s.observed_counters > 0);
        assert!(s.epochs >= 4, "300 runs / 64 epoch_len: {}", s.epochs);
        assert_eq!(report.epochs.last().unwrap().runs, 300);
    }

    #[test]
    fn stale_clients_are_rejected_not_crashed_and_not_silent() {
        let program = cbi_minic::parse(RARE).unwrap();
        let mut s = spec();
        s.stale_fraction = 0.5;
        let report = run_fleet(&program, &pool(48), &s, None).unwrap();
        let sum = &report.summary;
        assert!(sum.stale_clients > 0);
        assert!(sum.stale_batches > 0, "stale batches must be counted");
        assert_eq!(sum.stale_rejections, sum.stale_batches);
        assert_eq!(
            sum.accepted_batches + sum.stale_batches,
            sum.batches,
            "every batch is accounted: accepted or stale-rejected"
        );
        // The epoch view carries the same signal.
        assert_eq!(
            report.epochs.last().unwrap().stale_batches,
            sum.stale_rejections
        );
    }

    #[test]
    fn faulty_channel_loses_batches_but_never_errors() {
        let program = cbi_minic::parse(RARE).unwrap();
        let mut s = spec();
        s.channel = ChannelSpec {
            drop: 0.4,
            truncate: 0.2,
            bit_flip: 0.1,
            max_retries: 2,
            backoff_base: 3,
        };
        let report = run_fleet(&program, &pool(48), &s, None).unwrap();
        let sum = &report.summary;
        assert!(sum.retries > 0, "faults must force retries");
        assert!(sum.backoff_ticks > 0);
        assert!(sum.lost_batches > 0, "this channel is bad enough to lose");
        assert!(sum.accepted_batches > 0, "but not bad enough to lose all");
        assert!(sum.bytes_sent > sum.bytes_accepted);
        assert_eq!(
            sum.accepted_batches + sum.lost_batches + sum.stale_batches,
            sum.batches
        );
    }

    #[test]
    fn variant_clients_share_the_full_layout() {
        let program = cbi_minic::parse(RARE).unwrap();
        let mut s = spec();
        s.variant_fraction = 0.7;
        let report = run_fleet(&program, &pool(48), &s, None).unwrap();
        assert!(report.summary.variant_clients > 0);
        // Variants strip observation to one function but keep the full
        // counter layout, so nothing is rejected.
        assert_eq!(report.summary.accepted_batches, report.summary.batches);
    }

    #[test]
    fn invalid_specs_are_config_errors() {
        let program = cbi_minic::parse(RARE).unwrap();
        let inputs = pool(4);
        for broken in [
            {
                let mut s = spec();
                s.clients = 0;
                s
            },
            {
                let mut s = spec();
                s.batch_size = 0;
                s
            },
            {
                let mut s = spec();
                s.densities = vec![];
                s
            },
            {
                let mut s = spec();
                s.stale_fraction = 1.5;
                s
            },
        ] {
            assert!(matches!(
                run_fleet(&program, &inputs, &broken, None),
                Err(FleetError::Config(_))
            ));
        }
        assert!(matches!(
            run_fleet(&program, &[], &spec(), None),
            Err(FleetError::Config(_))
        ));
    }

    #[test]
    fn fleet_summary_identical_across_engines_and_jobs() {
        // Variants, stale clients, and a mildly lossy channel together:
        // the summary must not depend on which engine ran the clients,
        // nor on the job count.
        let program = cbi_minic::parse(RARE).unwrap();
        let mut base = spec();
        base.variant_fraction = 0.3;
        base.stale_fraction = 0.1;
        base.channel.drop = 0.05;
        let with = |engine: Engine, jobs: usize| {
            let mut s = base.clone();
            s.engine = engine;
            s.jobs = jobs;
            run_fleet(&program, &pool(48), &s, None).unwrap().summary
        };
        let reference = with(Engine::Slots, 1);
        for engine in [Engine::Bytecode, Engine::NameMap] {
            for jobs in [1usize, 2, 4] {
                assert_eq!(
                    reference,
                    with(engine, jobs),
                    "{} jobs={jobs}: fleet summary diverged",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn zipf_skew_concentrates_runs_on_popular_inputs() {
        // With heavy skew and a pool where only deep indices trigger the
        // event, detection gets harder than under uniform choice.
        let program = cbi_minic::parse(RARE).unwrap();
        let inputs = pool(60);
        let target = {
            let inst = instrument(&program, Scheme::Returns).unwrap();
            (0..inst.sites.total_counters())
                .find(|&c| inst.sites.predicate_name(c).contains("rare() > 0"))
                .unwrap()
        };
        let mut uniform = spec();
        uniform.zipf_exponent = 0.0;
        let mut skewed = spec();
        skewed.zipf_exponent = 3.0;
        let u = run_fleet(&program, &inputs, &uniform, Some(target)).unwrap();
        let z = run_fleet(&program, &inputs, &skewed, Some(target)).unwrap();
        // Uniform choice must observe the event; the skewed community
        // hammers inputs 0..≈3 (none of which trigger) and should see it
        // later or never.
        let u_lat = u.summary.target_latency.expect("uniform pool detects");
        match z.summary.target_latency {
            None => {}
            Some(z_lat) => assert!(z_lat >= u_lat, "skew cannot speed detection here"),
        }
    }
}
