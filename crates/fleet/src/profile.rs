//! Client profiles: who is in the community and what do they run?
//!
//! §3.1.3 treats the community as the detection instrument, but a real
//! community is heterogeneous: users run different workloads with
//! Zipf-skewed popularity, different sampling densities (§3.1.1's
//! density mix), different statically-selective instrumentation variants
//! (§3.1.2), and different binary *versions* — some stale enough that
//! the collection server must turn their reports away at the layout
//! handshake.  A [`ClientProfile`] fixes all of that per client, drawn
//! from seeded distributions so the whole community is reproducible.

use crate::FleetSpec;
use cbi_sampler::{Categorical, Pcg32, SamplingDensity};

/// PRNG stream tag for profile drawing (one stream per client).
const PROFILE_STREAM: u64 = 0x70_72_6f_66; // "prof"

/// One simulated user: everything about their installation that shapes
/// the reports they send.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientProfile {
    /// Client index in the community.
    pub client: usize,
    /// Sampling density their instrumented binary runs at.
    pub density: SamplingDensity,
    /// The density's denominator `d` (density `1/d`), for bucketing.
    pub denominator: u64,
    /// Index into the single-function variant list, or `None` for the
    /// fully instrumented binary.
    pub variant: Option<usize>,
    /// A stale binary version: its report streams carry an outdated
    /// layout fingerprint and are rejected at the server handshake.
    pub stale: bool,
}

impl ClientProfile {
    /// The client's cohort label for server-side metric attribution:
    /// the density bucket plus `+variant` / `+stale` markers, e.g.
    /// `"1/100"`, `"1/1000+variant"`, `"1/100+variant+stale"`.
    ///
    /// A pure function of the profile, so every client in the same
    /// bucket shares one label and the set of labels is deterministic.
    pub fn cohort(&self) -> String {
        let mut label = format!("1/{}", self.denominator);
        if self.variant.is_some() {
            label.push_str("+variant");
        }
        if self.stale {
            label.push_str("+stale");
        }
        label
    }
}

/// Draws the whole community's profiles from `spec`'s seeded
/// distributions.  `variants` is how many single-function variants the
/// instrumented program offers (0 forces everyone onto the full binary).
///
/// Each profile is a pure function of `(spec.seed, client index)`, so
/// any sharding of the community reproduces the same population.
///
/// # Panics
///
/// Panics if `spec.densities` is empty or has non-positive weights (the
/// spec constructor validates this).
pub fn draw_profiles(spec: &FleetSpec, variants: usize) -> Vec<ClientProfile> {
    let weights: Vec<f64> = spec.densities.iter().map(|&(_, w)| w).collect();
    let mix = Categorical::new(&weights).expect("spec validated the density mix");
    (0..spec.clients)
        .map(|client| {
            let mut rng = Pcg32::with_stream(spec.seed, PROFILE_STREAM ^ (client as u64));
            let (denominator, _) = spec.densities[mix.sample(&mut rng)];
            let variant = if variants > 0 && rng.next_f64() < spec.variant_fraction {
                Some(rng.below(variants as u64) as usize)
            } else {
                None
            };
            let stale = rng.next_f64() < spec.stale_fraction;
            ClientProfile {
                client,
                density: SamplingDensity::one_in(denominator),
                denominator,
                variant,
                stale,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        let mut s = FleetSpec::new(64, 256);
        s.densities = vec![(100, 3.0), (1000, 1.0)];
        s.variant_fraction = 0.5;
        s.stale_fraction = 0.25;
        s
    }

    #[test]
    fn profiles_are_deterministic_and_independent_of_sharding() {
        let s = spec();
        let all = draw_profiles(&s, 5);
        let again = draw_profiles(&s, 5);
        assert_eq!(all, again);
        // Any single client's profile is reproducible in isolation.
        let mut one = s.clone();
        one.clients = 64;
        assert_eq!(draw_profiles(&one, 5)[17], all[17]);
    }

    #[test]
    fn density_mix_respects_weights() {
        let s = spec();
        let profiles = draw_profiles(&s, 0);
        let dense = profiles.iter().filter(|p| p.denominator == 100).count();
        let sparse = profiles.len() - dense;
        assert!(dense > sparse, "3:1 weights: {dense} vs {sparse}");
        assert!(sparse > 0, "minority density still occurs");
    }

    #[test]
    fn variants_and_staleness_occur_at_roughly_spec_fractions() {
        let mut s = spec();
        s.clients = 400;
        let profiles = draw_profiles(&s, 4);
        let varied = profiles.iter().filter(|p| p.variant.is_some()).count();
        let stale = profiles.iter().filter(|p| p.stale).count();
        assert!((120..=280).contains(&varied), "variant count {varied}");
        assert!((50..=150).contains(&stale), "stale count {stale}");
        assert!(profiles.iter().filter_map(|p| p.variant).all(|v| v < 4));
    }

    #[test]
    fn zero_variants_forces_full_binary() {
        let profiles = draw_profiles(&spec(), 0);
        assert!(profiles.iter().all(|p| p.variant.is_none()));
    }

    #[test]
    fn cohort_labels_name_density_variant_and_staleness() {
        let mut p = ClientProfile {
            client: 0,
            density: SamplingDensity::one_in(100),
            denominator: 100,
            variant: None,
            stale: false,
        };
        assert_eq!(p.cohort(), "1/100");
        p.variant = Some(2);
        assert_eq!(p.cohort(), "1/100+variant");
        p.stale = true;
        assert_eq!(p.cohort(), "1/100+variant+stale");
        p.variant = None;
        assert_eq!(p.cohort(), "1/100+stale");
    }
}
