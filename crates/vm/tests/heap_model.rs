//! Differential testing of the corruptible heap against a simple
//! reference model, plus crash-semantics edge cases.

use cbi_sampler::Pcg32;
use cbi_vm::{CrashKind, Heap, PtrVal, Value};
use std::collections::HashMap;

/// Operations the fuzzer may perform.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u8),
    /// Store into block `b % live` at (possibly out-of-range) index.
    Store(u8, i16, i16),
    Load(u8, i16),
    Free(u8),
    Len(u8),
}

fn random_index(rng: &mut Pcg32) -> i16 {
    // Biased toward the interesting band around the block bounds.
    -4 + rng.below(44) as i16
}

fn random_op(rng: &mut Pcg32) -> Op {
    match rng.below(5) {
        0 => Op::Alloc(rng.below(32) as u8),
        1 => Op::Store(
            rng.below(256) as u8,
            random_index(rng),
            rng.next_u32() as i16,
        ),
        2 => Op::Load(rng.below(256) as u8, random_index(rng)),
        3 => Op::Free(rng.below(256) as u8),
        _ => Op::Len(rng.below(256) as u8),
    }
}

/// Reference model: per block, its logical length, cell contents, freed
/// and corrupted flags.
#[derive(Debug, Default)]
struct Model {
    blocks: Vec<ModelBlock>,
}

#[derive(Debug)]
struct ModelBlock {
    len: usize,
    slack: usize,
    cells: HashMap<i64, i64>,
    freed: bool,
    corrupted: bool,
}

const SLACK: usize = 8;

/// The heap agrees with the reference model on every observable result:
/// values loaded, lengths, and the exact crash kind of every failing
/// operation.  256 seeded random op sequences.
#[test]
fn heap_matches_reference_model() {
    let mut rng = Pcg32::new(0x4ea9);
    for case in 0..256 {
        let n_ops = 1 + rng.below(59) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        check_against_model(case, ops);
    }
}

fn check_against_model(case: u32, ops: Vec<Op>) {
    let mut heap = Heap::with_slack(SLACK);
    let mut model = Model::default();
    let mut handles: Vec<PtrVal> = Vec::new();

    for op in ops {
        match op {
            Op::Alloc(n) => {
                let v = heap.alloc(n as i64).expect("non-negative alloc");
                let Value::Ptr(p) = v else {
                    panic!("alloc returns ptr")
                };
                handles.push(p);
                model.blocks.push(ModelBlock {
                    len: n as usize,
                    slack: SLACK,
                    cells: HashMap::new(),
                    freed: false,
                    corrupted: false,
                });
            }
            Op::Store(b, i, v) if !handles.is_empty() => {
                let b = b as usize % handles.len();
                let p = handles[b];
                let m = &mut model.blocks[b];
                let got = heap.store(p, i as i64, Value::Int(v as i64));
                let expect = if m.freed {
                    Err(CrashKind::UseAfterFree)
                } else if i < 0 || i as usize >= m.len + m.slack {
                    Err(CrashKind::SegFault)
                } else {
                    Ok(())
                };
                assert_eq!(got, expect, "store, case {case}");
                if got.is_ok() {
                    m.cells.insert(i as i64, v as i64);
                    if i as usize >= m.len {
                        m.corrupted = true;
                    }
                }
            }
            Op::Load(b, i) if !handles.is_empty() => {
                let b = b as usize % handles.len();
                let p = handles[b];
                let m = &model.blocks[b];
                let got = heap.load(p, i as i64);
                if m.freed {
                    assert_eq!(got, Err(CrashKind::UseAfterFree), "case {case}");
                } else if i < 0 || i as usize >= m.len + m.slack {
                    assert_eq!(got, Err(CrashKind::SegFault), "case {case}");
                } else {
                    let expect = m.cells.get(&(i as i64)).copied().unwrap_or(0);
                    assert_eq!(got, Ok(Value::Int(expect)), "case {case}");
                }
            }
            Op::Free(b) if !handles.is_empty() => {
                let b = b as usize % handles.len();
                let p = handles[b];
                let m = &mut model.blocks[b];
                let got = heap.free(p);
                let expect = if m.freed {
                    Err(CrashKind::DoubleFree)
                } else if m.corrupted {
                    Err(CrashKind::HeapCorruption)
                } else {
                    Ok(())
                };
                assert_eq!(got, expect, "free, case {case}");
                if got.is_ok() {
                    m.freed = true;
                }
            }
            Op::Len(b) if !handles.is_empty() => {
                let b = b as usize % handles.len();
                let m = &model.blocks[b];
                let got = heap.len(handles[b]);
                if m.freed {
                    assert_eq!(got, Err(CrashKind::UseAfterFree), "case {case}");
                } else {
                    assert_eq!(got, Ok(m.len as i64), "case {case}");
                }
            }
            _ => {} // op on empty heap: skip
        }
    }

    // Aggregate invariant: live-block accounting agrees.
    let live_model = model.blocks.iter().filter(|b| !b.freed).count();
    assert_eq!(heap.live_blocks(), live_model, "case {case}");
    let corrupted_model = model.blocks.iter().any(|b| b.corrupted);
    assert_eq!(heap.any_corruption(), corrupted_model, "case {case}");
}

#[test]
fn pointer_offsets_compose_with_indices() {
    let mut heap = Heap::with_slack(4);
    let Value::Ptr(base) = heap.alloc(10).unwrap() else {
        panic!()
    };
    // (base + 3)[2] aliases base[5].
    let shifted = PtrVal {
        block: base.block,
        offset: 3,
    };
    heap.store(shifted, 2, Value::Int(77)).unwrap();
    assert_eq!(heap.load(base, 5).unwrap(), Value::Int(77));
    // Negative composed index below the block start faults.
    let neg = PtrVal {
        block: base.block,
        offset: 1,
    };
    assert_eq!(heap.load(neg, -2), Err(CrashKind::SegFault));
}

#[test]
fn corruption_is_per_block() {
    let mut heap = Heap::with_slack(4);
    let Value::Ptr(a) = heap.alloc(2).unwrap() else {
        panic!()
    };
    let Value::Ptr(b) = heap.alloc(2).unwrap() else {
        panic!()
    };
    heap.store(a, 3, Value::Int(1)).unwrap(); // corrupt a's slack
    assert_eq!(heap.free(b), Ok(()), "b is untouched");
    assert_eq!(heap.free(a), Err(CrashKind::HeapCorruption));
}
