//! Differential testing of the corruptible heap against a simple
//! reference model, plus crash-semantics edge cases.

use cbi_vm::{CrashKind, Heap, PtrVal, Value};
use proptest::prelude::*;
use std::collections::HashMap;

/// Operations the fuzzer may perform.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u8),
    /// Store into block `b % live` at (possibly out-of-range) index.
    Store(u8, i16, i16),
    Load(u8, i16),
    Free(u8),
    Len(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..32).prop_map(Op::Alloc),
        (any::<u8>(), -4i16..40, any::<i16>()).prop_map(|(b, i, v)| Op::Store(b, i, v)),
        (any::<u8>(), -4i16..40).prop_map(|(b, i)| Op::Load(b, i)),
        any::<u8>().prop_map(Op::Free),
        any::<u8>().prop_map(Op::Len),
    ]
}

/// Reference model: per block, its logical length, cell contents, freed
/// and corrupted flags.
#[derive(Debug, Default)]
struct Model {
    blocks: Vec<ModelBlock>,
}

#[derive(Debug)]
struct ModelBlock {
    len: usize,
    slack: usize,
    cells: HashMap<i64, i64>,
    freed: bool,
    corrupted: bool,
}

const SLACK: usize = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The heap agrees with the reference model on every observable
    /// result: values loaded, lengths, and the exact crash kind of every
    /// failing operation.
    #[test]
    fn heap_matches_reference_model(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut heap = Heap::with_slack(SLACK);
        let mut model = Model::default();
        let mut handles: Vec<PtrVal> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(n) => {
                    let v = heap.alloc(n as i64).expect("non-negative alloc");
                    let Value::Ptr(p) = v else { panic!("alloc returns ptr") };
                    handles.push(p);
                    model.blocks.push(ModelBlock {
                        len: n as usize,
                        slack: SLACK,
                        cells: HashMap::new(),
                        freed: false,
                        corrupted: false,
                    });
                }
                Op::Store(b, i, v) if !handles.is_empty() => {
                    let b = b as usize % handles.len();
                    let p = handles[b];
                    let m = &mut model.blocks[b];
                    let got = heap.store(p, i as i64, Value::Int(v as i64));
                    let expect = if m.freed {
                        Err(CrashKind::UseAfterFree)
                    } else if i < 0 || i as usize >= m.len + m.slack {
                        Err(CrashKind::SegFault)
                    } else {
                        Ok(())
                    };
                    prop_assert_eq!(&got, &expect, "store");
                    if got.is_ok() {
                        m.cells.insert(i as i64, v as i64);
                        if i as usize >= m.len {
                            m.corrupted = true;
                        }
                    }
                }
                Op::Load(b, i) if !handles.is_empty() => {
                    let b = b as usize % handles.len();
                    let p = handles[b];
                    let m = &model.blocks[b];
                    let got = heap.load(p, i as i64);
                    if m.freed {
                        prop_assert_eq!(got, Err(CrashKind::UseAfterFree));
                    } else if i < 0 || i as usize >= m.len + m.slack {
                        prop_assert_eq!(got, Err(CrashKind::SegFault));
                    } else {
                        let expect = m.cells.get(&(i as i64)).copied().unwrap_or(0);
                        prop_assert_eq!(got, Ok(Value::Int(expect)));
                    }
                }
                Op::Free(b) if !handles.is_empty() => {
                    let b = b as usize % handles.len();
                    let p = handles[b];
                    let m = &mut model.blocks[b];
                    let got = heap.free(p);
                    let expect = if m.freed {
                        Err(CrashKind::DoubleFree)
                    } else if m.corrupted {
                        Err(CrashKind::HeapCorruption)
                    } else {
                        Ok(())
                    };
                    prop_assert_eq!(&got, &expect, "free");
                    if got.is_ok() {
                        m.freed = true;
                    }
                }
                Op::Len(b) if !handles.is_empty() => {
                    let b = b as usize % handles.len();
                    let m = &model.blocks[b];
                    let got = heap.len(handles[b]);
                    if m.freed {
                        prop_assert_eq!(got, Err(CrashKind::UseAfterFree));
                    } else {
                        prop_assert_eq!(got, Ok(m.len as i64));
                    }
                }
                _ => {} // op on empty heap: skip
            }
        }

        // Aggregate invariant: live-block accounting agrees.
        let live_model = model.blocks.iter().filter(|b| !b.freed).count();
        prop_assert_eq!(heap.live_blocks(), live_model);
        let corrupted_model = model.blocks.iter().any(|b| b.corrupted);
        prop_assert_eq!(heap.any_corruption(), corrupted_model);
    }
}

#[test]
fn pointer_offsets_compose_with_indices() {
    let mut heap = Heap::with_slack(4);
    let Value::Ptr(base) = heap.alloc(10).unwrap() else {
        panic!()
    };
    // (base + 3)[2] aliases base[5].
    let shifted = PtrVal {
        block: base.block,
        offset: 3,
    };
    heap.store(shifted, 2, Value::Int(77)).unwrap();
    assert_eq!(heap.load(base, 5).unwrap(), Value::Int(77));
    // Negative composed index below the block start faults.
    let neg = PtrVal {
        block: base.block,
        offset: 1,
    };
    assert_eq!(heap.load(neg, -2), Err(CrashKind::SegFault));
}

#[test]
fn corruption_is_per_block() {
    let mut heap = Heap::with_slack(4);
    let Value::Ptr(a) = heap.alloc(2).unwrap() else {
        panic!()
    };
    let Value::Ptr(b) = heap.alloc(2).unwrap() else {
        panic!()
    };
    heap.store(a, 3, Value::Int(1)).unwrap(); // corrupt a's slack
    assert_eq!(heap.free(b), Ok(()), "b is untouched");
    assert_eq!(heap.free(a), Err(CrashKind::HeapCorruption));
}
