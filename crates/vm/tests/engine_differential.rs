//! Differential equivalence of the slot-resolved hot-path engine against
//! the name-map reference engine.
//!
//! For every random program from `cbi-testgen` — plain, unconditionally
//! instrumented, and sampling-transformed — both engines must produce the
//! *entire* [`cbi_vm::RunResult`] identically: outcome, op count, counter
//! vector, output, and trace.  Op-count equality is the strongest check:
//! it fails if the two engines disagree about a single charge anywhere.

use cbi_instrument::{apply_sampling, instrument, Scheme, TransformOptions};
use cbi_minic::lower;
use cbi_sampler::{CountdownBank, SamplingDensity};
use cbi_testgen::program_for_seed;
use cbi_vm::{Engine, RunOutcome, Vm};

const SEEDS: u64 = 150;

#[test]
fn engines_agree_on_plain_programs() {
    for seed in 0..SEEDS {
        let p = program_for_seed(seed);
        let reference = Vm::new(&p)
            .with_engine(Engine::NameMap)
            .with_trace(16)
            .run()
            .unwrap();
        let slots = lower(&p);
        let fast = Vm::from_slots(&slots).with_trace(16).run().unwrap();
        assert_eq!(reference, fast, "seed {seed}");
        assert_eq!(reference.outcome, RunOutcome::Success(0), "seed {seed}");
    }
}

#[test]
fn engines_agree_on_instrumented_programs() {
    let schemes = [
        Scheme::Checks,
        Scheme::Returns,
        Scheme::ScalarPairs,
        Scheme::Branches,
    ];
    for seed in 0..SEEDS {
        let p = program_for_seed(seed);
        let scheme = schemes[(seed % 4) as usize];
        let inst = instrument(&p, scheme).unwrap();
        let reference = Vm::new(&inst.program)
            .with_sites(&inst.sites)
            .with_engine(Engine::NameMap)
            .with_trace(16)
            .run()
            .unwrap();
        let slots = lower(&inst.program);
        let fast = Vm::from_slots(&slots)
            .with_sites(&inst.sites)
            .with_trace(16)
            .run()
            .unwrap();
        assert_eq!(reference, fast, "seed {seed} scheme {scheme}");
    }
}

#[test]
fn engines_agree_on_sampled_programs() {
    let density = SamplingDensity::one_in(10);
    for seed in 0..SEEDS {
        let p = program_for_seed(seed);
        let inst = instrument(&p, Scheme::Branches).unwrap();
        let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();

        let bank = CountdownBank::generate(density, 256, seed);
        let reference = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(bank.clone()))
            .with_engine(Engine::NameMap)
            .run()
            .unwrap();

        // The slot engine additionally exercises the borrowed-source and
        // borrowed-input paths of the builder.
        let slots = lower(&sampled);
        let mut shared_bank = bank;
        let input: Vec<i64> = Vec::new();
        let fast = Vm::from_slots(&slots)
            .with_sites(&inst.sites)
            .with_sampling_ref(&mut shared_bank)
            .with_input(&input[..])
            .run()
            .unwrap();
        assert_eq!(reference, fast, "seed {seed}");
    }
}

/// The slot engine preserves the *dynamic* name-lookup semantics of the
/// reference engine on programs the static resolver would reject.
#[test]
fn engines_agree_on_unchecked_name_lookup_edge_cases() {
    let cases = [
        // Use before declaration traps.
        "fn main() -> int { int y = x; int x = 1; return y; }",
        // Use before declaration falls back to a same-named global.
        "int x = 7; fn main() -> int { int y = x; int x = 1; return y + x; }",
        // Assignment before declaration writes the global.
        "int x = 1; fn main() -> int { x = 5; int x = 2; return x; }",
        // Entirely undefined names trap on read and write.
        "fn main() -> int { return ghost; }",
        "fn main() -> int { ghost = 1; return 0; }",
        // Undefined callee traps after arguments-free dispatch.
        "fn main() -> int { ghost(1); return 0; }",
        // Duplicate functions: later definition wins for calls.
        "fn f() -> int { return 1; } fn f() -> int { return 2; } \
         fn main() -> int { print(f()); return 0; }",
        // Declaration persists past its block (function-flat frames).
        "fn main() -> int { if (1) { int x = 3; } return x; }",
    ];
    for (i, src) in cases.iter().enumerate() {
        let p = cbi_minic::parse(src).unwrap();
        let reference = Vm::new(&p).with_engine(Engine::NameMap).run().unwrap();
        let slots = lower(&p);
        let fast = Vm::from_slots(&slots).run().unwrap();
        assert_eq!(reference, fast, "case {i}: {src}");
    }
}

/// `Engine::NameMap` cannot run a slot-only VM: that is a configuration
/// error, not a panic.
#[test]
fn namemap_engine_rejects_slot_programs() {
    let p = cbi_minic::parse("fn main() -> int { return 0; }").unwrap();
    let slots = lower(&p);
    let err = Vm::from_slots(&slots)
        .with_engine(Engine::NameMap)
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("name-map engine"), "{err}");
}
