//! Additional interpreter semantics: globals, pointer comparisons,
//! nested-call control flow, and cost accounting visibility.

use cbi_vm::{CrashKind, RunOutcome, Vm};

fn run(src: &str) -> cbi_vm::RunResult {
    let p = cbi_minic::parse(src).unwrap();
    cbi_minic::resolve(&p).unwrap();
    Vm::new(&p).run().unwrap()
}

#[test]
fn globals_initialize_and_persist_across_calls() {
    let r = run(
        "int counter = 10;\n\
         ptr shared;\n\
         fn bump() { counter = counter + 1; }\n\
         fn stash() { shared = alloc(2); shared[0] = counter; }\n\
         fn main() -> int { bump(); bump(); stash(); print(counter); print(shared[0]); return 0; }",
    );
    assert_eq!(r.output, vec![12, 12]);
}

#[test]
fn pointer_comparisons_follow_block_then_offset_order() {
    let r = run("fn main() -> int {\n\
             ptr a = alloc(4);\n\
             ptr b = alloc(4);\n\
             print(a < b);\n\
             print(a + 2 > a);\n\
             print(a + 1 == a + 1);\n\
             print(a == b);\n\
             print(null < a);\n\
             print(null == null);\n\
             return 0;\n\
         }");
    assert_eq!(r.output, vec![1, 1, 1, 0, 1, 1]);
}

#[test]
fn exit_unwinds_nested_calls() {
    let r = run("fn inner() { exit(9); }\n\
         fn outer() { inner(); print(1); }\n\
         fn main() -> int { outer(); print(2); return 0; }");
    assert_eq!(r.outcome, RunOutcome::Success(9));
    assert!(r.output.is_empty());
}

#[test]
fn crash_in_callee_propagates() {
    let r = run("fn boom(ptr p) -> int { return p[0]; }\n\
         fn main() -> int { ptr q; return boom(q); }");
    assert_eq!(r.outcome, RunOutcome::Crash(CrashKind::NullDeref));
}

#[test]
fn recursion_to_exact_depth_limit() {
    let src = "fn down(int n) -> int { if (n == 0) { return 0; } return down(n - 1); }\n\
               fn main() -> int { return down(40); }";
    let p = cbi_minic::parse(src).unwrap();
    // depth needed: main + 41 calls of down = 42.
    let ok = Vm::new(&p).with_max_depth(64).run().unwrap();
    assert!(ok.outcome.is_success());
    let too_shallow = Vm::new(&p).with_max_depth(10).run().unwrap();
    assert_eq!(
        too_shallow.outcome,
        RunOutcome::Crash(CrashKind::StackOverflow)
    );
}

#[test]
fn modulo_and_division_semantics_match_rust() {
    let r = run("fn main() -> int {\n\
             print(7 / 2); print(-7 / 2); print(7 % 3); print(-7 % 3); print(7 % -3);\n\
             return 0;\n\
         }");
    assert_eq!(r.output, vec![3, -3, 1, -1, 1]);
}

#[test]
fn wrapping_arithmetic_does_not_panic() {
    let r = run("fn main() -> int {\n\
             int big = 9223372036854775807;\n\
             print(big + 1 < 0);\n\
             print(big * 2 != 0);\n\
             int small = -9223372036854775807;\n\
             print(small - 2 > 0);\n\
             return 0;\n\
         }");
    assert!(r.outcome.is_success());
    assert_eq!(r.output[0], 1, "wrap to negative");
}

#[test]
fn free_null_is_a_noop_like_c() {
    let r = run("fn main() -> int { ptr p; free(p); free(null); return 0; }");
    assert!(r.outcome.is_success());
}

#[test]
fn op_accounting_charges_heap_traffic_more() {
    let arith = run(
        "fn main() -> int { int i = 0; int s = 0; while (i < 500) { s = s + i; i = i + 1; } print(s); return 0; }",
    );
    let memory = run(
        "fn main() -> int { ptr a = alloc(4); int i = 0; while (i < 500) { a[0] = a[0] + i; i = i + 1; } print(a[0]); return 0; }",
    );
    assert_eq!(arith.output, memory.output);
    assert!(
        memory.ops > arith.ops,
        "heap loop {} should cost more than register loop {}",
        memory.ops,
        arith.ops
    );
}

#[test]
fn output_and_counters_survive_crash() {
    // Observations made before a crash are retained in the report —
    // essential for failure reports (§3.3.1).
    let src = "fn main() -> int { print(1); __check(0, 1); ptr p; return p[0]; }";
    let p = cbi_minic::parse(src).unwrap();
    let mut table = cbi_instrument::SiteTable::new();
    table.add(
        "main",
        cbi_minic::Span::new(1, 1),
        cbi_instrument::SiteKind::Assert,
        "1".into(),
    );
    let r = Vm::new(&p).with_sites(&table).run().unwrap();
    assert_eq!(r.outcome, RunOutcome::Crash(CrashKind::NullDeref));
    assert_eq!(r.output, vec![1]);
    assert_eq!(r.counters, vec![0, 1]);
}

#[test]
fn assertion_failure_reports_site_and_counts_violation() {
    let src = "fn main() -> int { __check(0, 0); return 0; }";
    let p = cbi_minic::parse(src).unwrap();
    let mut table = cbi_instrument::SiteTable::new();
    table.add(
        "main",
        cbi_minic::Span::new(1, 1),
        cbi_instrument::SiteKind::Assert,
        "never".into(),
    );
    let r = Vm::new(&p).with_sites(&table).run().unwrap();
    assert_eq!(r.outcome, RunOutcome::AssertionFailure(0));
    assert_eq!(r.counters, vec![1, 0], "violation counter bumped");
}

#[test]
fn logical_operators_yield_canonical_booleans() {
    let r = run("fn main() -> int { print(5 && 3); print(0 || 7); print(!!9); return 0; }");
    assert_eq!(r.output, vec![1, 1, 1]);
}

#[test]
fn load_of_heap_garbage_used_as_pointer_is_a_type_error() {
    // Reading slack garbage and dereferencing it models wild-pointer
    // crashes after corruption.
    let r = run("fn main() -> int { ptr a = alloc(2); ptr q = a[0]; return q[0]; }");
    match r.outcome {
        RunOutcome::Crash(CrashKind::TypeError(_)) => {}
        other => panic!("expected type error, got {other:?}"),
    }
}
