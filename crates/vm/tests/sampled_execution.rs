//! End-to-end tests of the sampled-execution pipeline:
//! parse → instrument → transform → run, checking the semantic equivalence,
//! fairness, and overhead-ordering properties the paper relies on.

use cbi_instrument::{
    apply_sampling, instrument, strip_sites, CountdownStorage, Scheme, TransformOptions,
};
use cbi_sampler::{CountdownBank, Geometric, SamplingDensity};
use cbi_vm::{RunOutcome, Vm};

const LOOP_PROGRAM: &str = "
fn work(int n) -> int {
    ptr a = alloc(n);
    int i = 0;
    while (i < n) {
        check(i < len(a));
        a[i] = i * 3;
        i = i + 1;
    }
    int s = 0;
    i = 0;
    while (i < n) {
        s = s + a[i];
        i = i + 1;
    }
    free(a);
    return s;
}
fn main() -> int {
    print(work(200));
    return 0;
}
";

fn expected_sum() -> i64 {
    (0..200).map(|i| i * 3).sum()
}

#[test]
fn sampled_program_computes_same_result() {
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();
    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();

    for density in [1u64, 10, 100, 1000] {
        let src = Geometric::new(SamplingDensity::one_in(density), 42);
        let r = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(src))
            .run()
            .unwrap();
        assert_eq!(r.outcome, RunOutcome::Success(0), "density 1/{density}");
        assert_eq!(r.output, vec![expected_sum()], "density 1/{density}");
    }
}

#[test]
fn all_three_builds_agree_on_output() {
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();

    let baseline = strip_sites(&inst.program);
    let rb = Vm::new(&baseline).run().unwrap();

    let ru = Vm::new(&inst.program)
        .with_sites(&inst.sites)
        .run()
        .unwrap();

    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
    let rs = Vm::new(&sampled)
        .with_sites(&inst.sites)
        .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(100), 7)))
        .run()
        .unwrap();

    assert_eq!(rb.output, ru.output);
    assert_eq!(ru.output, rs.output);
}

#[test]
fn overhead_ordering_baseline_sampled_unconditional() {
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();

    let baseline = strip_sites(&inst.program);
    let base_ops = Vm::new(&baseline).run().unwrap().ops;

    let uncond_ops = Vm::new(&inst.program)
        .with_sites(&inst.sites)
        .run()
        .unwrap()
        .ops;

    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
    let sparse_ops = Vm::new(&sampled)
        .with_sites(&inst.sites)
        .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(1000), 3)))
        .run()
        .unwrap()
        .ops;

    assert!(
        base_ops < sparse_ops && sparse_ops < uncond_ops,
        "expected base {base_ops} < sparse {sparse_ops} < unconditional {uncond_ops}"
    );
}

#[test]
fn sparser_sampling_is_cheaper() {
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();
    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();

    let mut prev = u64::MAX;
    for density in [1u64, 100, 10_000] {
        let ops = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(
                SamplingDensity::one_in(density),
                11,
            )))
            .run()
            .unwrap()
            .ops;
        assert!(ops <= prev, "density 1/{density}: {ops} > previous {prev}");
        prev = ops;
    }
}

#[test]
fn sampled_counts_approximate_density_fraction() {
    // 200 loop iterations × 2 sites (assert + store bounds) = 400 site
    // crossings per run.  At density 1/10, expect ≈ 40 observations.
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();
    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();

    let uncond = Vm::new(&inst.program)
        .with_sites(&inst.sites)
        .run()
        .unwrap();
    let crossings: u64 = uncond.counters.iter().sum();

    let mut total = 0u64;
    let trials = 60;
    for seed in 0..trials {
        let r = Vm::new(&sampled)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(10), seed)))
            .run()
            .unwrap();
        total += r.counters.iter().sum::<u64>();
    }
    let mean = total as f64 / trials as f64;
    let expect = crossings as f64 / 10.0;
    assert!(
        (mean - expect).abs() < expect * 0.25,
        "mean sampled observations {mean} should be near {expect}"
    );
}

#[test]
fn countdown_bank_runs_like_fresh_geometric() {
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();
    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();

    let bank = CountdownBank::generate(SamplingDensity::one_in(100), 1024, 99);
    let r = Vm::new(&sampled)
        .with_sites(&inst.sites)
        .with_sampling(Box::new(bank))
        .run()
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::Success(0));
}

#[test]
fn global_countdown_mode_runs_correctly() {
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();
    let opts = TransformOptions {
        countdown: CountdownStorage::Global,
        ..TransformOptions::default()
    };
    let (sampled, _) = apply_sampling(&inst.program, &opts).unwrap();
    let r = Vm::new(&sampled)
        .with_sites(&inst.sites)
        .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(50), 5)))
        .run()
        .unwrap();
    assert_eq!(r.output, vec![expected_sum()]);
}

#[test]
fn local_mode_is_cheaper_than_global_mode() {
    // The point of §2.4: local countdown + coalescing beats global.
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();

    let (local, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
    let (global, _) = apply_sampling(
        &inst.program,
        &TransformOptions {
            countdown: CountdownStorage::Global,
            ..TransformOptions::default()
        },
    )
    .unwrap();

    let ops_of = |p: &cbi_minic::Program| {
        Vm::new(p)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(1000), 8)))
            .run()
            .unwrap()
            .ops
    };
    assert!(
        ops_of(&local) < ops_of(&global),
        "local {} should beat global {}",
        ops_of(&local),
        ops_of(&global)
    );
}

#[test]
fn devolved_mode_is_costlier_than_regions() {
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();

    let (regions, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
    let (devolved, _) = apply_sampling(
        &inst.program,
        &TransformOptions {
            regions: false,
            ..TransformOptions::default()
        },
    )
    .unwrap();

    let ops_of = |p: &cbi_minic::Program| {
        Vm::new(p)
            .with_sites(&inst.sites)
            .with_sampling(Box::new(Geometric::new(SamplingDensity::one_in(1000), 8)))
            .run()
            .unwrap()
            .ops
    };
    assert!(
        ops_of(&regions) < ops_of(&devolved),
        "region amortization should win: {} vs {}",
        ops_of(&regions),
        ops_of(&devolved)
    );
}

#[test]
fn sampled_assertion_failures_abort_when_observed() {
    // An always-false check: at density 1 the very first crossing fires.
    let src = "fn main() -> int { int x = 5; check(x < 0); return 0; }";
    let program = cbi_minic::parse(src).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();
    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();

    let r = Vm::new(&sampled)
        .with_sites(&inst.sites)
        .with_sampling(Box::new(Geometric::new(SamplingDensity::always(), 1)))
        .run()
        .unwrap();
    assert_eq!(r.outcome, RunOutcome::AssertionFailure(0));

    // At a sparse density the check is (almost surely) skipped: the
    // program "ships" with the bug unnoticed on this run.
    let r2 = Vm::new(&sampled)
        .with_sites(&inst.sites)
        .with_sampling(Box::new(Geometric::new(
            SamplingDensity::one_in(1_000_000),
            1,
        )))
        .run()
        .unwrap();
    assert_eq!(r2.outcome, RunOutcome::Success(0));
}

#[test]
fn missing_countdown_source_is_config_error() {
    let program = cbi_minic::parse(LOOP_PROGRAM).unwrap();
    let inst = instrument(&program, Scheme::Checks).unwrap();
    let (sampled, _) = apply_sampling(&inst.program, &TransformOptions::default()).unwrap();
    assert!(Vm::new(&sampled).with_sites(&inst.sites).run().is_err());
}
