//! The VM heap with a silent-corruption model.
//!
//! Real C buffer overruns do not fail fast: a store a few elements past an
//! allocation scribbles over allocator metadata or a neighbouring object,
//! and the program only dies later — if at all ("C programs can get
//! lucky", §3.3.3).  To reproduce the non-deterministic crash behaviour of
//! the `bc` case study, every allocation carries *slack* capacity beyond
//! its logical length:
//!
//! * stores within `[0, len)` are normal;
//! * stores within `[len, len + slack)` succeed silently but mark the
//!   block corrupted — the analogue of overwriting the next chunk's
//!   header;
//! * accesses outside the slack are an immediate [`CrashKind::SegFault`];
//! * `free` of a corrupted block is a [`CrashKind::HeapCorruption`] —
//!   the allocator noticing its trampled metadata, exactly how glibc's
//!   `free(): invalid next size` aborts manifest.
//!
//! Whether an overrun crashes therefore depends on whether the program
//! later frees (or reallocates over) the corrupted block — which depends on
//! the input, making the bug genuinely non-deterministic at the predicate
//! level.

use crate::outcome::CrashKind;
use crate::value::{PtrVal, Value};

/// Default slack capacity added to every allocation.
pub const DEFAULT_SLACK: usize = 16;

#[derive(Debug, Clone)]
struct HeapBlock {
    data: Vec<Value>,
    len: usize,
    freed: bool,
    corrupted: bool,
}

/// The MiniC heap.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    blocks: Vec<HeapBlock>,
    slack: usize,
    live: usize,
}

impl Heap {
    /// Creates an empty heap with the default slack.
    pub fn new() -> Self {
        Heap::with_slack(DEFAULT_SLACK)
    }

    /// Creates an empty heap whose allocations carry `slack` extra cells.
    pub fn with_slack(slack: usize) -> Self {
        Heap {
            blocks: Vec::new(),
            slack,
            live: 0,
        }
    }

    /// Number of live (unfreed) allocations.
    pub fn live_blocks(&self) -> usize {
        self.live
    }

    /// Whether any live or freed block has corrupted slack.
    pub fn any_corruption(&self) -> bool {
        self.blocks.iter().any(|b| b.corrupted)
    }

    /// Allocates a zeroed block of `len` cells and returns a pointer to it.
    ///
    /// # Errors
    ///
    /// Returns [`CrashKind::TypeError`] for negative lengths.
    pub fn alloc(&mut self, len: i64) -> Result<Value, CrashKind> {
        if len < 0 {
            return Err(CrashKind::TypeError(
                format!("alloc with negative length {len}").into(),
            ));
        }
        let len = len as usize;
        let block = HeapBlock {
            data: vec![Value::Int(0); len + self.slack],
            len,
            freed: false,
            corrupted: false,
        };
        let id = self.blocks.len() as u32;
        self.blocks.push(block);
        self.live += 1;
        Ok(Value::Ptr(PtrVal {
            block: id,
            offset: 0,
        }))
    }

    fn block_of(&self, ptr: PtrVal) -> Result<&HeapBlock, CrashKind> {
        let b = self
            .blocks
            .get(ptr.block as usize)
            .ok_or(CrashKind::SegFault)?;
        if b.freed {
            Err(CrashKind::UseAfterFree)
        } else {
            Ok(b)
        }
    }

    /// The logical length of the pointed-to block (`len(p)` builtin).
    ///
    /// # Errors
    ///
    /// Returns a crash kind for freed or invalid blocks.
    pub fn len(&self, ptr: PtrVal) -> Result<i64, CrashKind> {
        Ok(self.block_of(ptr)?.len as i64)
    }

    /// Loads the cell at `ptr.offset + index`.
    ///
    /// Loads from the slack region return whatever was (possibly
    /// corruptly) stored there — heap garbage.
    ///
    /// # Errors
    ///
    /// Returns a crash kind for out-of-capacity, freed, or invalid access.
    pub fn load(&self, ptr: PtrVal, index: i64) -> Result<Value, CrashKind> {
        let b = self.block_of(ptr)?;
        let at = ptr.offset + index;
        if at < 0 || at as usize >= b.data.len() {
            return Err(CrashKind::SegFault);
        }
        Ok(b.data[at as usize])
    }

    /// Stores `value` at `ptr.offset + index`.
    ///
    /// Stores into the slack region succeed but mark the block corrupted.
    ///
    /// # Errors
    ///
    /// Returns a crash kind for out-of-capacity, freed, or invalid access.
    pub fn store(&mut self, ptr: PtrVal, index: i64, value: Value) -> Result<(), CrashKind> {
        let slack = self.slack;
        let _ = slack;
        let b = self
            .blocks
            .get_mut(ptr.block as usize)
            .ok_or(CrashKind::SegFault)?;
        if b.freed {
            return Err(CrashKind::UseAfterFree);
        }
        let at = ptr.offset + index;
        if at < 0 || at as usize >= b.data.len() {
            return Err(CrashKind::SegFault);
        }
        if at as usize >= b.len {
            // Silent overrun into the slack: the next chunk's metadata is
            // now trampled.  The crash, if any, comes later.
            b.corrupted = true;
        }
        b.data[at as usize] = value;
        Ok(())
    }

    /// Frees the block `ptr` points into.
    ///
    /// # Errors
    ///
    /// * [`CrashKind::HeapCorruption`] if the block's slack was overrun —
    ///   the allocator walks its (trampled) metadata and aborts;
    /// * [`CrashKind::DoubleFree`] if already freed;
    /// * [`CrashKind::SegFault`] for invalid blocks or interior pointers.
    pub fn free(&mut self, ptr: PtrVal) -> Result<(), CrashKind> {
        if ptr.offset != 0 {
            return Err(CrashKind::SegFault);
        }
        let b = self
            .blocks
            .get_mut(ptr.block as usize)
            .ok_or(CrashKind::SegFault)?;
        if b.freed {
            return Err(CrashKind::DoubleFree);
        }
        if b.corrupted {
            return Err(CrashKind::HeapCorruption);
        }
        b.freed = true;
        self.live -= 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ptr(v: Value) -> PtrVal {
        match v {
            Value::Ptr(p) => p,
            other => panic!("expected pointer, got {other}"),
        }
    }

    #[test]
    fn alloc_load_store_round_trip() {
        let mut h = Heap::new();
        let p = ptr(h.alloc(4).unwrap());
        h.store(p, 2, Value::Int(42)).unwrap();
        assert_eq!(h.load(p, 2).unwrap(), Value::Int(42));
        assert_eq!(h.load(p, 0).unwrap(), Value::Int(0));
        assert_eq!(h.len(p).unwrap(), 4);
    }

    #[test]
    fn offset_pointers_address_relative() {
        let mut h = Heap::new();
        let p = ptr(h.alloc(4).unwrap());
        let q = PtrVal {
            block: p.block,
            offset: 2,
        };
        h.store(q, 1, Value::Int(9)).unwrap();
        assert_eq!(h.load(p, 3).unwrap(), Value::Int(9));
    }

    #[test]
    fn overrun_into_slack_is_silent_but_corrupting() {
        let mut h = Heap::new();
        let p = ptr(h.alloc(4).unwrap());
        assert!(!h.any_corruption());
        h.store(p, 5, Value::Int(1)).unwrap(); // past len, inside slack
        assert!(h.any_corruption());
        // And the garbage can be read back.
        assert_eq!(h.load(p, 5).unwrap(), Value::Int(1));
    }

    #[test]
    fn far_overrun_segfaults_immediately() {
        let mut h = Heap::with_slack(4);
        let p = ptr(h.alloc(2).unwrap());
        assert_eq!(h.store(p, 100, Value::Int(1)), Err(CrashKind::SegFault));
        assert_eq!(h.load(p, -1), Err(CrashKind::SegFault));
    }

    #[test]
    fn freeing_corrupted_block_crashes() {
        let mut h = Heap::new();
        let p = ptr(h.alloc(4).unwrap());
        h.store(p, 4, Value::Int(7)).unwrap();
        assert_eq!(h.free(p), Err(CrashKind::HeapCorruption));
    }

    #[test]
    fn freeing_clean_block_succeeds_once() {
        let mut h = Heap::new();
        let p = ptr(h.alloc(4).unwrap());
        assert_eq!(h.live_blocks(), 1);
        h.free(p).unwrap();
        assert_eq!(h.live_blocks(), 0);
        assert_eq!(h.free(p), Err(CrashKind::DoubleFree));
    }

    #[test]
    fn use_after_free_detected() {
        let mut h = Heap::new();
        let p = ptr(h.alloc(4).unwrap());
        h.free(p).unwrap();
        assert_eq!(h.load(p, 0), Err(CrashKind::UseAfterFree));
        assert_eq!(h.store(p, 0, Value::Int(1)), Err(CrashKind::UseAfterFree));
        assert_eq!(h.len(p), Err(CrashKind::UseAfterFree));
    }

    #[test]
    fn interior_pointer_free_rejected() {
        let mut h = Heap::new();
        let p = ptr(h.alloc(4).unwrap());
        let q = PtrVal {
            block: p.block,
            offset: 1,
        };
        assert_eq!(h.free(q), Err(CrashKind::SegFault));
    }

    #[test]
    fn negative_alloc_rejected() {
        let mut h = Heap::new();
        assert!(matches!(h.alloc(-1), Err(CrashKind::TypeError(_))));
    }

    #[test]
    fn zero_length_alloc_is_fine() {
        let mut h = Heap::new();
        let p = ptr(h.alloc(0).unwrap());
        assert_eq!(h.len(p).unwrap(), 0);
        // Any in-slack store corrupts immediately (len == 0).
        h.store(p, 0, Value::Int(1)).unwrap();
        assert!(h.any_corruption());
    }
}
