//! A deterministic MiniC virtual machine.
//!
//! Executes MiniC programs — plain, unconditionally instrumented, or
//! sampling-transformed — with:
//!
//! * an abstract operation cost model ([`cost::CostModel`]) standing in for
//!   wall-clock time, so overhead ratios are exactly reproducible;
//! * a heap with *silent corruption* semantics ([`heap::Heap`]): small
//!   overruns land in per-allocation slack and only crash later, when the
//!   allocator trips over the damage — reproducing the non-deterministic
//!   crash behaviour of the paper's `bc` case study;
//! * scripted input and an output log for driving randomized runs;
//! * the sampling runtime: report counters per site, countdown refills from
//!   any [`cbi_sampler::CountdownSource`], and `__gcd` seeding.
//!
//! # Example
//!
//! ```
//! use cbi_instrument::{instrument, Scheme};
//! use cbi_vm::Vm;
//!
//! let program = cbi_minic::parse(
//!     "fn main() -> int { ptr a = alloc(3); a[0] = 7; print(a[0]); free(a); return 0; }",
//! )?;
//! let inst = instrument(&program, Scheme::Checks)?;
//! let result = Vm::new(&inst.program).with_sites(&inst.sites).run()?;
//! assert!(result.outcome.is_success());
//! assert_eq!(result.output, vec![7]);
//! // Both bounds checks passed once each.
//! assert_eq!(result.counters.iter().sum::<u64>(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bytecode_interp;
pub mod cost;
pub mod heap;
pub mod interp;
pub mod outcome;
mod runtime;
mod slot_interp;
pub mod value;

pub use cbi_bytecode as bytecode;
pub use cost::CostModel;
pub use heap::Heap;
pub use interp::{Engine, RunResult, Vm, VmError, DEFAULT_MAX_DEPTH, DEFAULT_OP_LIMIT};
pub use outcome::{CrashKind, RunOutcome};
pub use value::{PtrVal, Value};
