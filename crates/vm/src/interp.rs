//! The MiniC interpreter.
//!
//! A deterministic tree-walking evaluator with:
//!
//! * function-level flat frames (sound because the resolver forbids
//!   shadowing; required because the sampling transformation clones
//!   declarations into both arms of threshold checks);
//! * the corruptible [`crate::heap::Heap`];
//! * scripted integer input (`read`/`has_input`) and an output log;
//! * the sampling runtime: observation builtins update the report counter
//!   vector, `__next_cd()` refills from a [`CountdownSource`], and the
//!   `__gcd` global is seeded at startup;
//! * op-cost accounting per [`CostModel`] for the overhead experiments.
//!
//! Three engines share this front end: the bytecode dispatch loop
//! ([`crate::bytecode_interp`]) executing compiled [`BcProgram`]s, the
//! slot-resolved tree walker ([`crate::slot_interp`], the default)
//! executing pre-lowered [`SlotProgram`]s with `Vec`-indexed frames, and
//! the original name-map tree walker in this module, kept as the
//! reference implementation for differential testing and benchmarking.
//! All three share the engine-independent run state and value semantics
//! in [`crate::runtime`].

use crate::cost::CostModel;
use crate::heap::DEFAULT_SLACK;
use crate::outcome::{CrashKind, RunOutcome};
use crate::runtime::{saturating_i64, Flow, RunCore, Trap};
use crate::slot_interp::SlotExec;
use crate::value::Value;
use cbi_bytecode::BcProgram;
use cbi_instrument::SiteTable;
use cbi_minic::ast::*;
use cbi_minic::builtins::GLOBAL_COUNTDOWN;
use cbi_minic::slots::{self, SlotProgram};
use cbi_minic::Builtin;
use cbi_sampler::CountdownSource;
use std::borrow::Cow;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Default operation budget per run.
pub const DEFAULT_OP_LIMIT: u64 = 50_000_000;

/// Default call-depth limit.
pub const DEFAULT_MAX_DEPTH: usize = 256;

/// A configuration error detected before execution starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmError {
    message: String,
}

impl VmError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        VmError {
            message: message.into(),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm configuration error: {}", self.message)
    }
}

impl Error for VmError {}

/// The result of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Total abstract operation units consumed — the run's "time".
    pub ops: u64,
    /// The counter vector (report payload), laid out per the site table.
    pub counters: Vec<u64>,
    /// Values printed by the program.
    pub output: Vec<i64>,
    /// The last observations in execution order (newest last), when trace
    /// capture was enabled with [`Vm::with_trace`]: `(counter index,
    /// observed-true flag)` per executed observation.  Empty otherwise.
    ///
    /// This is the "partial traces (with ordering information)" the paper
    /// leaves to future work in §2.5, bounded so client-side memory stays
    /// constant.
    pub trace: Vec<(usize, bool)>,
}

/// Which interpreter engine a [`Vm`] executes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Slot-resolved tree walking (the default): names are lowered to
    /// dense indices once, frames are `Vec`-backed — no string hashing on
    /// the execution path.
    #[default]
    Slots,
    /// The original name-map tree walker (`HashMap` frames).  Kept as the
    /// reference engine for differential tests and overhead baselines.
    NameMap,
    /// The bytecode dispatch loop: the slot-resolved program is compiled
    /// to flat instructions with resolved jumps and fused countdown ops,
    /// then executed by a `loop { match op }` engine — the fastest path.
    Bytecode,
}

impl Engine {
    /// Parses an engine name as accepted by the CLI `--engine` flag.
    pub fn parse(name: &str) -> Option<Engine> {
        match name {
            "slot" | "slots" => Some(Engine::Slots),
            "namemap" | "name-map" => Some(Engine::NameMap),
            "bytecode" | "bc" => Some(Engine::Bytecode),
            _ => None,
        }
    }

    /// The canonical CLI name of this engine.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Slots => "slot",
            Engine::NameMap => "namemap",
            Engine::Bytecode => "bytecode",
        }
    }
}

/// The program representation a [`Vm`] was constructed from.
#[derive(Clone, Copy)]
enum ProgramSrc<'a> {
    Ast(&'a Program),
    Slots(&'a SlotProgram),
    Bytecode(&'a BcProgram),
}

/// The countdown source, owned or borrowed.  Borrowing lets a campaign
/// worker reseed and reuse one bank across thousands of trials instead of
/// boxing a fresh allocation per run.
enum Sampling<'a> {
    None,
    Owned(Box<dyn CountdownSource>),
    Borrowed(&'a mut (dyn CountdownSource + 'static)),
}

impl Sampling<'_> {
    fn get(&mut self) -> Option<&mut (dyn CountdownSource + 'static)> {
        match self {
            Sampling::None => None,
            Sampling::Owned(b) => Some(&mut **b),
            Sampling::Borrowed(r) => Some(&mut **r),
        }
    }

    fn is_configured(&self) -> bool {
        !matches!(self, Sampling::None)
    }
}

/// A configured MiniC virtual machine (non-consuming builder).
///
/// # Example
///
/// ```
/// use cbi_vm::Vm;
///
/// let program = cbi_minic::parse(
///     "fn main() -> int { print(40 + 2); return 0; }",
/// )?;
/// let result = Vm::new(&program).run()?;
/// assert!(result.outcome.is_success());
/// assert_eq!(result.output, vec![42]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// On a hot path, compile once and share the borrowed pieces across runs:
///
/// ```
/// use cbi_vm::Vm;
///
/// let program = cbi_minic::parse(
///     "fn main() -> int { return read(); }",
/// )?;
/// let slots = cbi_minic::lower(&program);
/// let bc = cbi_bytecode::compile(&slots);
/// let input = vec![7];
/// for _ in 0..3 {
///     let r = Vm::from_bytecode(&bc).with_input(&input[..]).run()?;
///     assert_eq!(r.outcome, cbi_vm::RunOutcome::Success(7));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Vm<'a> {
    program: ProgramSrc<'a>,
    sites: Option<&'a SiteTable>,
    sampling: Sampling<'a>,
    input: Cow<'a, [i64]>,
    engine: Engine,
    op_limit: u64,
    max_depth: usize,
    costs: CostModel,
    heap_slack: usize,
    trace_limit: usize,
}

impl fmt::Debug for Vm<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let functions = match self.program {
            ProgramSrc::Ast(p) => p.functions.len(),
            ProgramSrc::Slots(p) => p.functions.len(),
            ProgramSrc::Bytecode(p) => p.functions.len(),
        };
        f.debug_struct("Vm")
            .field("functions", &functions)
            .field("engine", &self.engine)
            .field("has_sites", &self.sites.is_some())
            .field("has_sampling", &self.sampling.is_configured())
            .field("input_len", &self.input.len())
            .field("op_limit", &self.op_limit)
            .finish()
    }
}

impl<'a> Vm<'a> {
    /// Creates a VM for a program with default settings.
    pub fn new(program: &'a Program) -> Self {
        Vm::with_src(ProgramSrc::Ast(program))
    }

    /// Creates a VM for a pre-lowered program (see [`cbi_minic::lower`]).
    ///
    /// Lowering once and constructing per-run VMs from the shared
    /// [`SlotProgram`] amortizes name resolution across a whole campaign.
    pub fn from_slots(program: &'a SlotProgram) -> Self {
        Vm::with_src(ProgramSrc::Slots(program))
    }

    /// Creates a VM for a compiled bytecode program (see
    /// [`cbi_bytecode::compile`]) and selects the bytecode engine.
    ///
    /// Compiling once and constructing per-run VMs from the shared
    /// [`BcProgram`] amortizes both name resolution and code generation
    /// across a whole campaign — the fastest configuration.
    pub fn from_bytecode(program: &'a BcProgram) -> Self {
        let mut vm = Vm::with_src(ProgramSrc::Bytecode(program));
        vm.engine = Engine::Bytecode;
        vm
    }

    fn with_src(program: ProgramSrc<'a>) -> Self {
        Vm {
            program,
            sites: None,
            sampling: Sampling::None,
            input: Cow::Borrowed(&[]),
            engine: Engine::default(),
            op_limit: DEFAULT_OP_LIMIT,
            max_depth: DEFAULT_MAX_DEPTH,
            costs: CostModel::default(),
            heap_slack: DEFAULT_SLACK,
            trace_limit: 0,
        }
    }

    /// Attaches the site table defining the counter layout; required when
    /// the program contains observation builtins.
    pub fn with_sites(&mut self, sites: &'a SiteTable) -> &mut Self {
        self.sites = Some(sites);
        self
    }

    /// Attaches the countdown source used by `__next_cd()` and the initial
    /// `__gcd` seed; required for sampled programs.
    pub fn with_sampling(&mut self, source: Box<dyn CountdownSource>) -> &mut Self {
        self.sampling = Sampling::Owned(source);
        self
    }

    /// Like [`Vm::with_sampling`], but borrows the source, so a caller can
    /// reseed and reuse one countdown bank across many runs without
    /// re-boxing it each time.
    pub fn with_sampling_ref(
        &mut self,
        source: &'a mut (dyn CountdownSource + 'static),
    ) -> &mut Self {
        self.sampling = Sampling::Borrowed(source);
        self
    }

    /// Selects the interpreter engine (default [`Engine::Slots`]).
    pub fn with_engine(&mut self, engine: Engine) -> &mut Self {
        self.engine = engine;
        self
    }

    /// Sets the scripted input consumed by `read()`.
    ///
    /// Accepts an owned `Vec<i64>` or a borrowed `&[i64]`; borrowing lets
    /// hot loops share one input buffer across trials without cloning.
    pub fn with_input(&mut self, input: impl Into<Cow<'a, [i64]>>) -> &mut Self {
        self.input = input.into();
        self
    }

    /// Sets the operation budget (default [`DEFAULT_OP_LIMIT`]).
    pub fn with_op_limit(&mut self, limit: u64) -> &mut Self {
        self.op_limit = limit;
        self
    }

    /// Sets the call-depth limit (default [`DEFAULT_MAX_DEPTH`]).
    pub fn with_max_depth(&mut self, depth: usize) -> &mut Self {
        self.max_depth = depth;
        self
    }

    /// Sets the cost model.
    pub fn with_costs(&mut self, costs: CostModel) -> &mut Self {
        self.costs = costs;
        self
    }

    /// Sets the heap slack (overrun tolerance) per allocation.
    pub fn with_heap_slack(&mut self, slack: usize) -> &mut Self {
        self.heap_slack = slack;
        self
    }

    /// Enables bounded trace capture: the run result will carry the last
    /// `limit` observations in execution order (a ring buffer, so client
    /// memory stays constant — the §2.5 future-work extension).
    pub fn with_trace(&mut self, limit: usize) -> &mut Self {
        self.trace_limit = limit;
        self
    }

    /// Executes `main` and returns the run result.
    ///
    /// # Errors
    ///
    /// Returns [`VmError`] if the program has no `main` function or `main`
    /// takes parameters.  Runtime failures are *not* errors: they are
    /// reported in [`RunResult::outcome`].
    pub fn run(&mut self) -> Result<RunResult, VmError> {
        let mut counter_layout = Vec::new();
        let total_counters = match self.sites {
            Some(t) => {
                counter_layout = t.iter().map(|s| (s.counter_base, s.kind.arity())).collect();
                t.total_counters()
            }
            None => 0,
        };

        match (self.engine, self.program) {
            (Engine::NameMap, ProgramSrc::Ast(program)) => {
                self.run_namemap(program, counter_layout, total_counters)
            }
            (Engine::NameMap, _) => Err(VmError::new(
                "name-map engine requires an AST program (construct with Vm::new)",
            )),
            (Engine::Slots, ProgramSrc::Slots(program)) => {
                self.run_slots(program, counter_layout, total_counters)
            }
            (Engine::Slots, ProgramSrc::Ast(program)) => {
                // One-shot convenience path: lower, then run.  Hot loops
                // lower once and use `Vm::from_slots` instead.
                let lowered = slots::lower(program);
                self.run_slots(&lowered, counter_layout, total_counters)
            }
            (Engine::Slots, ProgramSrc::Bytecode(_)) => Err(VmError::new(
                "slot engine requires an AST or slot program (construct with Vm::new or Vm::from_slots)",
            )),
            (Engine::Bytecode, ProgramSrc::Bytecode(program)) => {
                self.run_bytecode(program, counter_layout, total_counters)
            }
            (Engine::Bytecode, ProgramSrc::Slots(program)) => {
                // One-shot convenience path: compile, then run.  Hot loops
                // compile once and use `Vm::from_bytecode` instead.
                let compiled = cbi_bytecode::compile(program);
                self.run_bytecode(&compiled, counter_layout, total_counters)
            }
            (Engine::Bytecode, ProgramSrc::Ast(program)) => {
                let lowered = slots::lower(program);
                let compiled = cbi_bytecode::compile(&lowered);
                self.run_bytecode(&compiled, counter_layout, total_counters)
            }
        }
    }

    fn core(&mut self, counter_layout: Vec<(usize, usize)>, total_counters: usize) -> RunCore<'_> {
        RunCore::new(
            self.heap_slack,
            self.input.as_ref(),
            total_counters,
            counter_layout,
            self.sampling.get(),
            self.op_limit,
            self.costs,
            self.max_depth,
            self.trace_limit,
        )
    }

    fn run_slots(
        &mut self,
        program: &SlotProgram,
        counter_layout: Vec<(usize, usize)>,
        total_counters: usize,
    ) -> Result<RunResult, VmError> {
        let main = program
            .main
            .map(|i| &program.functions[i as usize])
            .ok_or_else(|| VmError::new("program has no `main` function"))?;
        if main.n_params != 0 {
            return Err(VmError::new("`main` must take no parameters"));
        }

        let globals: Vec<Value> = program
            .globals
            .iter()
            .map(|g| match g.ty {
                Type::Int => Value::Int(g.init),
                Type::Ptr => Value::Null,
            })
            .collect();

        let mut exec = SlotExec {
            prog: program,
            core: self.core(counter_layout, total_counters),
            globals,
            stack: Vec::with_capacity(64),
        };

        // Seed the global countdown before the first instruction (§2.1):
        // the instrumented program starts with a fresh next-sample distance.
        if let Some(g) = program.gcd_global {
            let seed = match exec.core.sampling.as_deref_mut() {
                Some(src) => saturating_i64(src.next_countdown()),
                None => {
                    return Err(VmError::new(
                        "sampled program requires a countdown source (with_sampling)",
                    ))
                }
            };
            exec.globals[g as usize] = Value::Int(seed);
        }

        let outcome = RunCore::outcome_of(exec.call_function(main, &[]));
        Ok(exec.core.finish(outcome))
    }

    fn run_bytecode(
        &mut self,
        program: &BcProgram,
        counter_layout: Vec<(usize, usize)>,
        total_counters: usize,
    ) -> Result<RunResult, VmError> {
        let core = self.core(counter_layout, total_counters);
        crate::bytecode_interp::run(program, core)
    }

    fn run_namemap(
        &mut self,
        program: &Program,
        counter_layout: Vec<(usize, usize)>,
        total_counters: usize,
    ) -> Result<RunResult, VmError> {
        let main = program
            .function("main")
            .ok_or_else(|| VmError::new("program has no `main` function"))?;
        if !main.params.is_empty() {
            return Err(VmError::new("`main` must take no parameters"));
        }

        let mut funcs: HashMap<&str, &Function> = HashMap::new();
        for f in &program.functions {
            funcs.insert(&f.name, f);
        }

        let mut globals: HashMap<String, Value> = HashMap::new();
        for g in &program.globals {
            let v = match g.ty {
                Type::Int => Value::Int(g.init),
                Type::Ptr => Value::Null,
            };
            globals.insert(g.name.clone(), v);
        }

        let mut exec = Exec {
            funcs,
            core: self.core(counter_layout, total_counters),
            globals,
        };

        // Seed the global countdown before the first instruction (§2.1):
        // the instrumented program starts with a fresh next-sample distance.
        if exec.globals.contains_key(GLOBAL_COUNTDOWN) {
            let seed = match exec.core.sampling.as_deref_mut() {
                Some(src) => saturating_i64(src.next_countdown()),
                None => {
                    return Err(VmError::new(
                        "sampled program requires a countdown source (with_sampling)",
                    ))
                }
            };
            exec.globals
                .insert(GLOBAL_COUNTDOWN.to_string(), Value::Int(seed));
        }

        let outcome = RunCore::outcome_of(exec.call_function(main, Vec::new()));
        Ok(exec.core.finish(outcome))
    }
}

type Frame = HashMap<String, Value>;

struct Exec<'a> {
    funcs: HashMap<&'a str, &'a Function>,
    core: RunCore<'a>,
    globals: HashMap<String, Value>,
}

impl Exec<'_> {
    /// Evaluates countdown-arithmetic expressions of synthesized
    /// statements without per-node charges (they model register ops); a
    /// flat bookkeeping charge is applied by the caller.
    fn eval_uncharged(&mut self, e: &Expr, frame: &mut Frame) -> Result<Value, Trap> {
        self.core.free_depth += 1;
        let r = self.eval(e, frame);
        self.core.free_depth -= 1;
        r
    }

    fn call_function(&mut self, f: &Function, args: Vec<Value>) -> Result<Option<Value>, Trap> {
        if self.core.depth >= self.core.max_depth {
            return Err(Trap::Crash(CrashKind::StackOverflow));
        }
        self.core.depth += 1;
        self.core.charge(self.core.costs.call)?;
        let mut frame: Frame = HashMap::with_capacity(f.params.len() + 8);
        debug_assert_eq!(args.len(), f.params.len());
        for (p, v) in f.params.iter().zip(args) {
            frame.insert(p.name.clone(), v);
        }
        let flow = self.exec_block(&f.body, &mut frame)?;
        self.core.depth -= 1;
        match flow {
            Flow::Return(v) => Ok(v),
            // Falling off the end returns the zero value for the declared
            // return type (or nothing for procedures).
            _ => Ok(f.ret.map(Value::zero_of)),
        }
    }

    fn exec_block(&mut self, b: &Block, frame: &mut Frame) -> Result<Flow, Trap> {
        for s in &b.stmts {
            match self.exec_stmt(s, frame)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt, frame: &mut Frame) -> Result<Flow, Trap> {
        // Synthesized countdown bookkeeping (decrements, threshold checks,
        // imports/exports) costs a flat unit: in a native build these are
        // register operations (§2.4).  Branch bodies of synthesized
        // conditionals still charge normally — they contain real code.
        if self.core.tm.on {
            self.core.tm.steps += 1;
        }
        if s.span().is_synthesized() {
            match s {
                Stmt::Decl { ty, name, init, .. } => {
                    self.core.charge(self.core.costs.bookkeeping)?;
                    let v = match init {
                        Some(e) => self.eval_uncharged(e, frame)?,
                        None => Value::zero_of(*ty),
                    };
                    frame.insert(name.clone(), v);
                    return Ok(Flow::Normal);
                }
                Stmt::Assign { name, value, .. } => {
                    self.core.charge(self.core.costs.bookkeeping)?;
                    let v = self.eval_uncharged(value, frame)?;
                    self.assign(name, v, frame)?;
                    return Ok(Flow::Normal);
                }
                Stmt::If {
                    cond,
                    then_block,
                    else_block,
                    ..
                } => {
                    self.core.charge(self.core.costs.bookkeeping)?;
                    let taken = match self.eval_uncharged(cond, frame)? {
                        Value::Int(v) => v != 0,
                        other => {
                            return Err(self
                                .core
                                .type_error(format!("synthesized condition evaluated to {other}")))
                        }
                    };
                    if self.core.tm.on {
                        if let Expr::Binary { op, .. } = cond {
                            self.core.tm.synthesized_if(*op, taken);
                        }
                    }
                    if taken {
                        return self.exec_block(then_block, frame);
                    } else if let Some(e) = else_block {
                        return self.exec_block(e, frame);
                    }
                    return Ok(Flow::Normal);
                }
                _ => {}
            }
        }
        self.core.charge(self.core.costs.stmt)?;
        match s {
            Stmt::Decl { ty, name, init, .. } => {
                let v = match init {
                    Some(e) => self.eval(e, frame)?,
                    None => Value::zero_of(*ty),
                };
                frame.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign { name, value, .. } => {
                let v = self.eval(value, frame)?;
                self.assign(name, v, frame)?;
                Ok(Flow::Normal)
            }
            Stmt::Store {
                target,
                index,
                value,
                ..
            } => {
                let ptr = match self.lookup(target, frame)? {
                    Value::Ptr(p) => p,
                    Value::Null => return Err(Trap::Crash(CrashKind::NullDeref)),
                    other => {
                        return Err(self
                            .core
                            .type_error(format!("store through non-pointer `{target}` = {other}")))
                    }
                };
                let idx = self.eval_int(index, frame)?;
                let v = self.eval(value, frame)?;
                self.core.charge(self.core.costs.mem)?;
                self.core.heap.store(ptr, idx, v).map_err(Trap::Crash)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                if self.eval_bool(cond, frame)? {
                    self.exec_block(then_block, frame)
                } else if let Some(e) = else_block {
                    self.exec_block(e, frame)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body, .. } => {
                while self.eval_bool(cond, frame)? {
                    match self.exec_block(body, frame)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => Some(self.eval(e, frame)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break { .. } => Ok(Flow::Break),
            Stmt::Continue { .. } => Ok(Flow::Continue),
            // Un-lowered assertion markers are inert: only the `checks`
            // scheme turns them into real observations.
            Stmt::Check { .. } => Ok(Flow::Normal),
            Stmt::Expr { expr, .. } => {
                self.eval(expr, frame)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn lookup(&self, name: &str, frame: &Frame) -> Result<Value, Trap> {
        if let Some(v) = frame.get(name) {
            return Ok(*v);
        }
        if let Some(v) = self.globals.get(name) {
            return Ok(*v);
        }
        Err(self.core.type_error(format!("undefined variable `{name}`")))
    }

    fn assign(&mut self, name: &str, v: Value, frame: &mut Frame) -> Result<(), Trap> {
        if let Some(slot) = frame.get_mut(name) {
            *slot = v;
            return Ok(());
        }
        if let Some(slot) = self.globals.get_mut(name) {
            *slot = v;
            return Ok(());
        }
        Err(self
            .core
            .type_error(format!("assignment to undefined variable `{name}`")))
    }

    fn eval_int(&mut self, e: &Expr, frame: &mut Frame) -> Result<i64, Trap> {
        match self.eval(e, frame)? {
            Value::Int(v) => Ok(v),
            other => Err(self
                .core
                .type_error(format!("expected integer, got {other}"))),
        }
    }

    fn eval_bool(&mut self, e: &Expr, frame: &mut Frame) -> Result<bool, Trap> {
        Ok(self.eval_int(e, frame)? != 0)
    }

    fn eval(&mut self, e: &Expr, frame: &mut Frame) -> Result<Value, Trap> {
        self.core.charge(self.core.costs.expr)?;
        match e {
            Expr::Int { value, .. } => Ok(Value::Int(*value)),
            Expr::Null { .. } => Ok(Value::Null),
            Expr::Var { name, .. } => self.lookup(name, frame),
            Expr::Load { ptr, index, .. } => {
                let p = match self.eval(ptr, frame)? {
                    Value::Ptr(p) => p,
                    Value::Null => return Err(Trap::Crash(CrashKind::NullDeref)),
                    other => {
                        return Err(self
                            .core
                            .type_error(format!("indexing non-pointer value {other}")))
                    }
                };
                let idx = self.eval_int(index, frame)?;
                self.core.charge(self.core.costs.mem)?;
                self.core.heap.load(p, idx).map_err(Trap::Crash)
            }
            Expr::Call { name, args, .. } => self.eval_call(name, args, frame),
            Expr::Unary { op, expr, .. } => {
                let v = self.eval_int(expr, frame)?;
                Ok(Value::Int(RunCore::unary_value(*op, v)))
            }
            Expr::Binary { op, lhs, rhs, .. } => self.eval_binary(*op, lhs, rhs, frame),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        frame: &mut Frame,
    ) -> Result<Value, Trap> {
        // Short-circuit operators evaluate the right side conditionally.
        if op == BinOp::And {
            return Ok(Value::Int(i64::from(
                self.eval_bool(lhs, frame)? && self.eval_bool(rhs, frame)?,
            )));
        }
        if op == BinOp::Or {
            return Ok(Value::Int(i64::from(
                self.eval_bool(lhs, frame)? || self.eval_bool(rhs, frame)?,
            )));
        }

        let a = self.eval(lhs, frame)?;
        let b = self.eval(rhs, frame)?;
        self.core.binary_values(op, a, b)
    }

    fn eval_call(&mut self, name: &str, args: &[Expr], frame: &mut Frame) -> Result<Value, Trap> {
        if let Some(b) = Builtin::from_name(name) {
            return self.eval_builtin(b, args, frame);
        }
        let f = *self.funcs.get(name).ok_or_else(|| {
            self.core
                .type_error(format!("call to undefined function `{name}`"))
        })?;
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(a, frame)?);
        }
        let ret = self.call_function(f, vals)?;
        // Procedure results are only legal in statement position; the
        // resolver guarantees the value is never consumed.
        Ok(ret.unwrap_or(Value::Int(0)))
    }

    fn eval_builtin(
        &mut self,
        b: Builtin,
        args: &[Expr],
        frame: &mut Frame,
    ) -> Result<Value, Trap> {
        match b {
            Builtin::Alloc => {
                let n = self.eval_int(&args[0], frame)?;
                self.core.alloc_value(n)
            }
            Builtin::Free => {
                let v = self.eval(&args[0], frame)?;
                self.core.free_value(v)
            }
            Builtin::Len => {
                let v = self.eval(&args[0], frame)?;
                self.core.len_value(v)
            }
            Builtin::Read => Ok(self.core.read_value()),
            Builtin::HasInput => Ok(self.core.has_input_value()),
            Builtin::Print => {
                let v = self.eval_int(&args[0], frame)?;
                Ok(self.core.print_value(v))
            }
            Builtin::Exit => {
                let code = self.eval_int(&args[0], frame)?;
                Err(Trap::Exit(code))
            }
            Builtin::ObsCheck => {
                let site = self.eval_int(&args[0], frame)?;
                let ok = self.eval_bool(&args[1], frame)?;
                self.core.obs_check(site, ok)
            }
            Builtin::ObsCmp => {
                // A three-way compare plus one counter bump is a handful of
                // native instructions; charge it flat (unlike `__check`,
                // which evaluates a real predicate).
                self.core.charge(self.core.costs.observe)?;
                self.core.free_depth += 1;
                let site = self.eval_int(&args[0], frame);
                let a = self.eval(&args[1], frame);
                let b = self.eval(&args[2], frame);
                self.core.free_depth -= 1;
                let (site, a, b) = (site?, a?, b?);
                self.core.obs_cmp(site, a, b)
            }
            Builtin::ObsSign => {
                self.core.charge(self.core.costs.observe)?;
                self.core.free_depth += 1;
                let site = self.eval_int(&args[0], frame);
                let v = self.eval(&args[1], frame);
                self.core.free_depth -= 1;
                let (site, v) = (site?, v?);
                self.core.obs_sign(site, v)
            }
            Builtin::NextCountdown => self.core.next_countdown_value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::parse;

    fn run(src: &str) -> RunResult {
        let p = parse(src).unwrap();
        cbi_minic::resolve(&p).unwrap_or_else(|e| panic!("{e}"));
        Vm::new(&p).run().unwrap()
    }

    fn run_with_input(src: &str, input: Vec<i64>) -> RunResult {
        let p = parse(src).unwrap();
        Vm::new(&p).with_input(input).run().unwrap()
    }

    #[test]
    fn arithmetic_and_output() {
        let r = run("fn main() -> int { print(2 + 3 * 4); print(10 / 3); print(10 % 3); print(-7); return 0; }");
        assert_eq!(r.output, vec![14, 3, 1, -7]);
        assert_eq!(r.outcome, RunOutcome::Success(0));
        assert!(r.ops > 0);
    }

    #[test]
    fn comparisons_and_logic() {
        let r = run(
            "fn main() -> int { print(1 < 2); print(2 <= 1); print(3 == 3); print(3 != 3); \
             print(1 && 0); print(1 || 0); print(!5); print(!0); return 0; }",
        );
        assert_eq!(r.output, vec![1, 0, 1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn short_circuit_avoids_crash() {
        let r =
            run("fn main() -> int { ptr p; if (p != null && p[0] == 1) { print(1); } return 0; }");
        assert_eq!(r.outcome, RunOutcome::Success(0));
    }

    #[test]
    fn control_flow_while_break_continue() {
        let r = run(
            "fn main() -> int { int i = 0; int s = 0; while (1) { i = i + 1; \
             if (i % 2 == 0) { continue; } if (i > 9) { break; } s = s + i; } print(s); return 0; }",
        );
        assert_eq!(r.output, vec![1 + 3 + 5 + 7 + 9]);
    }

    #[test]
    fn functions_recursion_and_globals() {
        let r = run(
            "int calls = 0;\n\
             fn fib(int n) -> int { calls = calls + 1; if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\n\
             fn main() -> int { print(fib(10)); print(calls); return 0; }",
        );
        assert_eq!(r.output[0], 55);
        assert!(r.output[1] > 100);
    }

    #[test]
    fn heap_programs_work() {
        let r = run(
            "fn main() -> int { ptr a = alloc(5); int i = 0; while (i < 5) { a[i] = i * i; i = i + 1; } \
             int s = 0; i = 0; while (i < len(a)) { s = s + a[i]; i = i + 1; } free(a); print(s); return 0; }",
        );
        assert_eq!(r.output, vec![1 + 4 + 9 + 16]);
    }

    #[test]
    fn pointer_arithmetic() {
        let r = run(
            "fn main() -> int { ptr a = alloc(4); ptr b = a + 2; b[0] = 7; print(a[2]); print(b - a); return 0; }",
        );
        assert_eq!(r.output, vec![7, 2]);
    }

    #[test]
    fn null_deref_crashes() {
        let r = run("fn main() -> int { ptr p; return p[0]; }");
        assert_eq!(r.outcome, RunOutcome::Crash(CrashKind::NullDeref));
    }

    #[test]
    fn divide_by_zero_crashes() {
        let r = run("fn main() -> int { int z = 0; return 1 / z; }");
        assert_eq!(r.outcome, RunOutcome::Crash(CrashKind::DivideByZero));
    }

    #[test]
    fn overrun_then_free_crashes_later() {
        let r =
            run("fn main() -> int { ptr a = alloc(4); a[5] = 1; print(99); free(a); return 0; }");
        // The overrun itself is silent (99 printed), the free crashes.
        assert_eq!(r.output, vec![99]);
        assert_eq!(r.outcome, RunOutcome::Crash(CrashKind::HeapCorruption));
    }

    #[test]
    fn overrun_without_free_gets_lucky() {
        let r = run("fn main() -> int { ptr a = alloc(4); a[5] = 1; return 0; }");
        assert_eq!(r.outcome, RunOutcome::Success(0));
    }

    #[test]
    fn stack_overflow_detected() {
        let p = parse(
            "fn loop_(int n) -> int { return loop_(n + 1); } fn main() -> int { return loop_(0); }",
        )
        .unwrap();
        let r = Vm::new(&p).with_max_depth(50).run().unwrap();
        assert_eq!(r.outcome, RunOutcome::Crash(CrashKind::StackOverflow));
    }

    #[test]
    fn op_limit_bounds_infinite_loops() {
        let p = parse("fn main() -> int { while (1) { } return 0; }").unwrap();
        let r = Vm::new(&p).with_op_limit(10_000).run().unwrap();
        assert_eq!(r.outcome, RunOutcome::OpLimit);
        assert!(r.ops >= 10_000);
    }

    #[test]
    fn scripted_input() {
        let r = run_with_input(
            "fn main() -> int { int s = 0; while (has_input()) { s = s + read(); } print(s); print(read()); return 0; }",
            vec![5, 6, 7],
        );
        assert_eq!(r.output, vec![18, 0], "read() at EOF yields 0");
    }

    #[test]
    fn exit_terminates_successfully() {
        let r = run("fn main() -> int { print(1); exit(3); print(2); return 0; }");
        assert_eq!(r.outcome, RunOutcome::Success(3));
        assert_eq!(r.output, vec![1]);
    }

    #[test]
    fn missing_main_is_config_error() {
        let p = parse("fn f() { }").unwrap();
        assert!(Vm::new(&p).run().is_err());
    }

    #[test]
    fn main_with_params_is_config_error() {
        let p = parse("fn main(int x) -> int { return x; }").unwrap();
        assert!(Vm::new(&p).run().is_err());
    }

    #[test]
    fn check_markers_are_inert() {
        let r = run("fn main() -> int { check(0); return 0; }");
        assert_eq!(r.outcome, RunOutcome::Success(0));
    }

    #[test]
    fn fall_through_returns_zero() {
        let r = run("fn f() -> int { } fn main() -> int { print(f()); return 0; }");
        assert_eq!(r.output, vec![0]);
    }

    #[test]
    fn ops_scale_with_work() {
        let small = run("fn main() -> int { int i = 0; while (i < 10) { i = i + 1; } return 0; }");
        let large =
            run("fn main() -> int { int i = 0; while (i < 1000) { i = i + 1; } return 0; }");
        assert!(large.ops > small.ops * 50);
    }

    #[test]
    fn determinism() {
        let src = "fn main() -> int { int i = 0; int s = 0; while (i < 100) { s = s + i * i; i = i + 1; } print(s); return 0; }";
        let a = run(src);
        let b = run(src);
        assert_eq!(a, b);
    }
}
