//! Runtime values.

use std::cmp::Ordering;
use std::fmt;

/// A heap pointer: a block id plus an element offset.
///
/// Pointer arithmetic adjusts the offset; the block id never changes (MiniC
/// pointers cannot walk off one allocation into another — but *indices* can
/// run past a block's logical length, which is where the corruption model
/// in [`crate::heap`] takes over).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PtrVal {
    /// Which allocation this points into.
    pub block: u32,
    /// Element offset from the allocation base (may be negative after
    /// arithmetic; bounds are enforced at access time).
    pub offset: i64,
}

impl PtrVal {
    /// Total order used for pointer comparisons: by block, then offset.
    pub fn order(self, other: PtrVal) -> Ordering {
        (self.block, self.offset).cmp(&(other.block, other.offset))
    }
}

/// A dynamically typed MiniC value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// The null pointer.
    Null,
    /// A live pointer into the heap.
    Ptr(PtrVal),
}

impl Value {
    /// The zero value for a declared type.
    pub fn zero_of(ty: cbi_minic::Type) -> Value {
        match ty {
            cbi_minic::Type::Int => Value::Int(0),
            cbi_minic::Type::Ptr => Value::Null,
        }
    }

    /// Integer truthiness; `None` if the value is not an integer.
    pub fn truthy(self) -> Option<bool> {
        match self {
            Value::Int(v) => Some(v != 0),
            _ => None,
        }
    }

    /// Whether this value is a pointer (including null).
    pub fn is_pointer(self) -> bool {
        matches!(self, Value::Null | Value::Ptr(_))
    }

    /// Three-way comparison for `__cmp` observations and relational
    /// operators; `None` when the values are not comparable (int vs ptr).
    pub fn compare(self, other: Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(&b)),
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, Value::Ptr(_)) => Some(Ordering::Less),
            (Value::Ptr(_), Value::Null) => Some(Ordering::Greater),
            (Value::Ptr(a), Value::Ptr(b)) => Some(a.order(b)),
            _ => None,
        }
    }

    /// Sign classification for `__obs_sign`: pointers count as positive,
    /// null as zero (§3.2.1 treats pointer-returning calls like scalars).
    pub fn sign_class(self) -> usize {
        match self {
            Value::Int(v) if v < 0 => 0,
            Value::Int(0) => 1,
            Value::Int(_) => 2,
            Value::Null => 1,
            Value::Ptr(_) => 2,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Null => f.write_str("null"),
            Value::Ptr(p) => write!(f, "ptr({}+{})", p.block, p.offset),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert_eq!(Value::Int(0).truthy(), Some(false));
        assert_eq!(Value::Int(-3).truthy(), Some(true));
        assert_eq!(Value::Null.truthy(), None);
    }

    #[test]
    fn comparisons() {
        assert_eq!(Value::Int(1).compare(Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Null.compare(Value::Null), Some(Ordering::Equal));
        let p = Value::Ptr(PtrVal {
            block: 1,
            offset: 0,
        });
        let q = Value::Ptr(PtrVal {
            block: 1,
            offset: 4,
        });
        assert_eq!(p.compare(q), Some(Ordering::Less));
        assert_eq!(Value::Null.compare(p), Some(Ordering::Less));
        assert_eq!(p.compare(Value::Null), Some(Ordering::Greater));
        assert_eq!(Value::Int(1).compare(p), None);
    }

    #[test]
    fn sign_classes() {
        assert_eq!(Value::Int(-5).sign_class(), 0);
        assert_eq!(Value::Int(0).sign_class(), 1);
        assert_eq!(Value::Int(7).sign_class(), 2);
        assert_eq!(Value::Null.sign_class(), 1);
        assert_eq!(
            Value::Ptr(PtrVal {
                block: 0,
                offset: 0
            })
            .sign_class(),
            2
        );
    }

    #[test]
    fn zero_values() {
        assert_eq!(Value::zero_of(cbi_minic::Type::Int), Value::Int(0));
        assert_eq!(Value::zero_of(cbi_minic::Type::Ptr), Value::Null);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(
            Value::Ptr(PtrVal {
                block: 2,
                offset: 5
            })
            .to_string(),
            "ptr(2+5)"
        );
    }
}
