//! Run outcomes: how an execution ended.

use std::fmt;

/// How a MiniC run terminated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program ran to completion (or called `exit`); carries the exit
    /// code.
    Success(i64),
    /// The program died with a fatal error — the analogue of being
    /// "aborted by a fatal signal" (§3.3.1).
    Crash(CrashKind),
    /// A sampled `check(...)` assertion observed a violation and halted
    /// the program (§3.1); carries the site id.
    AssertionFailure(u32),
    /// The run exceeded its operation budget (used to bound fuzzing runs;
    /// treated as neither success nor crash by the analyses).
    OpLimit,
}

impl RunOutcome {
    /// Whether the run counts as a successful execution for the analyses.
    pub fn is_success(&self) -> bool {
        matches!(self, RunOutcome::Success(_))
    }

    /// Whether the run counts as a failed (crashed) execution.
    ///
    /// Assertion failures count as failures: in the deployed system a
    /// failed check aborts the program just like a fatal signal.
    pub fn is_failure(&self) -> bool {
        matches!(self, RunOutcome::Crash(_) | RunOutcome::AssertionFailure(_))
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Success(code) => write!(f, "success (exit {code})"),
            RunOutcome::Crash(kind) => write!(f, "crash: {kind}"),
            RunOutcome::AssertionFailure(site) => {
                write!(f, "assertion failure at site#{site}")
            }
            RunOutcome::OpLimit => f.write_str("operation limit exceeded"),
        }
    }
}

/// The kind of fatal error that killed a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrashKind {
    /// Dereference of the null pointer.
    NullDeref,
    /// Access far outside an allocation (beyond even its slack capacity).
    SegFault,
    /// The allocator detected a corrupted block (overrun slack) during
    /// `free` — the delayed, input-dependent crash mode of heap overruns.
    HeapCorruption,
    /// `free` of an already-freed block.
    DoubleFree,
    /// Load or store through a freed block.
    UseAfterFree,
    /// Integer division or modulus by zero.
    DivideByZero,
    /// A dynamically ill-typed operation (e.g. using heap garbage as a
    /// pointer).  The message is boxed to keep the crash variant — and
    /// with it every `Result` on the interpreter hot path — small.
    TypeError(Box<str>),
    /// Call recursion exceeded the stack limit.
    StackOverflow,
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashKind::NullDeref => f.write_str("null pointer dereference"),
            CrashKind::SegFault => f.write_str("segmentation fault"),
            CrashKind::HeapCorruption => f.write_str("heap corruption detected by allocator"),
            CrashKind::DoubleFree => f.write_str("double free"),
            CrashKind::UseAfterFree => f.write_str("use after free"),
            CrashKind::DivideByZero => f.write_str("division by zero"),
            CrashKind::TypeError(msg) => write!(f, "type error: {msg}"),
            CrashKind::StackOverflow => f.write_str("stack overflow"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_and_failure_classification() {
        assert!(RunOutcome::Success(0).is_success());
        assert!(!RunOutcome::Success(1).is_failure());
        assert!(RunOutcome::Crash(CrashKind::NullDeref).is_failure());
        assert!(RunOutcome::AssertionFailure(3).is_failure());
        assert!(!RunOutcome::OpLimit.is_success());
        assert!(!RunOutcome::OpLimit.is_failure());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(RunOutcome::Success(0).to_string(), "success (exit 0)");
        assert!(RunOutcome::Crash(CrashKind::HeapCorruption)
            .to_string()
            .contains("corruption"));
        assert!(CrashKind::TypeError("int as ptr".into())
            .to_string()
            .contains("int as ptr"));
    }
}
