//! The slot-resolved interpreter — the tree-walking hot path.
//!
//! Executes [`SlotProgram`]s produced by [`cbi_minic::slots::lower`]:
//! frames are windows of a shared `Vec<Option<Value>>` stack indexed by
//! dense slot numbers, globals are a dense `Vec<Value>`, and callees are
//! pre-resolved — no string hashing anywhere on the execution path.
//!
//! This module is a statement-for-statement transliteration of the
//! name-map engine in [`crate::interp`]; the two must stay in lockstep.
//! Every op-cost charge, trap, and observation happens in exactly the
//! same order with exactly the same message, so `RunResult`s (outcome,
//! ops, counters, output, trace) are bit-identical across engines — a
//! property the `differential_slot_engine` test enforces over random
//! programs, and `tests/engine_reference_gate.rs` pins against both the
//! name-map walker and the bytecode dispatch engine.  All observable
//! effects go through the shared [`RunCore`]; this module owns only the
//! evaluation order.  An unbound slot is `None`, which reproduces the
//! dynamic name-lookup semantics (use-before-declaration traps, locals
//! falling back to a same-named global until their declaration executes)
//! on unchecked programs.

use crate::outcome::CrashKind;
use crate::runtime::{Flow, RunCore, Trap};
use crate::value::Value;
use cbi_minic::ast::BinOp;
use cbi_minic::slots::{Callee, SlotExpr, SlotFunction, SlotProgram, SlotRef, SlotStmt};
use cbi_minic::Builtin;

pub(crate) struct SlotExec<'a> {
    pub(crate) prog: &'a SlotProgram,
    pub(crate) core: RunCore<'a>,
    pub(crate) globals: Vec<Value>,
    /// All live frames, concatenated; each call sees the window starting
    /// at its `base`.  `None` = slot not yet bound by its declaration.
    pub(crate) stack: Vec<Option<Value>>,
}

impl<'a> SlotExec<'a> {
    fn ref_name(&self, f: &SlotFunction, r: &SlotRef) -> String {
        self.prog.ref_name(f, r).to_string()
    }

    pub(crate) fn call_function(
        &mut self,
        f: &'a SlotFunction,
        args: &[Value],
    ) -> Result<Option<Value>, Trap> {
        if self.core.depth >= self.core.max_depth {
            return Err(Trap::Crash(CrashKind::StackOverflow));
        }
        self.core.depth += 1;
        self.core.charge(self.core.costs.call)?;
        let base = self.stack.len();
        self.stack.resize(base + f.n_slots as usize, None);
        // Arity mismatches only occur in unchecked programs; binding the
        // shorter of the two lists matches the name-map engine's zip.
        for (i, &v) in args.iter().take(f.n_params as usize).enumerate() {
            self.stack[base + i] = Some(v);
        }
        let flow = self.exec_block(&f.body, f, base)?;
        self.core.depth -= 1;
        self.stack.truncate(base);
        match flow {
            Flow::Return(v) => Ok(v),
            // Falling off the end returns the zero value for the declared
            // return type (or nothing for procedures).
            _ => Ok(f.ret.map(Value::zero_of)),
        }
    }

    fn exec_block(
        &mut self,
        b: &'a [SlotStmt],
        f: &'a SlotFunction,
        base: usize,
    ) -> Result<Flow, Trap> {
        for s in b {
            match self.exec_stmt(s, f, base)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        s: &'a SlotStmt,
        f: &'a SlotFunction,
        base: usize,
    ) -> Result<Flow, Trap> {
        // Synthesized countdown bookkeeping (decrements, threshold checks,
        // imports/exports) costs a flat unit: in a native build these are
        // register operations (§2.4).  Branch bodies of synthesized
        // conditionals still charge normally — they contain real code.
        if self.core.tm.on {
            self.core.tm.steps += 1;
        }
        match s {
            SlotStmt::Decl {
                ty,
                slot,
                init,
                synthesized,
            } => {
                let v = if *synthesized {
                    self.core.charge(self.core.costs.bookkeeping)?;
                    match init {
                        Some(e) => self.eval_uncharged(e, f, base)?,
                        None => Value::zero_of(*ty),
                    }
                } else {
                    self.core.charge(self.core.costs.stmt)?;
                    match init {
                        Some(e) => self.eval(e, f, base)?,
                        None => Value::zero_of(*ty),
                    }
                };
                self.stack[base + *slot as usize] = Some(v);
                Ok(Flow::Normal)
            }
            SlotStmt::Assign {
                target,
                value,
                synthesized,
            } => {
                let v = if *synthesized {
                    self.core.charge(self.core.costs.bookkeeping)?;
                    self.eval_uncharged(value, f, base)?
                } else {
                    self.core.charge(self.core.costs.stmt)?;
                    self.eval(value, f, base)?
                };
                self.assign(target, v, f, base)?;
                Ok(Flow::Normal)
            }
            SlotStmt::If {
                cond,
                then_block,
                else_block,
                synthesized,
            } => {
                let taken = if *synthesized {
                    self.core.charge(self.core.costs.bookkeeping)?;
                    match self.eval_uncharged(cond, f, base)? {
                        Value::Int(v) => v != 0,
                        other => {
                            return Err(self
                                .core
                                .type_error(format!("synthesized condition evaluated to {other}")))
                        }
                    }
                } else {
                    self.core.charge(self.core.costs.stmt)?;
                    self.eval_bool(cond, f, base)?
                };
                if self.core.tm.on && *synthesized {
                    if let SlotExpr::Binary { op, .. } = cond {
                        self.core.tm.synthesized_if(*op, taken);
                    }
                }
                if taken {
                    self.exec_block(then_block, f, base)
                } else if let Some(e) = else_block {
                    self.exec_block(e, f, base)
                } else {
                    Ok(Flow::Normal)
                }
            }
            SlotStmt::Store {
                target,
                index,
                value,
            } => {
                self.core.charge(self.core.costs.stmt)?;
                let ptr = match self.lookup(target, f, base)? {
                    Value::Ptr(p) => p,
                    Value::Null => return Err(Trap::Crash(CrashKind::NullDeref)),
                    other => {
                        let name = self.ref_name(f, target);
                        return Err(self
                            .core
                            .type_error(format!("store through non-pointer `{name}` = {other}")));
                    }
                };
                let idx = self.eval_int(index, f, base)?;
                let v = self.eval(value, f, base)?;
                self.core.charge(self.core.costs.mem)?;
                self.core.heap.store(ptr, idx, v).map_err(Trap::Crash)?;
                Ok(Flow::Normal)
            }
            SlotStmt::While { cond, body } => {
                self.core.charge(self.core.costs.stmt)?;
                while self.eval_bool(cond, f, base)? {
                    match self.exec_block(body, f, base)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            SlotStmt::Return { value } => {
                self.core.charge(self.core.costs.stmt)?;
                let v = match value {
                    Some(e) => Some(self.eval(e, f, base)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            SlotStmt::Break => {
                self.core.charge(self.core.costs.stmt)?;
                Ok(Flow::Break)
            }
            SlotStmt::Continue => {
                self.core.charge(self.core.costs.stmt)?;
                Ok(Flow::Continue)
            }
            // Un-lowered assertion markers are inert: only the `checks`
            // scheme turns them into real observations.
            SlotStmt::Check => {
                self.core.charge(self.core.costs.stmt)?;
                Ok(Flow::Normal)
            }
            SlotStmt::Expr { expr } => {
                self.core.charge(self.core.costs.stmt)?;
                self.eval(expr, f, base)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Evaluates countdown-arithmetic expressions of synthesized
    /// statements without per-node charges (they model register ops); a
    /// flat bookkeeping charge is applied by the caller.
    ///
    /// The two shapes the sampling transformation emits on every region
    /// entry — `__cd - k` decrements and `__cd <op> k` threshold tests —
    /// skip the recursive evaluator entirely.  Inside synthesized code
    /// every per-node charge is a no-op, and `lookup` is pure, so the
    /// short-circuit is observably identical (traps, ops, values) to the
    /// generic walk it replaces; anything unexpected (a pointer operand,
    /// an unbound slot) falls back to the generic path for exact error
    /// parity.
    fn eval_uncharged(
        &mut self,
        e: &'a SlotExpr,
        f: &'a SlotFunction,
        base: usize,
    ) -> Result<Value, Trap> {
        if let SlotExpr::Binary { op, lhs, rhs } = e {
            if let (SlotExpr::Var(r), SlotExpr::Int(k)) = (&**lhs, &**rhs) {
                if let Ok(Value::Int(a)) = self.lookup(r, f, base) {
                    let k = *k;
                    match op {
                        BinOp::Sub => return Ok(Value::Int(a.wrapping_sub(k))),
                        BinOp::Add => return Ok(Value::Int(a.wrapping_add(k))),
                        BinOp::Eq => return Ok(Value::Int(i64::from(a == k))),
                        BinOp::Ne => return Ok(Value::Int(i64::from(a != k))),
                        BinOp::Lt => return Ok(Value::Int(i64::from(a < k))),
                        BinOp::Le => return Ok(Value::Int(i64::from(a <= k))),
                        BinOp::Gt => return Ok(Value::Int(i64::from(a > k))),
                        BinOp::Ge => return Ok(Value::Int(i64::from(a >= k))),
                        _ => {}
                    }
                }
            }
        }
        self.core.free_depth += 1;
        let r = self.eval(e, f, base);
        self.core.free_depth -= 1;
        r
    }

    #[inline]
    fn lookup(&self, r: &SlotRef, f: &SlotFunction, base: usize) -> Result<Value, Trap> {
        match r {
            SlotRef::Local(s) => self.stack[base + *s as usize].ok_or_else(|| {
                self.core.type_error(format!(
                    "undefined variable `{}`",
                    f.slot_names[*s as usize]
                ))
            }),
            SlotRef::Global(g) => Ok(self.globals[*g as usize]),
            SlotRef::LocalOrGlobal(s, g) => {
                Ok(self.stack[base + *s as usize].unwrap_or(self.globals[*g as usize]))
            }
            SlotRef::Undefined(name) => {
                Err(self.core.type_error(format!("undefined variable `{name}`")))
            }
        }
    }

    #[inline]
    fn assign(&mut self, r: &SlotRef, v: Value, f: &SlotFunction, base: usize) -> Result<(), Trap> {
        match r {
            SlotRef::Local(s) => {
                let slot = &mut self.stack[base + *s as usize];
                if slot.is_some() {
                    *slot = Some(v);
                    Ok(())
                } else {
                    Err(self.core.type_error(format!(
                        "assignment to undefined variable `{}`",
                        f.slot_names[*s as usize]
                    )))
                }
            }
            SlotRef::Global(g) => {
                self.globals[*g as usize] = v;
                Ok(())
            }
            SlotRef::LocalOrGlobal(s, g) => {
                let slot = &mut self.stack[base + *s as usize];
                if slot.is_some() {
                    *slot = Some(v);
                } else {
                    self.globals[*g as usize] = v;
                }
                Ok(())
            }
            SlotRef::Undefined(name) => Err(self
                .core
                .type_error(format!("assignment to undefined variable `{name}`"))),
        }
    }

    #[inline]
    fn eval_int(&mut self, e: &'a SlotExpr, f: &'a SlotFunction, base: usize) -> Result<i64, Trap> {
        match self.eval_operand(e, f, base)? {
            Value::Int(v) => Ok(v),
            other => Err(self
                .core
                .type_error(format!("expected integer, got {other}"))),
        }
    }

    fn eval_bool(
        &mut self,
        e: &'a SlotExpr,
        f: &'a SlotFunction,
        base: usize,
    ) -> Result<bool, Trap> {
        Ok(self.eval_int(e, f, base)? != 0)
    }

    /// [`Self::eval`] with the leaf cases (`Int`, `Var`) specialized and
    /// inlined: identical charge order and traps, minus a recursive call
    /// for the most common operand shapes.
    #[inline]
    fn eval_operand(
        &mut self,
        e: &'a SlotExpr,
        f: &'a SlotFunction,
        base: usize,
    ) -> Result<Value, Trap> {
        match e {
            SlotExpr::Int(value) => {
                self.core.charge(self.core.costs.expr)?;
                Ok(Value::Int(*value))
            }
            SlotExpr::Var(r) => {
                self.core.charge(self.core.costs.expr)?;
                self.lookup(r, f, base)
            }
            other => self.eval(other, f, base),
        }
    }

    fn eval(&mut self, e: &'a SlotExpr, f: &'a SlotFunction, base: usize) -> Result<Value, Trap> {
        self.core.charge(self.core.costs.expr)?;
        match e {
            SlotExpr::Int(value) => Ok(Value::Int(*value)),
            SlotExpr::Null => Ok(Value::Null),
            SlotExpr::Var(r) => self.lookup(r, f, base),
            SlotExpr::Load { ptr, index } => {
                let p = match self.eval_operand(ptr, f, base)? {
                    Value::Ptr(p) => p,
                    Value::Null => return Err(Trap::Crash(CrashKind::NullDeref)),
                    other => {
                        return Err(self
                            .core
                            .type_error(format!("indexing non-pointer value {other}")))
                    }
                };
                let idx = self.eval_int(index, f, base)?;
                self.core.charge(self.core.costs.mem)?;
                self.core.heap.load(p, idx).map_err(Trap::Crash)
            }
            SlotExpr::Call { callee, args } => match callee {
                Callee::Builtin(b) => self.eval_builtin(*b, args, f, base),
                Callee::Func(i) => {
                    let callee_fn = &self.prog.functions[*i as usize];
                    // Argument values live on the Rust stack: one heap
                    // allocation per call is most of the call overhead.
                    let ret = if args.len() <= 8 {
                        let mut vals = [Value::Int(0); 8];
                        for (slot, a) in vals.iter_mut().zip(args) {
                            *slot = self.eval_operand(a, f, base)?;
                        }
                        self.call_function(callee_fn, &vals[..args.len()])?
                    } else {
                        let mut vals = Vec::with_capacity(args.len());
                        for a in args {
                            vals.push(self.eval_operand(a, f, base)?);
                        }
                        self.call_function(callee_fn, &vals)?
                    };
                    // Procedure results are only legal in statement
                    // position; the resolver guarantees the value is never
                    // consumed.
                    Ok(ret.unwrap_or(Value::Int(0)))
                }
                Callee::Undefined(name) => Err(self
                    .core
                    .type_error(format!("call to undefined function `{name}`"))),
            },
            SlotExpr::Unary { op, expr } => {
                let v = self.eval_int(expr, f, base)?;
                Ok(Value::Int(RunCore::unary_value(*op, v)))
            }
            SlotExpr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, f, base),
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &'a SlotExpr,
        rhs: &'a SlotExpr,
        f: &'a SlotFunction,
        base: usize,
    ) -> Result<Value, Trap> {
        // Short-circuit operators evaluate the right side conditionally.
        if op == BinOp::And {
            return Ok(Value::Int(i64::from(
                self.eval_bool(lhs, f, base)? && self.eval_bool(rhs, f, base)?,
            )));
        }
        if op == BinOp::Or {
            return Ok(Value::Int(i64::from(
                self.eval_bool(lhs, f, base)? || self.eval_bool(rhs, f, base)?,
            )));
        }

        let a = self.eval_operand(lhs, f, base)?;
        let b = self.eval_operand(rhs, f, base)?;
        self.core.binary_values(op, a, b)
    }

    fn eval_builtin(
        &mut self,
        b: Builtin,
        args: &'a [SlotExpr],
        f: &'a SlotFunction,
        base: usize,
    ) -> Result<Value, Trap> {
        match b {
            Builtin::Alloc => {
                let n = self.eval_int(&args[0], f, base)?;
                self.core.alloc_value(n)
            }
            Builtin::Free => {
                let v = self.eval(&args[0], f, base)?;
                self.core.free_value(v)
            }
            Builtin::Len => {
                let v = self.eval(&args[0], f, base)?;
                self.core.len_value(v)
            }
            Builtin::Read => Ok(self.core.read_value()),
            Builtin::HasInput => Ok(self.core.has_input_value()),
            Builtin::Print => {
                let v = self.eval_int(&args[0], f, base)?;
                Ok(self.core.print_value(v))
            }
            Builtin::Exit => {
                let code = self.eval_int(&args[0], f, base)?;
                Err(Trap::Exit(code))
            }
            Builtin::ObsCheck => {
                let site = self.eval_int(&args[0], f, base)?;
                let ok = self.eval_bool(&args[1], f, base)?;
                self.core.obs_check(site, ok)
            }
            Builtin::ObsCmp => {
                // A three-way compare plus one counter bump is a handful of
                // native instructions; charge it flat (unlike `__check`,
                // which evaluates a real predicate).
                self.core.charge(self.core.costs.observe)?;
                self.core.free_depth += 1;
                let site = self.eval_int(&args[0], f, base);
                let a = self.eval(&args[1], f, base);
                let b = self.eval(&args[2], f, base);
                self.core.free_depth -= 1;
                let (site, a, b) = (site?, a?, b?);
                self.core.obs_cmp(site, a, b)
            }
            Builtin::ObsSign => {
                self.core.charge(self.core.costs.observe)?;
                self.core.free_depth += 1;
                let site = self.eval_int(&args[0], f, base);
                let v = self.eval(&args[1], f, base);
                self.core.free_depth -= 1;
                let (site, v) = (site?, v?);
                self.core.obs_sign(site, v)
            }
            Builtin::NextCountdown => self.core.next_countdown_value(),
        }
    }
}
