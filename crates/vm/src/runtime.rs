//! Engine-shared runtime state and value-level semantics.
//!
//! All three interpreter engines — the name-map reference walker
//! ([`crate::interp`]), the slot-resolved walker ([`crate::slot_interp`]),
//! and the bytecode dispatch loop ([`crate::bytecode_interp`]) — execute
//! against one [`RunCore`]: the corruptible heap, scripted input, output
//! log, counter vector, op-cost accounting, bounded observation trace,
//! and the countdown source.  Every observable effect (a charge, a trap
//! message, a counter bump, a trace entry) funnels through the methods
//! here, so the byte-identical contract between engines is enforced by
//! construction: an engine only chooses *when* to call these methods,
//! never *what* they do.
//!
//! The split of one builtin between engine and core follows its charge
//! order in the original walkers: argument evaluation stays with the
//! engine, everything from the first post-argument effect onward lives
//! here.  `__cmp`/`__obs_sign` charge *before* their arguments, so their
//! observe charge is also the engine's job (see the `obs_cmp`/`obs_sign`
//! docs).

use crate::cost::CostModel;
use crate::heap::Heap;
use crate::interp::RunResult;
use crate::outcome::{CrashKind, RunOutcome};
use crate::value::{PtrVal, Value};
use cbi_minic::ast::{BinOp, UnOp};
use cbi_sampler::CountdownSource;
use std::cmp::Ordering;
use std::collections::VecDeque;

/// How a run aborted, before mapping to a [`RunOutcome`].
pub(crate) enum Trap {
    Crash(CrashKind),
    Assertion(u32),
    Exit(i64),
    OpLimit,
}

/// Statement-level control flow for the tree-walking engines.
pub(crate) enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Value>),
}

pub(crate) fn saturating_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

/// Per-run telemetry accumulators, shared by all engines.
///
/// Values accumulate in plain locals on the execution path — when
/// telemetry is disabled the only cost is one predictable branch per
/// statement — and flush to `cbi_telemetry` once per run, so hot loops
/// never touch thread-local or atomic state.
pub(crate) struct TmCounters {
    pub(crate) on: bool,
    pub(crate) steps: u64,
    pub(crate) fast: u64,
    pub(crate) slow: u64,
    pub(crate) samples: u64,
}

impl TmCounters {
    pub(crate) fn new() -> Self {
        TmCounters {
            on: cbi_telemetry::enabled(),
            steps: 0,
            fast: 0,
            slow: 0,
            samples: 0,
        }
    }

    /// Classifies one executed synthesized conditional by its comparison
    /// operator: the transformation emits `cd > w` threshold checks whose
    /// taken arm is the instrumentation-free fast path, and `cd == 0`
    /// slow-path guards whose taken arm records a sample.
    #[inline]
    pub(crate) fn synthesized_if(&mut self, op: BinOp, taken: bool) {
        match op {
            BinOp::Gt => {
                if taken {
                    self.fast += 1;
                } else {
                    self.slow += 1;
                }
            }
            BinOp::Eq if taken => self.samples += 1,
            _ => {}
        }
    }

    pub(crate) fn flush(&self, ops: u64) {
        if !self.on {
            return;
        }
        cbi_telemetry::count("vm.runs", 1);
        cbi_telemetry::count("vm.steps", self.steps);
        cbi_telemetry::count("vm.ops", ops);
        cbi_telemetry::count("vm.region.fast_entries", self.fast);
        cbi_telemetry::count("vm.region.slow_entries", self.slow);
        cbi_telemetry::count("vm.samples_taken", self.samples);
        cbi_telemetry::record("vm.ops_per_run", ops);
        cbi_telemetry::record("vm.steps_per_run", self.steps);
    }
}

/// The engine-independent run state.
pub(crate) struct RunCore<'a> {
    /// When nonzero, per-node charges are suspended (inside synthesized
    /// countdown bookkeeping, which is charged flat instead).
    pub(crate) free_depth: u32,
    pub(crate) heap: Heap,
    pub(crate) input: &'a [i64],
    pub(crate) input_pos: usize,
    pub(crate) output: Vec<i64>,
    pub(crate) counters: Vec<u64>,
    pub(crate) counter_layout: Vec<(usize, usize)>,
    pub(crate) sampling: Option<&'a mut (dyn CountdownSource + 'static)>,
    pub(crate) ops: u64,
    pub(crate) op_limit: u64,
    pub(crate) costs: CostModel,
    pub(crate) depth: usize,
    pub(crate) max_depth: usize,
    pub(crate) trace_limit: usize,
    pub(crate) trace: VecDeque<(usize, bool)>,
    pub(crate) tm: TmCounters,
}

impl<'a> RunCore<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        heap_slack: usize,
        input: &'a [i64],
        total_counters: usize,
        counter_layout: Vec<(usize, usize)>,
        sampling: Option<&'a mut (dyn CountdownSource + 'static)>,
        op_limit: u64,
        costs: CostModel,
        max_depth: usize,
        trace_limit: usize,
    ) -> Self {
        RunCore {
            free_depth: 0,
            heap: Heap::with_slack(heap_slack),
            input,
            input_pos: 0,
            output: Vec::new(),
            counters: vec![0; total_counters],
            counter_layout,
            sampling,
            ops: 0,
            op_limit,
            costs,
            depth: 0,
            max_depth,
            trace_limit,
            trace: VecDeque::new(),
            tm: TmCounters::new(),
        }
    }

    #[inline]
    pub(crate) fn charge(&mut self, units: u64) -> Result<(), Trap> {
        if self.free_depth > 0 {
            return Ok(());
        }
        self.charge_always(units)
    }

    #[inline]
    pub(crate) fn charge_always(&mut self, units: u64) -> Result<(), Trap> {
        self.ops += units;
        if self.ops > self.op_limit {
            Err(Trap::OpLimit)
        } else {
            Ok(())
        }
    }

    pub(crate) fn type_error(&self, msg: impl Into<String>) -> Trap {
        Trap::Crash(CrashKind::TypeError(msg.into().into_boxed_str()))
    }

    pub(crate) fn record_trace(&mut self, site: i64, which: usize, truth: bool) {
        if self.trace_limit == 0 {
            return;
        }
        if self.trace.len() == self.trace_limit {
            self.trace.pop_front();
        }
        let base = self
            .counter_layout
            .get(site as usize)
            .map(|&(b, _)| b)
            .unwrap_or(0);
        self.trace.push_back((base + which, truth));
    }

    pub(crate) fn counter_slot(&mut self, site: i64, which: usize) -> Result<(), Trap> {
        let (base, arity) = *self
            .counter_layout
            .get(site as usize)
            .ok_or_else(|| self.type_error(format!("unknown site id {site}")))?;
        if which >= arity {
            return Err(self.type_error(format!(
                "site {site} counter {which} out of range (arity {arity})"
            )));
        }
        self.counters[base + which] += 1;
        Ok(())
    }

    /// Integer-integer fast path of [`RunCore::binary_values`], used by
    /// the bytecode engine's fused instructions.  Bit-identical to the
    /// general path on every integer pair: the same wrapping arithmetic,
    /// the same divide-by-zero trap, and comparisons via the same total
    /// order.  Returns `None` for the short-circuit operators, which
    /// never reach fused instructions; callers fall back to
    /// [`RunCore::binary_values`].
    #[inline(always)]
    pub(crate) fn int_binary(op: BinOp, x: i64, y: i64) -> Option<Result<i64, Trap>> {
        Some(match op {
            BinOp::Add => Ok(x.wrapping_add(y)),
            BinOp::Sub => Ok(x.wrapping_sub(y)),
            BinOp::Mul => Ok(x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    Err(Trap::Crash(CrashKind::DivideByZero))
                } else {
                    Ok(x.wrapping_div(y))
                }
            }
            BinOp::Mod => {
                if y == 0 {
                    Err(Trap::Crash(CrashKind::DivideByZero))
                } else {
                    Ok(x.wrapping_rem(y))
                }
            }
            BinOp::Eq => Ok(i64::from(x == y)),
            BinOp::Ne => Ok(i64::from(x != y)),
            BinOp::Lt => Ok(i64::from(x < y)),
            BinOp::Le => Ok(i64::from(x <= y)),
            BinOp::Gt => Ok(i64::from(x > y)),
            BinOp::Ge => Ok(i64::from(x >= y)),
            BinOp::And | BinOp::Or => return None,
        })
    }

    /// [`RunCore::binary_values`] with the integer-integer case inlined —
    /// the dispatch engine's hot path.  Identical results and traps.
    #[inline(always)]
    pub(crate) fn binary_fast(&self, op: BinOp, a: Value, b: Value) -> Result<Value, Trap> {
        if let (Value::Int(x), Value::Int(y)) = (a, b) {
            if let Some(r) = Self::int_binary(op, x, y) {
                return r.map(Value::Int);
            }
        }
        self.binary_values(op, a, b)
    }

    /// Applies a unary operator to an already-checked integer operand.
    #[inline]
    pub(crate) fn unary_value(op: UnOp, v: i64) -> i64 {
        match op {
            UnOp::Neg => v.wrapping_neg(),
            UnOp::Not => i64::from(v == 0),
        }
    }

    /// Applies a non-short-circuit binary operator to evaluated operands.
    ///
    /// `&&`/`||` never reach here: their conditional right-hand evaluation
    /// is engine-specific.
    pub(crate) fn binary_values(&self, op: BinOp, a: Value, b: Value) -> Result<Value, Trap> {
        if op.is_comparison() {
            let ord = a
                .compare(b)
                .ok_or_else(|| self.type_error(format!("comparing {a} with {b}")))?;
            let truth = match op {
                BinOp::Eq => ord == Ordering::Equal,
                BinOp::Ne => ord != Ordering::Equal,
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            };
            return Ok(Value::Int(i64::from(truth)));
        }

        match (op, a, b) {
            (BinOp::Add, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_add(y))),
            (BinOp::Sub, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_sub(y))),
            (BinOp::Mul, Value::Int(x), Value::Int(y)) => Ok(Value::Int(x.wrapping_mul(y))),
            (BinOp::Div, Value::Int(x), Value::Int(y)) => {
                if y == 0 {
                    Err(Trap::Crash(CrashKind::DivideByZero))
                } else {
                    Ok(Value::Int(x.wrapping_div(y)))
                }
            }
            (BinOp::Mod, Value::Int(x), Value::Int(y)) => {
                if y == 0 {
                    Err(Trap::Crash(CrashKind::DivideByZero))
                } else {
                    Ok(Value::Int(x.wrapping_rem(y)))
                }
            }
            (BinOp::Add, Value::Ptr(p), Value::Int(d)) => Ok(Value::Ptr(PtrVal {
                block: p.block,
                offset: p.offset + d,
            })),
            (BinOp::Sub, Value::Ptr(p), Value::Int(d)) => Ok(Value::Ptr(PtrVal {
                block: p.block,
                offset: p.offset - d,
            })),
            (BinOp::Sub, Value::Ptr(p), Value::Ptr(q)) if p.block == q.block => {
                Ok(Value::Int(p.offset - q.offset))
            }
            (op, a, b) => Err(self.type_error(format!("invalid operands {a} {op} {b}"))),
        }
    }

    /// `alloc(n)` after the length argument is evaluated.
    pub(crate) fn alloc_value(&mut self, n: i64) -> Result<Value, Trap> {
        self.charge(self.costs.mem)?;
        self.heap.alloc(n).map_err(Trap::Crash)
    }

    /// `free(v)` after the argument is evaluated.
    pub(crate) fn free_value(&mut self, v: Value) -> Result<Value, Trap> {
        match v {
            // free(null) is a no-op, as in C.
            Value::Null => Ok(Value::Int(0)),
            Value::Ptr(p) => {
                self.charge(self.costs.mem)?;
                self.heap.free(p).map_err(Trap::Crash)?;
                Ok(Value::Int(0))
            }
            other => Err(self.type_error(format!("free of non-pointer {other}"))),
        }
    }

    /// `len(v)` after the argument is evaluated.
    pub(crate) fn len_value(&mut self, v: Value) -> Result<Value, Trap> {
        match v {
            Value::Null => Err(Trap::Crash(CrashKind::NullDeref)),
            Value::Ptr(p) => Ok(Value::Int(self.heap.len(p).map_err(Trap::Crash)?)),
            other => Err(self.type_error(format!("len of non-pointer {other}"))),
        }
    }

    /// `read()`: the next scripted input value, or 0 at EOF.
    pub(crate) fn read_value(&mut self) -> Value {
        let v = self.input.get(self.input_pos).copied().unwrap_or(0);
        if self.input_pos < self.input.len() {
            self.input_pos += 1;
        }
        Value::Int(v)
    }

    /// `has_input()`.
    pub(crate) fn has_input_value(&self) -> Value {
        Value::Int(i64::from(self.input_pos < self.input.len()))
    }

    /// `print(v)` after the argument is evaluated and integer-checked.
    pub(crate) fn print_value(&mut self, v: i64) -> Value {
        self.output.push(v);
        Value::Int(0)
    }

    /// `__check(site, ok)` after both arguments are evaluated: the observe
    /// charge, counter bump, trace entry, and assertion trap.
    pub(crate) fn obs_check(&mut self, site: i64, ok: bool) -> Result<Value, Trap> {
        self.charge(self.costs.observe)?;
        self.counter_slot(site, usize::from(ok))?;
        self.record_trace(site, usize::from(ok), !ok);
        if ok {
            Ok(Value::Int(0))
        } else {
            Err(Trap::Assertion(site as u32))
        }
    }

    /// `__cmp(site, a, b)` after the observe charge and argument
    /// evaluation (the charge precedes the arguments for this builtin —
    /// the engine is responsible for it).
    pub(crate) fn obs_cmp(&mut self, site: i64, a: Value, b: Value) -> Result<Value, Trap> {
        let ord = a
            .compare(b)
            .ok_or_else(|| self.type_error(format!("__cmp of {a} and {b}")))?;
        let which = match ord {
            Ordering::Less => 0,
            Ordering::Equal => 1,
            Ordering::Greater => 2,
        };
        self.counter_slot(site, which)?;
        self.record_trace(site, which, true);
        Ok(Value::Int(0))
    }

    /// `__obs_sign(site, v)` after the observe charge and argument
    /// evaluation (the charge precedes the arguments — engine's job).
    pub(crate) fn obs_sign(&mut self, site: i64, v: Value) -> Result<Value, Trap> {
        let class = v.sign_class();
        self.counter_slot(site, class)?;
        self.record_trace(site, class, true);
        Ok(Value::Int(0))
    }

    /// `__next_cd()`: the refill charge (never suspended) and the next
    /// countdown from the configured source.
    pub(crate) fn next_countdown_value(&mut self) -> Result<Value, Trap> {
        self.charge_always(self.costs.refill)?;
        match self.sampling.as_deref_mut() {
            Some(src) => Ok(Value::Int(saturating_i64(src.next_countdown()))),
            None => {
                Err(self
                    .type_error("program called __next_cd() but no countdown source is configured"))
            }
        }
    }

    /// Maps the result of running `main` to a [`RunOutcome`].
    pub(crate) fn outcome_of(call: Result<Option<Value>, Trap>) -> RunOutcome {
        match call {
            Ok(v) => RunOutcome::Success(match v {
                Some(Value::Int(code)) => code,
                _ => 0,
            }),
            Err(Trap::Crash(kind)) => RunOutcome::Crash(kind),
            Err(Trap::Assertion(site)) => RunOutcome::AssertionFailure(site),
            Err(Trap::Exit(code)) => RunOutcome::Success(code),
            Err(Trap::OpLimit) => RunOutcome::OpLimit,
        }
    }

    /// Flushes telemetry and packages the final [`RunResult`].
    pub(crate) fn finish(self, outcome: RunOutcome) -> RunResult {
        self.tm.flush(self.ops);
        RunResult {
            outcome,
            ops: self.ops,
            counters: self.counters,
            output: self.output,
            trace: self.trace.into_iter().collect(),
        }
    }
}
