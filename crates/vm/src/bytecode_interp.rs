//! The bytecode dispatch engine: a flat `loop { match op }` over
//! [`cbi_bytecode::BcProgram`] instructions.
//!
//! All observable semantics — charges, traps, counters, traces — delegate
//! to the shared [`RunCore`], like the tree walkers; this module owns only
//! instruction sequencing.  Two non-obvious parity points:
//!
//! * **Deferred observation errors.**  `__cmp`/`__obs_sign` evaluate every
//!   argument and report the *first* error afterwards.  The compiler
//!   brackets each argument with `DeferPush`/`DeferNext`; a trap while a
//!   defer is armed records the error, truncates the operand stack and
//!   frame stack to the defer's snapshot, pushes a placeholder value, and
//!   resumes at the next argument.  Crucially, `core.depth` and the
//!   locals arena are *not* rolled back: the walkers' `?`-propagation
//!   skips the `depth -= 1` / `stack.truncate` in `call_function`, so a
//!   captured error from inside a callee leaks both — and a later
//!   stack-overflow check must see the same leaked depth.
//! * **Fused countdown ops** (`CdDecl`/`CdCopy`/`CdUpdate`/`CdRefill`/
//!   `CdBranch`) reproduce the walkers' synthesized-statement path:
//!   telemetry step bump, flat bookkeeping charge, the
//!   `eval_uncharged` integer shortcut, and the generic
//!   [`RunCore::binary_values`] fallback for non-integer operands.

use crate::interp::{RunResult, VmError};
use crate::outcome::CrashKind;
use crate::runtime::{saturating_i64, RunCore, Trap};
use crate::value::Value;
use cbi_bytecode::{BcProgram, BcRef, CdSpec, Costs, Dest, Op, Operand};
use cbi_minic::ast::{BinOp, Type};

/// The compile-time cost mirror of a [`crate::cost::CostModel`].
fn mirror(costs: crate::cost::CostModel) -> Costs {
    Costs {
        stmt: costs.stmt,
        expr: costs.expr,
        call: costs.call,
        mem: costs.mem,
        observe: costs.observe,
        refill: costs.refill,
        bookkeeping: costs.bookkeeping,
    }
}

/// Decodes the `SynthCheck` operator payload (discriminant + 1).
const BINOPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Mod,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::And,
    BinOp::Or,
];

/// A live call frame.
struct Frame {
    /// Resume point in the caller.
    ret_pc: usize,
    /// This frame's window start in the locals arena.
    base: usize,
    /// Index into `prog.functions`, for slot names in trap messages.
    fn_idx: usize,
    /// Where the return value goes in the caller ([`Dest::Push`] for a
    /// plain call; a store destination for [`Op::CallBind`]).
    dst: Dest,
}

/// Snapshot for deferred-error capture inside `__cmp`/`__obs_sign`
/// argument lists.
struct Defer {
    /// Resume point: the next argument boundary.
    target: usize,
    operand_len: usize,
    frame_len: usize,
    free_depth: u32,
    /// The first captured error, reported by the `*Fin` op.
    err: Option<Trap>,
}

pub(crate) fn run(prog: &BcProgram, mut core: RunCore<'_>) -> Result<RunResult, VmError> {
    if prog.costs != mirror(core.costs) {
        return Err(VmError::new(
            "bytecode program was compiled with a different cost model (recompile with the VM's costs)",
        ));
    }
    let main_idx = prog
        .main
        .ok_or_else(|| VmError::new("program has no `main` function"))? as usize;
    let main = &prog.functions[main_idx];
    if main.n_params != 0 {
        return Err(VmError::new("`main` must take no parameters"));
    }

    let mut globals: Vec<Value> = prog
        .globals
        .iter()
        .map(|g| match g.ty {
            Type::Int => Value::Int(g.init),
            Type::Ptr => Value::Null,
        })
        .collect();

    // Seed the global countdown before the first instruction (§2.1).
    if let Some(g) = prog.gcd_global {
        let seed = match core.sampling.as_deref_mut() {
            Some(src) => saturating_i64(src.next_countdown()),
            None => {
                return Err(VmError::new(
                    "sampled program requires a countdown source (with_sampling)",
                ))
            }
        };
        globals[g as usize] = Value::Int(seed);
    }

    // The `main` call prologue, matching `call_function` effect for
    // effect: depth check, depth bump, call charge, frame slots.
    let call = 'prologue: {
        if core.depth >= core.max_depth {
            break 'prologue Err(Trap::Crash(CrashKind::StackOverflow));
        }
        core.depth += 1;
        if let Err(t) = core.charge(core.costs.call) {
            break 'prologue Err(t);
        }
        Ok(())
    };
    if let Err(t) = call {
        let outcome = RunCore::outcome_of(Err(t));
        return Ok(core.finish(outcome));
    }

    let mut locals: Vec<Option<Value>> = vec![None; main.n_slots as usize];
    let mut stack: Vec<Value> = Vec::with_capacity(32);
    let mut frames: Vec<Frame> = vec![Frame {
        ret_pc: usize::MAX,
        base: 0,
        fn_idx: main_idx,
        dst: Dest::Push,
    }];
    let mut defers: Vec<Defer> = Vec::new();
    let mut pc = main.entry as usize;
    let mut base = 0usize;
    let mut cur_fn = main_idx;
    let ops = &prog.ops[..];

    /// Pops the current frame and delivers `v` to the caller through the
    /// frame's recorded destination (every return path shares this, so
    /// `Op::CallBind` destinations are honored uniformly).
    macro_rules! do_ret {
        ($op:lifetime, $run:lifetime, $v:expr) => {{
            let v = $v;
            let fr = frames.pop().expect("ret with no live frame");
            core.depth -= 1;
            locals.truncate(fr.base);
            match frames.last() {
                Some(caller) => {
                    base = caller.base;
                    cur_fn = caller.fn_idx;
                    pc = fr.ret_pc;
                    match fr.dst {
                        Dest::Push => stack.push(v),
                        Dest::Bind(s) => locals[base + s as usize] = Some(v),
                        Dest::Local(s) => {
                            let slot = &mut locals[base + s as usize];
                            if slot.is_none() {
                                break $op core.type_error(format!(
                                    "assignment to undefined variable `{}`",
                                    prog.functions[cur_fn].slot_names[s as usize]
                                ));
                            }
                            *slot = Some(v);
                        }
                        Dest::Global(g) => globals[g as usize] = v,
                        Dest::LocalOr(s, g) => {
                            let slot = &mut locals[base + s as usize];
                            if slot.is_some() {
                                *slot = Some(v);
                            } else {
                                globals[g as usize] = v;
                            }
                        }
                        Dest::Ret => unreachable!("call destinations never return"),
                    }
                    continue $run;
                }
                None => break $run Ok(Some(v)),
            }
        }};
    }

    /// Delivers a fused instruction's result to its destination, with the
    /// store ops' exact trap messages; `Dest::Ret` returns the value.
    macro_rules! apply_dst {
        ($op:lifetime, $run:lifetime, $d:expr, $v:expr) => {{
            let v = $v;
            match $d {
                Dest::Push => stack.push(v),
                Dest::Bind(s) => locals[base + s as usize] = Some(v),
                Dest::Local(s) => {
                    let slot = &mut locals[base + s as usize];
                    if slot.is_none() {
                        break $op core.type_error(format!(
                            "assignment to undefined variable `{}`",
                            prog.functions[cur_fn].slot_names[s as usize]
                        ));
                    }
                    *slot = Some(v);
                }
                Dest::Global(g) => globals[g as usize] = v,
                Dest::LocalOr(s, g) => {
                    let slot = &mut locals[base + s as usize];
                    if slot.is_some() {
                        *slot = Some(v);
                    } else {
                        globals[g as usize] = v;
                    }
                }
                Dest::Ret => do_ret!($op, $run, v),
            }
        }};
    }

    /// Executes a fused region-boundary countdown prefix: the telemetry
    /// bump, bookkeeping charge, lookup, and bind (`$decl`) or assign of
    /// the synthesized statement the compiler absorbed.
    macro_rules! cd_pre {
        ($op:lifetime, $p:expr, $decl:expr) => {{
            if core.tm.on {
                core.tm.steps += 1;
            }
            if let Err(t) = core.charge(core.costs.bookkeeping) {
                break $op t;
            }
            let cs = prog.specs[$p as usize];
            let v = match cd_lookup(cs.src, &locals, base, &globals, prog, cur_fn, &core) {
                Ok(v) => v,
                Err(t) => break $op t,
            };
            if $decl {
                let BcRef::Local(slot) = cs.dst else {
                    unreachable!("synthesized decl always targets a local slot");
                };
                locals[base + slot as usize] = Some(v);
            } else if let Err(t) =
                cd_assign(cs.dst, v, &mut locals, base, &mut globals, prog, cur_fn, &core)
            {
                break $op t;
            }
        }};
    }

    let result: Result<Option<Value>, Trap> = 'run: loop {
        let op = ops[pc];
        pc += 1;
        // Success arms `continue 'run`; trap arms `break 'op` into the
        // shared recovery path below.
        let trap: Trap = 'op: {
            match op {
                Op::Stmt(n) => {
                    if core.tm.on {
                        core.tm.steps += 1;
                    }
                    match core.charge(n as u64) {
                        Ok(()) => continue 'run,
                        Err(t) => break 'op t,
                    }
                }
                Op::Charge(n) => match core.charge(n as u64) {
                    Ok(()) => continue 'run,
                    Err(t) => break 'op t,
                },
                Op::PushInt(v) => {
                    stack.push(Value::Int(v));
                    continue 'run;
                }
                Op::PushNull => {
                    stack.push(Value::Null);
                    continue 'run;
                }
                Op::Pop => {
                    stack.pop();
                    continue 'run;
                }
                Op::LoadLocal(s) => match locals[base + s as usize] {
                    Some(v) => {
                        stack.push(v);
                        continue 'run;
                    }
                    None => {
                        break 'op core.type_error(format!(
                            "undefined variable `{}`",
                            prog.functions[cur_fn].slot_names[s as usize]
                        ))
                    }
                },
                Op::LoadGlobal(g) => {
                    stack.push(globals[g as usize]);
                    continue 'run;
                }
                Op::LoadLocalOr(s, g) => {
                    stack.push(locals[base + s as usize].unwrap_or(globals[g as usize]));
                    continue 'run;
                }
                Op::LoadUndef(n) => {
                    break 'op core
                        .type_error(format!("undefined variable `{}`", prog.names[n as usize]))
                }
                Op::BindLocal(s) => {
                    let v = stack.pop().expect("bind with empty operand stack");
                    locals[base + s as usize] = Some(v);
                    continue 'run;
                }
                Op::AssignLocal(s) => {
                    let v = stack.pop().expect("store with empty operand stack");
                    let slot = &mut locals[base + s as usize];
                    if slot.is_some() {
                        *slot = Some(v);
                        continue 'run;
                    }
                    break 'op core.type_error(format!(
                        "assignment to undefined variable `{}`",
                        prog.functions[cur_fn].slot_names[s as usize]
                    ));
                }
                Op::AssignGlobal(g) => {
                    let v = stack.pop().expect("store with empty operand stack");
                    globals[g as usize] = v;
                    continue 'run;
                }
                Op::AssignLocalOr(s, g) => {
                    let v = stack.pop().expect("store with empty operand stack");
                    let slot = &mut locals[base + s as usize];
                    if slot.is_some() {
                        *slot = Some(v);
                    } else {
                        globals[g as usize] = v;
                    }
                    continue 'run;
                }
                Op::AssignUndef(n) => {
                    stack.pop();
                    break 'op core.type_error(format!(
                        "assignment to undefined variable `{}`",
                        prog.names[n as usize]
                    ));
                }
                Op::Jump(t) => {
                    pc = t as usize;
                    continue 'run;
                }
                Op::BranchFalse(t) => match stack.pop().expect("branch with empty operand stack") {
                    Value::Int(v) => {
                        if v == 0 {
                            pc = t as usize;
                        }
                        continue 'run;
                    }
                    other => break 'op core.type_error(format!("expected integer, got {other}")),
                },
                Op::BranchTrue(t) => match stack.pop().expect("branch with empty operand stack") {
                    Value::Int(v) => {
                        if v != 0 {
                            pc = t as usize;
                        }
                        continue 'run;
                    }
                    other => break 'op core.type_error(format!("expected integer, got {other}")),
                },
                Op::ToBool => match stack.pop().expect("to_bool with empty operand stack") {
                    Value::Int(v) => {
                        stack.push(Value::Int(i64::from(v != 0)));
                        continue 'run;
                    }
                    other => break 'op core.type_error(format!("expected integer, got {other}")),
                },
                Op::ExpectInt => match stack.last().expect("check with empty operand stack") {
                    Value::Int(_) => continue 'run,
                    other => break 'op core.type_error(format!("expected integer, got {other}")),
                },
                Op::LoadPtrCheck => match stack.last().expect("check with empty operand stack") {
                    Value::Ptr(_) => continue 'run,
                    Value::Null => break 'op Trap::Crash(CrashKind::NullDeref),
                    other => {
                        break 'op core.type_error(format!("indexing non-pointer value {other}"))
                    }
                },
                Op::StorePtrCheck(n) => {
                    match stack.last().expect("check with empty operand stack") {
                        Value::Ptr(_) => continue 'run,
                        Value::Null => break 'op Trap::Crash(CrashKind::NullDeref),
                        other => {
                            break 'op core.type_error(format!(
                                "store through non-pointer `{}` = {other}",
                                prog.names[n as usize]
                            ))
                        }
                    }
                }
                Op::HeapLoad => {
                    if let Err(t) = core.charge(core.costs.mem) {
                        break 'op t;
                    }
                    let (Some(Value::Int(idx)), Some(Value::Ptr(p))) = (stack.pop(), stack.pop())
                    else {
                        unreachable!("heap_load operands type-checked by preceding ops");
                    };
                    match core.heap.load(p, idx) {
                        Ok(v) => {
                            stack.push(v);
                            continue 'run;
                        }
                        Err(k) => break 'op Trap::Crash(k),
                    }
                }
                Op::HeapStore => {
                    let v = stack.pop().expect("heap_store with empty operand stack");
                    let (Some(Value::Int(idx)), Some(Value::Ptr(p))) = (stack.pop(), stack.pop())
                    else {
                        unreachable!("heap_store operands type-checked by preceding ops");
                    };
                    if let Err(t) = core.charge(core.costs.mem) {
                        break 'op t;
                    }
                    match core.heap.store(p, idx, v) {
                        Ok(()) => continue 'run,
                        Err(k) => break 'op Trap::Crash(k),
                    }
                }
                Op::Unary(op) => {
                    let Some(Value::Int(v)) = stack.pop() else {
                        unreachable!("unary operand type-checked by preceding op");
                    };
                    stack.push(Value::Int(RunCore::unary_value(op, v)));
                    continue 'run;
                }
                Op::Binary(op) => {
                    let b = stack.pop().expect("binary with empty operand stack");
                    let a = stack.pop().expect("binary with empty operand stack");
                    match core.binary_fast(op, a, b) {
                        Ok(v) => {
                            stack.push(v);
                            continue 'run;
                        }
                        Err(t) => break 'op t,
                    }
                }
                Op::Call { func, argc } => {
                    let f = &prog.functions[func as usize];
                    if core.depth >= core.max_depth {
                        break 'op Trap::Crash(CrashKind::StackOverflow);
                    }
                    core.depth += 1;
                    if let Err(t) = core.charge(core.costs.call) {
                        break 'op t;
                    }
                    let nbase = locals.len();
                    locals.resize(nbase + f.n_slots as usize, None);
                    let argc = argc as usize;
                    let args_at = stack.len() - argc;
                    // Arity mismatches only occur in unchecked programs;
                    // binding the shorter list matches the walkers.
                    for i in 0..argc.min(f.n_params as usize) {
                        locals[nbase + i] = Some(stack[args_at + i]);
                    }
                    stack.truncate(args_at);
                    frames.push(Frame {
                        ret_pc: pc,
                        base: nbase,
                        fn_idx: func as usize,
                        dst: Dest::Push,
                    });
                    base = nbase;
                    cur_fn = func as usize;
                    pc = f.entry as usize;
                    continue 'run;
                }
                Op::CallUndef(n) => {
                    break 'op core.type_error(format!(
                        "call to undefined function `{}`",
                        prog.names[n as usize]
                    ))
                }
                Op::Ret | Op::RetZero | Op::RetNull => {
                    let v = match op {
                        Op::Ret => stack.pop().expect("ret with empty operand stack"),
                        Op::RetZero => Value::Int(0),
                        _ => Value::Null,
                    };
                    do_ret!('op, 'run, v)
                }
                Op::Alloc => {
                    let Some(Value::Int(n)) = stack.pop() else {
                        unreachable!("alloc operand type-checked by preceding op");
                    };
                    match core.alloc_value(n) {
                        Ok(v) => {
                            stack.push(v);
                            continue 'run;
                        }
                        Err(t) => break 'op t,
                    }
                }
                Op::Free => {
                    let v = stack.pop().expect("free with empty operand stack");
                    match core.free_value(v) {
                        Ok(v) => {
                            stack.push(v);
                            continue 'run;
                        }
                        Err(t) => break 'op t,
                    }
                }
                Op::Len => {
                    let v = stack.pop().expect("len with empty operand stack");
                    match core.len_value(v) {
                        Ok(v) => {
                            stack.push(v);
                            continue 'run;
                        }
                        Err(t) => break 'op t,
                    }
                }
                Op::Read => {
                    let v = core.read_value();
                    stack.push(v);
                    continue 'run;
                }
                Op::HasInput => {
                    let v = core.has_input_value();
                    stack.push(v);
                    continue 'run;
                }
                Op::Print => {
                    let Some(Value::Int(v)) = stack.pop() else {
                        unreachable!("print operand type-checked by preceding op");
                    };
                    let r = core.print_value(v);
                    stack.push(r);
                    continue 'run;
                }
                Op::Exit => {
                    let Some(Value::Int(code)) = stack.pop() else {
                        unreachable!("exit operand type-checked by preceding op");
                    };
                    break 'op Trap::Exit(code);
                }
                Op::ObsCheck => {
                    let (Some(Value::Int(ok)), Some(Value::Int(site))) = (stack.pop(), stack.pop())
                    else {
                        unreachable!("__check operands type-checked by preceding ops");
                    };
                    match core.obs_check(site, ok != 0) {
                        Ok(v) => {
                            stack.push(v);
                            continue 'run;
                        }
                        Err(t) => break 'op t,
                    }
                }
                Op::ObsCmpFin => {
                    let d = defers.pop().expect("__cmp finish without armed defer");
                    if let Some(err) = d.err {
                        break 'op err;
                    }
                    let b = stack.pop().expect("__cmp with empty operand stack");
                    let a = stack.pop().expect("__cmp with empty operand stack");
                    let Some(Value::Int(site)) = stack.pop() else {
                        unreachable!("__cmp site type-checked by preceding op");
                    };
                    match core.obs_cmp(site, a, b) {
                        Ok(v) => {
                            stack.push(v);
                            continue 'run;
                        }
                        Err(t) => break 'op t,
                    }
                }
                Op::ObsSignFin => {
                    let d = defers.pop().expect("__obs_sign finish without armed defer");
                    if let Some(err) = d.err {
                        break 'op err;
                    }
                    let v = stack.pop().expect("__obs_sign with empty operand stack");
                    let Some(Value::Int(site)) = stack.pop() else {
                        unreachable!("__obs_sign site type-checked by preceding op");
                    };
                    match core.obs_sign(site, v) {
                        Ok(v) => {
                            stack.push(v);
                            continue 'run;
                        }
                        Err(t) => break 'op t,
                    }
                }
                Op::NextCd => match core.next_countdown_value() {
                    Ok(v) => {
                        stack.push(v);
                        continue 'run;
                    }
                    Err(t) => break 'op t,
                },
                Op::FreeEnter => {
                    core.free_depth += 1;
                    continue 'run;
                }
                Op::FreeExit => {
                    core.free_depth -= 1;
                    continue 'run;
                }
                Op::DeferPush(t) => {
                    defers.push(Defer {
                        target: t as usize,
                        operand_len: stack.len(),
                        frame_len: frames.len(),
                        free_depth: core.free_depth,
                        err: None,
                    });
                    continue 'run;
                }
                Op::DeferNext(t) => {
                    let d = defers
                        .last_mut()
                        .expect("defer advance without armed defer");
                    d.target = t as usize;
                    d.operand_len = stack.len();
                    continue 'run;
                }
                Op::CdDecl(s) => {
                    if core.tm.on {
                        core.tm.steps += 1;
                    }
                    if let Err(t) = core.charge(core.costs.bookkeeping) {
                        break 'op t;
                    }
                    let spec = prog.specs[s as usize];
                    let v = match cd_lookup(spec.src, &locals, base, &globals, prog, cur_fn, &core)
                    {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    let BcRef::Local(slot) = spec.dst else {
                        unreachable!("synthesized decl always targets a local slot");
                    };
                    locals[base + slot as usize] = Some(v);
                    continue 'run;
                }
                Op::CdCopy(s) | Op::CdUpdate(s) => {
                    if core.tm.on {
                        core.tm.steps += 1;
                    }
                    if let Err(t) = core.charge(core.costs.bookkeeping) {
                        break 'op t;
                    }
                    let spec = prog.specs[s as usize];
                    let v = match cd_lookup(spec.src, &locals, base, &globals, prog, cur_fn, &core)
                    {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    let v = if matches!(op, Op::CdCopy(_)) {
                        v
                    } else {
                        match cd_arith(&core, spec, v) {
                            Ok(v) => v,
                            Err(t) => break 'op t,
                        }
                    };
                    match cd_assign(
                        spec.dst,
                        v,
                        &mut locals,
                        base,
                        &mut globals,
                        prog,
                        cur_fn,
                        &core,
                    ) {
                        Ok(()) => continue 'run,
                        Err(t) => break 'op t,
                    }
                }
                Op::CdRefill(s) => {
                    if core.tm.on {
                        core.tm.steps += 1;
                    }
                    if let Err(t) = core.charge(core.costs.bookkeeping) {
                        break 'op t;
                    }
                    let v = match core.next_countdown_value() {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    let spec = prog.specs[s as usize];
                    match cd_assign(
                        spec.dst,
                        v,
                        &mut locals,
                        base,
                        &mut globals,
                        prog,
                        cur_fn,
                        &core,
                    ) {
                        Ok(()) => continue 'run,
                        Err(t) => break 'op t,
                    }
                }
                Op::CdBranch { spec, els } => {
                    if core.tm.on {
                        core.tm.steps += 1;
                    }
                    if let Err(t) = core.charge(core.costs.bookkeeping) {
                        break 'op t;
                    }
                    let spec = prog.specs[spec as usize];
                    let v = match cd_lookup(spec.src, &locals, base, &globals, prog, cur_fn, &core)
                    {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    let taken = match v {
                        Value::Int(a) => {
                            let k = spec.k;
                            match spec.op {
                                BinOp::Eq => a == k,
                                BinOp::Ne => a != k,
                                BinOp::Lt => a < k,
                                BinOp::Le => a <= k,
                                BinOp::Gt => a > k,
                                BinOp::Ge => a >= k,
                                _ => unreachable!("cd_branch fuses only comparisons"),
                            }
                        }
                        other => match core.binary_values(spec.op, other, Value::Int(spec.k)) {
                            Ok(Value::Int(x)) => x != 0,
                            Ok(_) => unreachable!("comparisons yield integers"),
                            Err(t) => break 'op t,
                        },
                    };
                    if core.tm.on {
                        core.tm.synthesized_if(spec.op, taken);
                    }
                    if !taken {
                        pc = els as usize;
                    }
                    continue 'run;
                }
                Op::SynthCheck { op, els } => {
                    let taken = match stack.pop().expect("synth_check with empty operand stack") {
                        Value::Int(v) => v != 0,
                        other => {
                            break 'op core
                                .type_error(format!("synthesized condition evaluated to {other}"))
                        }
                    };
                    if core.tm.on && op != 0 {
                        core.tm.synthesized_if(BINOPS[(op - 1) as usize], taken);
                    }
                    if !taken {
                        pc = els as usize;
                    }
                    continue 'run;
                }
                Op::MissingArg => {
                    panic!("builtin called with too few arguments");
                }
                Op::FusedBin(s) => {
                    let sp = &prog.bins[s as usize];
                    if let Some(p) = sp.pre {
                        cd_pre!('op, p, sp.pre_decl);
                    }
                    if sp.stmt {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(sp.chg_a as u64) {
                            break 'op t;
                        }
                    } else if sp.chg_a > 0 {
                        if let Err(t) = core.charge(sp.chg_a as u64) {
                            break 'op t;
                        }
                    }
                    // Both-stack operands pop in reverse push order; the
                    // general path fetches left, charges, fetches right —
                    // the unfused execution order.
                    let (a, b) = if sp.a == Operand::Stack && sp.b == Operand::Stack {
                        let b = stack.pop().expect("fused binary with empty operand stack");
                        let a = stack.pop().expect("fused binary with empty operand stack");
                        (a, b)
                    } else {
                        let a = match fetch(
                            sp.a, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                        ) {
                            Ok(v) => v,
                            Err(t) => break 'op t,
                        };
                        if sp.chg_b > 0 {
                            if let Err(t) = core.charge(sp.chg_b as u64) {
                                break 'op t;
                            }
                        }
                        let b = match fetch(
                            sp.b, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                        ) {
                            Ok(v) => v,
                            Err(t) => break 'op t,
                        };
                        (a, b)
                    };
                    let v = match core.binary_fast(sp.op, a, b) {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    apply_dst!('op, 'run, sp.dst, v);
                    continue 'run;
                }
                Op::FusedBr { spec, target } => {
                    let sp = &prog.brs[spec as usize];
                    if sp.stmt {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(sp.chg_a as u64) {
                            break 'op t;
                        }
                    } else if sp.chg_a > 0 {
                        if let Err(t) = core.charge(sp.chg_a as u64) {
                            break 'op t;
                        }
                    }
                    let taken = match sp.cmp {
                        None => {
                            match fetch(
                                sp.a, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                            ) {
                                Ok(Value::Int(v)) => v != 0,
                                Ok(other) => {
                                    break 'op core
                                        .type_error(format!("expected integer, got {other}"))
                                }
                                Err(t) => break 'op t,
                            }
                        }
                        Some(op) => {
                            let (a, b) = if sp.a == Operand::Stack && sp.b == Operand::Stack {
                                let b = stack.pop().expect("fused branch with empty operand stack");
                                let a = stack.pop().expect("fused branch with empty operand stack");
                                (a, b)
                            } else {
                                let a = match fetch(
                                    sp.a, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                                ) {
                                    Ok(v) => v,
                                    Err(t) => break 'op t,
                                };
                                if sp.chg_b > 0 {
                                    if let Err(t) = core.charge(sp.chg_b as u64) {
                                        break 'op t;
                                    }
                                }
                                let b = match fetch(
                                    sp.b, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                                ) {
                                    Ok(v) => v,
                                    Err(t) => break 'op t,
                                };
                                (a, b)
                            };
                            match core.binary_fast(op, a, b) {
                                Ok(Value::Int(v)) => v != 0,
                                // The absorbed branch op popped this and
                                // traps on non-integers.
                                Ok(other) => {
                                    break 'op core
                                        .type_error(format!("expected integer, got {other}"))
                                }
                                Err(t) => break 'op t,
                            }
                        }
                    };
                    if taken == sp.jump_if {
                        pc = target as usize;
                    }
                    continue 'run;
                }
                Op::FusedIdx(s) => {
                    let sp = &prog.idxs[s as usize];
                    if sp.stmt {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(sp.c_ptr as u64) {
                            break 'op t;
                        }
                    } else if sp.c_ptr > 0 {
                        if let Err(t) = core.charge(sp.c_ptr as u64) {
                            break 'op t;
                        }
                    }
                    // A stacked pointer is peeked (the unfused check op
                    // leaves it in place); a fetched one is pushed after
                    // the check.
                    let p = if sp.ptr == Operand::Stack {
                        *stack.last().expect("fused index with empty operand stack")
                    } else {
                        match fetch(
                            sp.ptr, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                        ) {
                            Ok(v) => v,
                            Err(t) => break 'op t,
                        }
                    };
                    match p {
                        Value::Ptr(_) => {}
                        Value::Null => break 'op Trap::Crash(CrashKind::NullDeref),
                        other => {
                            break 'op match sp.store_name {
                                None => {
                                    core.type_error(format!("indexing non-pointer value {other}"))
                                }
                                Some(n) => core.type_error(format!(
                                    "store through non-pointer `{}` = {other}",
                                    prog.names[n as usize]
                                )),
                            }
                        }
                    }
                    if sp.ptr != Operand::Stack {
                        stack.push(p);
                    }
                    if sp.c_idx > 0 {
                        if let Err(t) = core.charge(sp.c_idx as u64) {
                            break 'op t;
                        }
                    }
                    let idx = match fetch(
                        sp.idx, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                    ) {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    if !matches!(idx, Value::Int(_)) {
                        break 'op core.type_error(format!("expected integer, got {idx}"));
                    }
                    stack.push(idx);
                    continue 'run;
                }
                Op::FusedRet(s) => {
                    let sp = &prog.rets[s as usize];
                    if let Some(p) = sp.pre {
                        cd_pre!('op, p, false);
                    }
                    if sp.stmt {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(sp.chg as u64) {
                            break 'op t;
                        }
                    } else if sp.chg > 0 {
                        if let Err(t) = core.charge(sp.chg as u64) {
                            break 'op t;
                        }
                    }
                    let v = match fetch(
                        sp.a, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                    ) {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    do_ret!('op, 'run, v)
                }
                Op::FusedLoad(s) => {
                    let sp = &prog.lds[s as usize];
                    let ix = sp.idx;
                    if ix.stmt {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(ix.c_ptr as u64) {
                            break 'op t;
                        }
                    } else if ix.c_ptr > 0 {
                        if let Err(t) = core.charge(ix.c_ptr as u64) {
                            break 'op t;
                        }
                    }
                    // The checked pointer and index stay in registers —
                    // the fused heap access pops them right back.
                    let p = if ix.ptr == Operand::Stack {
                        stack.pop().expect("fused load with empty operand stack")
                    } else {
                        match fetch(
                            ix.ptr, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                        ) {
                            Ok(v) => v,
                            Err(t) => break 'op t,
                        }
                    };
                    let h = match p {
                        Value::Ptr(h) => h,
                        Value::Null => break 'op Trap::Crash(CrashKind::NullDeref),
                        other => {
                            break 'op core
                                .type_error(format!("indexing non-pointer value {other}"))
                        }
                    };
                    if ix.c_idx > 0 {
                        if let Err(t) = core.charge(ix.c_idx as u64) {
                            break 'op t;
                        }
                    }
                    let i = match fetch(
                        ix.idx, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                    ) {
                        Ok(Value::Int(i)) => i,
                        Ok(other) => {
                            break 'op core.type_error(format!("expected integer, got {other}"))
                        }
                        Err(t) => break 'op t,
                    };
                    if let Err(t) = core.charge(core.costs.mem) {
                        break 'op t;
                    }
                    let v = match core.heap.load(h, i) {
                        Ok(v) => v,
                        Err(k) => break 'op Trap::Crash(k),
                    };
                    apply_dst!('op, 'run, sp.dst, v);
                    continue 'run;
                }
                Op::FusedStore(s) => {
                    let sp = &prog.sts[s as usize];
                    let ix = sp.idx;
                    if ix.stmt {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(ix.c_ptr as u64) {
                            break 'op t;
                        }
                    } else if ix.c_ptr > 0 {
                        if let Err(t) = core.charge(ix.c_ptr as u64) {
                            break 'op t;
                        }
                    }
                    let p = match fetch(
                        ix.ptr, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                    ) {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    let h = match p {
                        Value::Ptr(h) => h,
                        Value::Null => break 'op Trap::Crash(CrashKind::NullDeref),
                        other => {
                            let n = ix.store_name.expect("store-flavor fused spec");
                            break 'op core.type_error(format!(
                                "store through non-pointer `{}` = {other}",
                                prog.names[n as usize]
                            ));
                        }
                    };
                    if ix.c_idx > 0 {
                        if let Err(t) = core.charge(ix.c_idx as u64) {
                            break 'op t;
                        }
                    }
                    let i = match fetch(
                        ix.idx, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                    ) {
                        Ok(Value::Int(i)) => i,
                        Ok(other) => {
                            break 'op core.type_error(format!("expected integer, got {other}"))
                        }
                        Err(t) => break 'op t,
                    };
                    if sp.c_val > 0 {
                        if let Err(t) = core.charge(sp.c_val as u64) {
                            break 'op t;
                        }
                    }
                    let v = match fetch(
                        sp.val, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                    ) {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    if let Err(t) = core.charge(core.costs.mem) {
                        break 'op t;
                    }
                    match core.heap.store(h, i, v) {
                        Ok(()) => continue 'run,
                        Err(k) => break 'op Trap::Crash(k),
                    }
                }
                Op::FusedMov(s) => {
                    let sp = &prog.mvs[s as usize];
                    if let Some(p) = sp.pre {
                        cd_pre!('op, p, sp.pre_decl);
                    }
                    if sp.stmt {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(sp.chg as u64) {
                            break 'op t;
                        }
                    } else if sp.chg > 0 {
                        if let Err(t) = core.charge(sp.chg as u64) {
                            break 'op t;
                        }
                    }
                    let v = match fetch(
                        sp.a, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                    ) {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    apply_dst!('op, 'run, sp.dst, v);
                    continue 'run;
                }
                Op::FusedBinJ { spec, target } => {
                    let sp = &prog.bins[spec as usize];
                    if let Some(p) = sp.pre {
                        cd_pre!('op, p, sp.pre_decl);
                    }
                    if sp.stmt {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(sp.chg_a as u64) {
                            break 'op t;
                        }
                    } else if sp.chg_a > 0 {
                        if let Err(t) = core.charge(sp.chg_a as u64) {
                            break 'op t;
                        }
                    }
                    let (a, b) = if sp.a == Operand::Stack && sp.b == Operand::Stack {
                        let b = stack.pop().expect("fused binary with empty operand stack");
                        let a = stack.pop().expect("fused binary with empty operand stack");
                        (a, b)
                    } else {
                        let a = match fetch(
                            sp.a, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                        ) {
                            Ok(v) => v,
                            Err(t) => break 'op t,
                        };
                        if sp.chg_b > 0 {
                            if let Err(t) = core.charge(sp.chg_b as u64) {
                                break 'op t;
                            }
                        }
                        let b = match fetch(
                            sp.b, &mut stack, &locals, base, &globals, prog, cur_fn, &core,
                        ) {
                            Ok(v) => v,
                            Err(t) => break 'op t,
                        };
                        (a, b)
                    };
                    let v = match core.binary_fast(sp.op, a, b) {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    apply_dst!('op, 'run, sp.dst, v);
                    pc = target as usize;
                    continue 'run;
                }
                Op::CdGate { spec, els } => {
                    let g = &prog.gates[spec as usize];
                    if let Some(p) = g.pre {
                        cd_pre!('op, p, g.pre_decl);
                    }
                    if core.tm.on {
                        core.tm.steps += 1;
                    }
                    if let Err(t) = core.charge(core.costs.bookkeeping) {
                        break 'op t;
                    }
                    let bs = prog.specs[g.br as usize];
                    let v = match cd_lookup(bs.src, &locals, base, &globals, prog, cur_fn, &core) {
                        Ok(v) => v,
                        Err(t) => break 'op t,
                    };
                    let taken = match v {
                        Value::Int(a) => {
                            let k = bs.k;
                            match bs.op {
                                BinOp::Eq => a == k,
                                BinOp::Ne => a != k,
                                BinOp::Lt => a < k,
                                BinOp::Le => a <= k,
                                BinOp::Gt => a > k,
                                BinOp::Ge => a >= k,
                                _ => unreachable!("cd_branch fuses only comparisons"),
                            }
                        }
                        other => match core.binary_values(bs.op, other, Value::Int(bs.k)) {
                            Ok(Value::Int(x)) => x != 0,
                            Ok(_) => unreachable!("comparisons yield integers"),
                            Err(t) => break 'op t,
                        },
                    };
                    if core.tm.on {
                        core.tm.synthesized_if(bs.op, taken);
                    }
                    if !taken {
                        pc = els as usize;
                        continue 'run;
                    }
                    // The decrement sits on the fall-through (taken) edge
                    // only; the `els` jump skips it, like the unfused pair.
                    if let Some(d) = g.dec {
                        if core.tm.on {
                            core.tm.steps += 1;
                        }
                        if let Err(t) = core.charge(core.costs.bookkeeping) {
                            break 'op t;
                        }
                        let ds = prog.specs[d as usize];
                        let v =
                            match cd_lookup(ds.src, &locals, base, &globals, prog, cur_fn, &core) {
                                Ok(v) => v,
                                Err(t) => break 'op t,
                            };
                        let v = match cd_arith(&core, ds, v) {
                            Ok(v) => v,
                            Err(t) => break 'op t,
                        };
                        if let Err(t) = cd_assign(
                            ds.dst,
                            v,
                            &mut locals,
                            base,
                            &mut globals,
                            prog,
                            cur_fn,
                            &core,
                        ) {
                            break 'op t;
                        }
                    }
                    continue 'run;
                }
                Op::CallBind(s) => {
                    let cs = &prog.calls[s as usize];
                    let f = &prog.functions[cs.func as usize];
                    if core.depth >= core.max_depth {
                        break 'op Trap::Crash(CrashKind::StackOverflow);
                    }
                    core.depth += 1;
                    if let Err(t) = core.charge(core.costs.call) {
                        break 'op t;
                    }
                    let nbase = locals.len();
                    locals.resize(nbase + f.n_slots as usize, None);
                    let argc = cs.argc as usize;
                    let args_at = stack.len() - argc;
                    for i in 0..argc.min(f.n_params as usize) {
                        locals[nbase + i] = Some(stack[args_at + i]);
                    }
                    stack.truncate(args_at);
                    frames.push(Frame {
                        ret_pc: pc,
                        base: nbase,
                        fn_idx: cs.func as usize,
                        dst: cs.dst,
                    });
                    base = nbase;
                    cur_fn = cs.func as usize;
                    pc = f.entry as usize;
                    continue 'run;
                }
            }
        };

        // Recovery: an armed defer captures the first error, rewinds the
        // operand and frame stacks to its snapshot (the locals arena and
        // `core.depth` deliberately leak — see the module docs), stands in
        // a placeholder argument value, and resumes at the next argument.
        match defers.last_mut() {
            Some(d) => {
                if d.err.is_none() {
                    d.err = Some(trap);
                }
                stack.truncate(d.operand_len);
                frames.truncate(d.frame_len);
                core.free_depth = d.free_depth;
                let fr = frames.last().expect("defer snapshot frame is live");
                base = fr.base;
                cur_fn = fr.fn_idx;
                stack.push(Value::Int(0));
                pc = d.target;
            }
            None => break 'run Err(trap),
        }
    };

    let outcome = RunCore::outcome_of(result);
    Ok(core.finish(outcome))
}

/// Fetches one fused-instruction operand, with the load ops' exact trap
/// messages.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn fetch(
    o: Operand,
    stack: &mut Vec<Value>,
    locals: &[Option<Value>],
    base: usize,
    globals: &[Value],
    prog: &BcProgram,
    cur_fn: usize,
    core: &RunCore<'_>,
) -> Result<Value, Trap> {
    match o {
        Operand::Const(v) => Ok(Value::Int(v)),
        Operand::Null => Ok(Value::Null),
        Operand::Local(s) => locals[base + s as usize].ok_or_else(|| {
            core.type_error(format!(
                "undefined variable `{}`",
                prog.functions[cur_fn].slot_names[s as usize]
            ))
        }),
        Operand::Global(g) => Ok(globals[g as usize]),
        Operand::LocalOr(s, g) => Ok(locals[base + s as usize].unwrap_or(globals[g as usize])),
        Operand::Stack => Ok(stack.pop().expect("fused operand with empty stack")),
    }
}

/// The walkers' uncharged countdown-variable lookup, with their exact trap
/// messages.
#[inline]
fn cd_lookup(
    r: BcRef,
    locals: &[Option<Value>],
    base: usize,
    globals: &[Value],
    prog: &BcProgram,
    cur_fn: usize,
    core: &RunCore<'_>,
) -> Result<Value, Trap> {
    match r {
        BcRef::Local(s) => locals[base + s as usize].ok_or_else(|| {
            core.type_error(format!(
                "undefined variable `{}`",
                prog.functions[cur_fn].slot_names[s as usize]
            ))
        }),
        BcRef::Global(g) => Ok(globals[g as usize]),
        BcRef::LocalOrGlobal(s, g) => Ok(locals[base + s as usize].unwrap_or(globals[g as usize])),
        BcRef::Undefined(n) => {
            Err(core.type_error(format!("undefined variable `{}`", prog.names[n as usize])))
        }
    }
}

/// The walkers' countdown assignment, with their exact trap messages.
#[inline]
#[allow(clippy::too_many_arguments)]
fn cd_assign(
    r: BcRef,
    v: Value,
    locals: &mut [Option<Value>],
    base: usize,
    globals: &mut [Value],
    prog: &BcProgram,
    cur_fn: usize,
    core: &RunCore<'_>,
) -> Result<(), Trap> {
    match r {
        BcRef::Local(s) => {
            let slot = &mut locals[base + s as usize];
            if slot.is_some() {
                *slot = Some(v);
                Ok(())
            } else {
                Err(core.type_error(format!(
                    "assignment to undefined variable `{}`",
                    prog.functions[cur_fn].slot_names[s as usize]
                )))
            }
        }
        BcRef::Global(g) => {
            globals[g as usize] = v;
            Ok(())
        }
        BcRef::LocalOrGlobal(s, g) => {
            let slot = &mut locals[base + s as usize];
            if slot.is_some() {
                *slot = Some(v);
            } else {
                globals[g as usize] = v;
            }
            Ok(())
        }
        BcRef::Undefined(n) => Err(core.type_error(format!(
            "assignment to undefined variable `{}`",
            prog.names[n as usize]
        ))),
    }
}

/// `cd <op> k` with the walkers' `eval_uncharged` integer shortcut and
/// their generic fallback for everything else.
#[inline]
fn cd_arith(core: &RunCore<'_>, spec: CdSpec, v: Value) -> Result<Value, Trap> {
    if let Value::Int(a) = v {
        let k = spec.k;
        match spec.op {
            BinOp::Sub => return Ok(Value::Int(a.wrapping_sub(k))),
            BinOp::Add => return Ok(Value::Int(a.wrapping_add(k))),
            BinOp::Eq => return Ok(Value::Int(i64::from(a == k))),
            BinOp::Ne => return Ok(Value::Int(i64::from(a != k))),
            BinOp::Lt => return Ok(Value::Int(i64::from(a < k))),
            BinOp::Le => return Ok(Value::Int(i64::from(a <= k))),
            BinOp::Gt => return Ok(Value::Int(i64::from(a > k))),
            BinOp::Ge => return Ok(Value::Int(i64::from(a >= k))),
            _ => {}
        }
    }
    core.binary_values(spec.op, v, Value::Int(spec.k))
}
