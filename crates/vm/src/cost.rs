//! The deterministic operation-cost model.
//!
//! The paper measures wall-clock slowdowns on a Pentium 4; our substrate is
//! an interpreter, so "time" is a deterministic count of abstract operation
//! units.  Ratios of these counts between baseline, unconditional, and
//! sampled builds of the same program reproduce the *shape* of the overhead
//! tables (Table 2, Figure 4): they respond to exactly the code the
//! transformation adds or removes.

/// Cost, in abstract units, of each kind of runtime event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Executing one statement (dispatch overhead).
    pub stmt: u64,
    /// Evaluating one expression node.
    pub expr: u64,
    /// Calling a user function (frame setup/teardown).
    pub call: u64,
    /// A heap load or store (beyond the expression cost).
    pub mem: u64,
    /// Executing an observation builtin (counter bump), beyond evaluating
    /// its arguments.
    pub observe: u64,
    /// Refilling the next-sample countdown (`__next_cd`).
    pub refill: u64,
    /// Flat cost of one synthesized countdown-bookkeeping statement (a
    /// threshold check, countdown decrement, or import/export).  The
    /// native compiler keeps the local countdown in a register (§2.4), so
    /// these cost far less than interpreted statements; the flat charge
    /// covers the statement and its trivial operand arithmetic.
    pub bookkeeping: u64,
}

impl CostModel {
    /// The default model used throughout the experiments.
    pub fn new() -> Self {
        CostModel {
            stmt: 1,
            expr: 1,
            call: 12,
            mem: 6,
            observe: 2,
            refill: 6,
            bookkeeping: 1,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_new() {
        assert_eq!(CostModel::default(), CostModel::new());
    }

    #[test]
    fn costs_are_positive() {
        let c = CostModel::new();
        for v in [
            c.stmt,
            c.expr,
            c.call,
            c.mem,
            c.observe,
            c.refill,
            c.bookkeeping,
        ] {
            assert!(v > 0);
        }
    }
}
