//! Proptest strategies that generate random, *well-formed, crash-free,
//! terminating* MiniC programs, for differential testing:
//!
//! * `parse(pretty(p))` must be structurally identical to `p`;
//! * the VM must produce identical output for a program and its
//!   pretty-printed/re-parsed form;
//! * instrumented and sampling-transformed builds must produce the same
//!   output as the baseline.
//!
//! Generated programs use a fixed set of int variables (`v0..v3`), a
//! fixed pointer variable `buf` over an 8-cell block with all indices
//! reduced modulo 8, division only by nonzero constants, and loops in the
//! shape `i = 0; while (i < K) { …; i = i + 1; }` with `K <= 8` — so every
//! generated program terminates successfully by construction.

#![forbid(unsafe_code)]

use cbi_minic::ast::*;
use cbi_minic::Span;
use proptest::prelude::*;

const INT_VARS: [&str; 4] = ["v0", "v1", "v2", "v3"];
const BUF_LEN: i64 = 8;

fn sp() -> Span {
    Span::new(1, 1)
}

/// A strategy for arithmetic expressions over the fixed int variables.
///
/// Division and modulus only ever use nonzero constant divisors, so
/// generated expressions cannot trap.
pub fn arb_int_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(|v| Expr::Int { value: v, span: sp() }),
        (0usize..INT_VARS.len()).prop_map(|i| Expr::Var {
            name: INT_VARS[i].to_string(),
            span: sp(),
        }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_arith_op()).prop_map(|(l, r, op)| {
                Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                    span: sp(),
                }
            }),
            (inner.clone(), 1i64..9).prop_map(|(l, d)| Expr::Binary {
                op: BinOp::Div,
                lhs: Box::new(l),
                rhs: Box::new(Expr::Int { value: d, span: sp() }),
                span: sp(),
            }),
            (inner.clone(), 1i64..9).prop_map(|(l, d)| Expr::Binary {
                op: BinOp::Mod,
                lhs: Box::new(l),
                rhs: Box::new(Expr::Int { value: d, span: sp() }),
                span: sp(),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(e),
                span: sp(),
            }),
            // A bounded heap read: buf[(e % 8 + 8) % 8].
            inner.prop_map(|e| Expr::Load {
                ptr: Box::new(Expr::var("buf")),
                index: Box::new(bounded_index(e)),
                span: sp(),
            }),
        ]
    })
}

fn arb_arith_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
    ]
}

fn arb_cmp_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// `(e % 8 + 8) % 8` — always a valid index into the 8-cell buffer.
fn bounded_index(e: Expr) -> Expr {
    let m = Expr::binary(BinOp::Mod, e, Expr::int(BUF_LEN));
    let plus = Expr::binary(BinOp::Add, m, Expr::int(BUF_LEN));
    Expr::binary(BinOp::Mod, plus, Expr::int(BUF_LEN))
}

/// A strategy for boolean conditions (comparisons and their combinations).
pub fn arb_cond() -> impl Strategy<Value = Expr> {
    let cmp = (arb_int_expr(), arb_int_expr(), arb_cmp_op()).prop_map(|(l, r, op)| {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
            span: sp(),
        }
    });
    cmp.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(l),
                rhs: Box::new(r),
                span: sp(),
            }),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(l),
                rhs: Box::new(r),
                span: sp(),
            }),
            inner.prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
                span: sp(),
            }),
        ]
    })
}

/// A strategy for statements (assignments, stores, checks, prints, ifs,
/// bounded loops).
pub fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        ((0usize..INT_VARS.len()), arb_int_expr()).prop_map(|(i, e)| Stmt::Assign {
            name: INT_VARS[i].to_string(),
            value: e,
            span: sp(),
        }),
        (arb_int_expr(), arb_int_expr()).prop_map(|(idx, val)| Stmt::Store {
            target: "buf".to_string(),
            index: bounded_index(idx),
            value: val,
            span: sp(),
        }),
        arb_int_expr().prop_map(|e| Stmt::Expr {
            expr: Expr::call("print", vec![e]),
            span: sp(),
        }),
        // check(cond || 1) — a user assertion that can never fail, so
        // instrumented builds stay crash-free.
        arb_cond().prop_map(|c| Stmt::Check {
            cond: Expr::binary(BinOp::Or, c, Expr::int(1)),
            span: sp(),
        }),
    ];
    simple.prop_recursive(2, 16, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 1..4).prop_map(Block::new);
        prop_oneof![
            (arb_cond(), block.clone(), prop::option::of(block.clone())).prop_map(
                |(c, t, e)| Stmt::If {
                    cond: c,
                    then_block: t,
                    else_block: e,
                    span: sp(),
                }
            ),
            // Bounded loop over a dedicated counter variable name chosen
            // outside the assignable int vars, so the body cannot clobber
            // the counter and loops always terminate.
            (1i64..6, block).prop_map(|(k, body)| bounded_loop(k, body)),
        ]
    })
}

/// Counter for bounded loops.  Generated loop bodies never assign to it
/// (it is not in `INT_VARS`), so termination is structural.
static LOOP_COUNTERS: [&str; 3] = ["lc0", "lc1", "lc2"];

fn bounded_loop(k: i64, body: Block) -> Stmt {
    // Nested loops reuse distinct counters by depth; proptest recursion
    // depth is <= 2, so three counters suffice.  Reassignment of the same
    // counter at the same depth is harmless: the loop resets it to zero.
    let depth = loop_depth(&body).min(LOOP_COUNTERS.len() - 1);
    let counter = LOOP_COUNTERS[depth];
    let mut stmts = vec![Stmt::Assign {
        name: counter.to_string(),
        value: Expr::int(0),
        span: sp(),
    }];
    let mut inner = body.stmts;
    inner.push(Stmt::Assign {
        name: counter.to_string(),
        value: Expr::binary(BinOp::Add, Expr::var(counter), Expr::int(1)),
        span: sp(),
    });
    stmts.push(Stmt::While {
        cond: Expr::binary(BinOp::Lt, Expr::var(counter), Expr::int(k)),
        body: Block::new(inner),
        span: sp(),
    });
    Stmt::If {
        cond: Expr::int(1),
        then_block: Block::new(stmts),
        else_block: None,
        span: sp(),
    }
}

fn loop_depth(b: &Block) -> usize {
    b.stmts
        .iter()
        .map(|s| match s {
            Stmt::While { body, .. } => 1 + loop_depth(body),
            Stmt::If {
                then_block,
                else_block,
                ..
            } => loop_depth(then_block).max(else_block.as_ref().map_or(0, loop_depth)),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// A strategy for whole programs: `main` declares the fixed variables, an
/// 8-cell buffer, runs 2–8 generated statements, prints a digest of all
/// state, and exits 0.
pub fn arb_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(arb_stmt(), 2..8).prop_map(|stmts| {
        let mut body = Vec::new();
        for c in LOOP_COUNTERS {
            body.push(Stmt::Decl {
                ty: Type::Int,
                name: c.to_string(),
                init: None,
                span: sp(),
            });
        }
        for (i, v) in INT_VARS.iter().enumerate() {
            body.push(Stmt::Decl {
                ty: Type::Int,
                name: (*v).to_string(),
                init: Some(Expr::int(i as i64 + 1)),
                span: sp(),
            });
        }
        body.push(Stmt::Decl {
            ty: Type::Ptr,
            name: "buf".to_string(),
            init: Some(Expr::call("alloc", vec![Expr::int(BUF_LEN)])),
            span: sp(),
        });
        body.extend(stmts);
        // Digest: print all variables and the buffer contents.
        for v in INT_VARS {
            body.push(Stmt::Expr {
                expr: Expr::call("print", vec![Expr::var(v)]),
                span: sp(),
            });
        }
        let mut digest_loop = bounded_loop(
            BUF_LEN,
            Block::new(vec![Stmt::Expr {
                expr: Expr::call(
                    "print",
                    vec![Expr::Load {
                        ptr: Box::new(Expr::var("buf")),
                        index: Box::new(Expr::var(LOOP_COUNTERS[0])),
                        span: sp(),
                    }],
                ),
                span: sp(),
            }]),
        );
        // The digest loop iterates exactly BUF_LEN times over valid
        // indices by construction.
        if let Stmt::If { then_block, .. } = &mut digest_loop {
            let _ = then_block;
        }
        body.push(digest_loop);
        body.push(Stmt::Expr {
            expr: Expr::call("free", vec![Expr::var("buf")]),
            span: sp(),
        });
        body.push(Stmt::Return {
            value: Some(Expr::int(0)),
            span: sp(),
        });
        Program {
            globals: vec![],
            functions: vec![Function {
                name: "main".to_string(),
                params: vec![],
                ret: Some(Type::Int),
                body: Block::new(body),
                span: sp(),
            }],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::{parse, pretty, resolve};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_programs_resolve(p in arb_program()) {
            resolve(&p).expect("generated program must resolve");
        }

        #[test]
        fn generated_programs_round_trip(p in arb_program()) {
            // One parse normalizes generator-built ASTs (the parser folds
            // `-literal` into negative literals); from then on
            // pretty∘parse must be a fixed point.
            let p1 = parse(&pretty(&p)).expect("pretty output must parse");
            let s1 = pretty(&p1);
            let p2 = parse(&s1).expect("normalized output must parse");
            prop_assert_eq!(s1, pretty(&p2));
        }
    }
}
