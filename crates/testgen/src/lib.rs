//! Seeded random generators of *well-formed, crash-free, terminating*
//! MiniC programs, for differential testing:
//!
//! * `parse(pretty(p))` must be structurally identical to `p`;
//! * the VM must produce identical output for a program and its
//!   pretty-printed/re-parsed form;
//! * instrumented and sampling-transformed builds must produce the same
//!   output as the baseline;
//! * name-map and slot-resolved interpretation must agree exactly.
//!
//! Generation is driven by the repository's own [`Pcg32`] PRNG, so every
//! test case is reproducible from a seed with no external dependencies.
//! Generated programs use a fixed set of int variables (`v0..v3`), a
//! fixed pointer variable `buf` over an 8-cell block with all indices
//! reduced modulo 8, division only by nonzero constants, and loops in the
//! shape `i = 0; while (i < K) { …; i = i + 1; }` with `K <= 8` — so every
//! generated program terminates successfully by construction.

#![forbid(unsafe_code)]

use cbi_minic::ast::*;
use cbi_minic::Span;
use cbi_sampler::Pcg32;

const INT_VARS: [&str; 4] = ["v0", "v1", "v2", "v3"];
const BUF_LEN: i64 = 8;

/// Maximum recursion depth for arithmetic expressions.
const EXPR_DEPTH: usize = 3;
/// Maximum recursion depth for boolean conditions.
const COND_DEPTH: usize = 2;
/// Maximum recursion depth for compound statements.
const STMT_DEPTH: usize = 2;

fn sp() -> Span {
    Span::new(1, 1)
}

fn pick(rng: &mut Pcg32, n: usize) -> usize {
    rng.below(n as u64) as usize
}

/// Integer uniform in `lo..hi` (half-open, like the proptest ranges the
/// generator grew out of).
fn int_in(rng: &mut Pcg32, lo: i64, hi: i64) -> i64 {
    lo + rng.below((hi - lo) as u64) as i64
}

/// Generates an arithmetic expression over the fixed int variables.
///
/// Division and modulus only ever use nonzero constant divisors, so
/// generated expressions cannot trap.
pub fn gen_int_expr(rng: &mut Pcg32) -> Expr {
    gen_int_expr_at(rng, EXPR_DEPTH)
}

fn gen_leaf(rng: &mut Pcg32) -> Expr {
    if rng.below(2) == 0 {
        Expr::Int {
            value: int_in(rng, -50, 50),
            span: sp(),
        }
    } else {
        Expr::Var {
            name: INT_VARS[pick(rng, INT_VARS.len())].to_string(),
            span: sp(),
        }
    }
}

fn gen_int_expr_at(rng: &mut Pcg32, depth: usize) -> Expr {
    // Bias toward leaves as in the proptest recursive strategy: half of
    // all draws stop early even when depth remains.
    if depth == 0 || rng.below(2) == 0 {
        return gen_leaf(rng);
    }
    match rng.below(5) {
        0 => {
            let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][pick(rng, 3)];
            Expr::Binary {
                op,
                lhs: Box::new(gen_int_expr_at(rng, depth - 1)),
                rhs: Box::new(gen_int_expr_at(rng, depth - 1)),
                span: sp(),
            }
        }
        1 => Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(gen_int_expr_at(rng, depth - 1)),
            rhs: Box::new(Expr::Int {
                value: int_in(rng, 1, 9),
                span: sp(),
            }),
            span: sp(),
        },
        2 => Expr::Binary {
            op: BinOp::Mod,
            lhs: Box::new(gen_int_expr_at(rng, depth - 1)),
            rhs: Box::new(Expr::Int {
                value: int_in(rng, 1, 9),
                span: sp(),
            }),
            span: sp(),
        },
        3 => Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(gen_int_expr_at(rng, depth - 1)),
            span: sp(),
        },
        // A bounded heap read: buf[(e % 8 + 8) % 8].
        _ => Expr::Load {
            ptr: Box::new(Expr::var("buf")),
            index: Box::new(bounded_index(gen_int_expr_at(rng, depth - 1))),
            span: sp(),
        },
    }
}

fn gen_cmp_op(rng: &mut Pcg32) -> BinOp {
    [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ][pick(rng, 6)]
}

/// `(e % 8 + 8) % 8` — always a valid index into the 8-cell buffer.
fn bounded_index(e: Expr) -> Expr {
    let m = Expr::binary(BinOp::Mod, e, Expr::int(BUF_LEN));
    let plus = Expr::binary(BinOp::Add, m, Expr::int(BUF_LEN));
    Expr::binary(BinOp::Mod, plus, Expr::int(BUF_LEN))
}

/// Generates a boolean condition (comparisons and their combinations).
pub fn gen_cond(rng: &mut Pcg32) -> Expr {
    gen_cond_at(rng, COND_DEPTH)
}

fn gen_cond_at(rng: &mut Pcg32, depth: usize) -> Expr {
    if depth == 0 || rng.below(2) == 0 {
        return Expr::Binary {
            op: gen_cmp_op(rng),
            lhs: Box::new(gen_int_expr(rng)),
            rhs: Box::new(gen_int_expr(rng)),
            span: sp(),
        };
    }
    match rng.below(3) {
        0 => Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(gen_cond_at(rng, depth - 1)),
            rhs: Box::new(gen_cond_at(rng, depth - 1)),
            span: sp(),
        },
        1 => Expr::Binary {
            op: BinOp::Or,
            lhs: Box::new(gen_cond_at(rng, depth - 1)),
            rhs: Box::new(gen_cond_at(rng, depth - 1)),
            span: sp(),
        },
        _ => Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(gen_cond_at(rng, depth - 1)),
            span: sp(),
        },
    }
}

/// Generates a statement (assignment, store, check, print, if, bounded
/// loop).
pub fn gen_stmt(rng: &mut Pcg32) -> Stmt {
    gen_stmt_at(rng, STMT_DEPTH)
}

fn gen_simple_stmt(rng: &mut Pcg32) -> Stmt {
    match rng.below(4) {
        0 => Stmt::Assign {
            name: INT_VARS[pick(rng, INT_VARS.len())].to_string(),
            value: gen_int_expr(rng),
            span: sp(),
        },
        1 => Stmt::Store {
            target: "buf".to_string(),
            index: bounded_index(gen_int_expr(rng)),
            value: gen_int_expr(rng),
            span: sp(),
        },
        2 => Stmt::Expr {
            expr: Expr::call("print", vec![gen_int_expr(rng)]),
            span: sp(),
        },
        // check(cond || 1) — a user assertion that can never fail, so
        // instrumented builds stay crash-free.
        _ => Stmt::Check {
            cond: Expr::binary(BinOp::Or, gen_cond(rng), Expr::int(1)),
            span: sp(),
        },
    }
}

fn gen_block(rng: &mut Pcg32, depth: usize) -> Block {
    let n = 1 + pick(rng, 3);
    Block::new((0..n).map(|_| gen_stmt_at(rng, depth)).collect())
}

fn gen_stmt_at(rng: &mut Pcg32, depth: usize) -> Stmt {
    if depth == 0 || rng.below(2) == 0 {
        return gen_simple_stmt(rng);
    }
    if rng.below(2) == 0 {
        let cond = gen_cond(rng);
        let then_block = gen_block(rng, depth - 1);
        let else_block = if rng.below(2) == 0 {
            Some(gen_block(rng, depth - 1))
        } else {
            None
        };
        Stmt::If {
            cond,
            then_block,
            else_block,
            span: sp(),
        }
    } else {
        let k = int_in(rng, 1, 6);
        let body = gen_block(rng, depth - 1);
        bounded_loop(k, body)
    }
}

/// Counter for bounded loops.  Generated loop bodies never assign to it
/// (it is not in `INT_VARS`), so termination is structural.
static LOOP_COUNTERS: [&str; 3] = ["lc0", "lc1", "lc2"];

fn bounded_loop(k: i64, body: Block) -> Stmt {
    // Nested loops reuse distinct counters by depth; generation recursion
    // depth is <= 2, so three counters suffice.  Reassignment of the same
    // counter at the same depth is harmless: the loop resets it to zero.
    let depth = loop_depth(&body).min(LOOP_COUNTERS.len() - 1);
    let counter = LOOP_COUNTERS[depth];
    let mut stmts = vec![Stmt::Assign {
        name: counter.to_string(),
        value: Expr::int(0),
        span: sp(),
    }];
    let mut inner = body.stmts;
    inner.push(Stmt::Assign {
        name: counter.to_string(),
        value: Expr::binary(BinOp::Add, Expr::var(counter), Expr::int(1)),
        span: sp(),
    });
    stmts.push(Stmt::While {
        cond: Expr::binary(BinOp::Lt, Expr::var(counter), Expr::int(k)),
        body: Block::new(inner),
        span: sp(),
    });
    Stmt::If {
        cond: Expr::int(1),
        then_block: Block::new(stmts),
        else_block: None,
        span: sp(),
    }
}

fn loop_depth(b: &Block) -> usize {
    b.stmts
        .iter()
        .map(|s| match s {
            Stmt::While { body, .. } => 1 + loop_depth(body),
            Stmt::If {
                then_block,
                else_block,
                ..
            } => loop_depth(then_block).max(else_block.as_ref().map_or(0, loop_depth)),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Generates a whole program: `main` declares the fixed variables, an
/// 8-cell buffer, runs 2–8 generated statements, prints a digest of all
/// state, and exits 0.
pub fn gen_program(rng: &mut Pcg32) -> Program {
    let n = 2 + pick(rng, 6);
    let stmts: Vec<Stmt> = (0..n).map(|_| gen_stmt(rng)).collect();
    let mut body = Vec::new();
    for c in LOOP_COUNTERS {
        body.push(Stmt::Decl {
            ty: Type::Int,
            name: c.to_string(),
            init: None,
            span: sp(),
        });
    }
    for (i, v) in INT_VARS.iter().enumerate() {
        body.push(Stmt::Decl {
            ty: Type::Int,
            name: (*v).to_string(),
            init: Some(Expr::int(i as i64 + 1)),
            span: sp(),
        });
    }
    body.push(Stmt::Decl {
        ty: Type::Ptr,
        name: "buf".to_string(),
        init: Some(Expr::call("alloc", vec![Expr::int(BUF_LEN)])),
        span: sp(),
    });
    body.extend(stmts);
    // Digest: print all variables and the buffer contents.
    for v in INT_VARS {
        body.push(Stmt::Expr {
            expr: Expr::call("print", vec![Expr::var(v)]),
            span: sp(),
        });
    }
    // The digest loop iterates exactly BUF_LEN times over valid indices
    // by construction.
    let digest_loop = bounded_loop(
        BUF_LEN,
        Block::new(vec![Stmt::Expr {
            expr: Expr::call(
                "print",
                vec![Expr::Load {
                    ptr: Box::new(Expr::var("buf")),
                    index: Box::new(Expr::var(LOOP_COUNTERS[0])),
                    span: sp(),
                }],
            ),
            span: sp(),
        }]),
    );
    body.push(digest_loop);
    body.push(Stmt::Expr {
        expr: Expr::call("free", vec![Expr::var("buf")]),
        span: sp(),
    });
    body.push(Stmt::Return {
        value: Some(Expr::int(0)),
        span: sp(),
    });
    Program {
        globals: vec![],
        functions: vec![Function {
            name: "main".to_string(),
            params: vec![],
            ret: Some(Type::Int),
            body: Block::new(body),
            span: sp(),
        }],
    }
}

/// Convenience: the program generated by a fresh PRNG at `seed`.
pub fn program_for_seed(seed: u64) -> Program {
    gen_program(&mut Pcg32::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::{parse, pretty, resolve};

    #[test]
    fn generated_programs_resolve() {
        for seed in 0..64 {
            let p = program_for_seed(seed);
            resolve(&p).unwrap_or_else(|e| panic!("seed {seed}: must resolve: {e}"));
        }
    }

    #[test]
    fn generated_programs_round_trip() {
        for seed in 0..64 {
            let p = program_for_seed(seed);
            // One parse normalizes generator-built ASTs (the parser folds
            // `-literal` into negative literals); from then on
            // pretty∘parse must be a fixed point.
            let p1 = parse(&pretty(&p)).expect("pretty output must parse");
            let s1 = pretty(&p1);
            let p2 = parse(&s1).expect("normalized output must parse");
            assert_eq!(s1, pretty(&p2), "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(pretty(&program_for_seed(7)), pretty(&program_for_seed(7)));
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let distinct: std::collections::HashSet<String> =
            (0..16).map(|s| pretty(&program_for_seed(s))).collect();
        assert!(
            distinct.len() > 8,
            "only {} distinct programs",
            distinct.len()
        );
    }
}
