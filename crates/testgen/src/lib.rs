//! Seeded random generators of *well-formed, crash-free, terminating*
//! MiniC programs, for differential testing:
//!
//! * `parse(pretty(p))` must be structurally identical to `p`;
//! * the VM must produce identical output for a program and its
//!   pretty-printed/re-parsed form;
//! * instrumented and sampling-transformed builds must produce the same
//!   output as the baseline;
//! * name-map and slot-resolved interpretation must agree exactly.
//!
//! Generation is driven by the repository's own [`Pcg32`] PRNG, so every
//! test case is reproducible from a seed with no external dependencies.
//! Generated programs use a fixed set of int variables (`v0..`), a fixed
//! pointer variable `buf` over a block with all indices reduced modulo its
//! length, division only by nonzero constants, and loops in the shape
//! `i = 0; while (i < K) { …; i = i + 1; }` with a bounded `K` — so every
//! generated program terminates successfully by construction.
//!
//! All generation knobs live in [`GenConfig`]; [`GenConfig::default`]
//! reproduces the historical constants byte-for-byte, so seeds keep their
//! meaning, while consumers such as the fault-injection corpus can dial
//! program size up or wire the first few variables to scripted input.

#![forbid(unsafe_code)]

use cbi_minic::ast::*;
use cbi_minic::Span;
use cbi_sampler::Pcg32;

/// Generation knobs.  The defaults reproduce the generator's historical
/// hard-coded constants exactly: the same seed yields the same program
/// under `GenConfig::default()` as it did before the knobs existed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Maximum recursion depth for arithmetic expressions.
    pub expr_depth: usize,
    /// Maximum recursion depth for boolean conditions.
    pub cond_depth: usize,
    /// Maximum recursion depth for compound statements (each extra level
    /// allows one more tier of `if`/`while` nesting and needs one more
    /// loop counter).
    pub stmt_depth: usize,
    /// Number of scalar int variables `v0..v{n-1}`, initialized `1..=n`.
    pub int_vars: usize,
    /// Cells in the single heap buffer `buf`; all generated indices are
    /// reduced modulo this length.
    pub buf_len: i64,
    /// Exclusive upper bound on generated loop trip counts: bounds are
    /// uniform in `1..loop_bound`.
    pub loop_bound: i64,
    /// The first `input_vars` int variables are re-initialized from
    /// scripted input when present (`if (has_input() != 0) v = read();`),
    /// so trials can perturb program state.  `0` (the default) consumes
    /// no input and leaves the historical output untouched.
    pub input_vars: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            expr_depth: 3,
            cond_depth: 2,
            stmt_depth: 2,
            int_vars: 4,
            buf_len: 8,
            loop_bound: 6,
            input_vars: 0,
        }
    }
}

impl GenConfig {
    /// Name of the `i`-th scalar variable.
    fn var_name(&self, i: usize) -> String {
        format!("v{i}")
    }

    /// Name of the loop counter used at nesting depth `d`.
    fn loop_counter(&self, d: usize) -> String {
        format!("lc{d}")
    }

    /// Number of loop counters the configuration needs: one per possible
    /// nesting level plus the digest loop.
    fn loop_counters(&self) -> usize {
        self.stmt_depth + 1
    }
}

fn sp() -> Span {
    Span::new(1, 1)
}

fn pick(rng: &mut Pcg32, n: usize) -> usize {
    rng.below(n as u64) as usize
}

/// Integer uniform in `lo..hi` (half-open, like the proptest ranges the
/// generator grew out of).
fn int_in(rng: &mut Pcg32, lo: i64, hi: i64) -> i64 {
    lo + rng.below((hi - lo) as u64) as i64
}

/// Generates an arithmetic expression over the configured int variables,
/// with the default knobs.
pub fn gen_int_expr(rng: &mut Pcg32) -> Expr {
    gen_int_expr_with(rng, &GenConfig::default())
}

/// Generates an arithmetic expression over the configured int variables.
///
/// Division and modulus only ever use nonzero constant divisors, so
/// generated expressions cannot trap.
pub fn gen_int_expr_with(rng: &mut Pcg32, cfg: &GenConfig) -> Expr {
    gen_int_expr_at(rng, cfg, cfg.expr_depth)
}

fn gen_leaf(rng: &mut Pcg32, cfg: &GenConfig) -> Expr {
    if rng.below(2) == 0 {
        Expr::Int {
            value: int_in(rng, -50, 50),
            span: sp(),
        }
    } else {
        Expr::Var {
            name: cfg.var_name(pick(rng, cfg.int_vars)),
            span: sp(),
        }
    }
}

fn gen_int_expr_at(rng: &mut Pcg32, cfg: &GenConfig, depth: usize) -> Expr {
    // Bias toward leaves as in the proptest recursive strategy: half of
    // all draws stop early even when depth remains.
    if depth == 0 || rng.below(2) == 0 {
        return gen_leaf(rng, cfg);
    }
    match rng.below(5) {
        0 => {
            let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][pick(rng, 3)];
            Expr::Binary {
                op,
                lhs: Box::new(gen_int_expr_at(rng, cfg, depth - 1)),
                rhs: Box::new(gen_int_expr_at(rng, cfg, depth - 1)),
                span: sp(),
            }
        }
        1 => Expr::Binary {
            op: BinOp::Div,
            lhs: Box::new(gen_int_expr_at(rng, cfg, depth - 1)),
            rhs: Box::new(Expr::Int {
                value: int_in(rng, 1, 9),
                span: sp(),
            }),
            span: sp(),
        },
        2 => Expr::Binary {
            op: BinOp::Mod,
            lhs: Box::new(gen_int_expr_at(rng, cfg, depth - 1)),
            rhs: Box::new(Expr::Int {
                value: int_in(rng, 1, 9),
                span: sp(),
            }),
            span: sp(),
        },
        3 => Expr::Unary {
            op: UnOp::Neg,
            expr: Box::new(gen_int_expr_at(rng, cfg, depth - 1)),
            span: sp(),
        },
        // A bounded heap read: buf[(e % L + L) % L].
        _ => Expr::Load {
            ptr: Box::new(Expr::var("buf")),
            index: Box::new(bounded_index_with(
                gen_int_expr_at(rng, cfg, depth - 1),
                cfg.buf_len,
            )),
            span: sp(),
        },
    }
}

fn gen_cmp_op(rng: &mut Pcg32) -> BinOp {
    [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ][pick(rng, 6)]
}

/// `(e % L + L) % L` — always a valid index into an `L`-cell buffer.
pub fn bounded_index_with(e: Expr, len: i64) -> Expr {
    let m = Expr::binary(BinOp::Mod, e, Expr::int(len));
    let plus = Expr::binary(BinOp::Add, m, Expr::int(len));
    Expr::binary(BinOp::Mod, plus, Expr::int(len))
}

/// Generates a boolean condition with the default knobs.
pub fn gen_cond(rng: &mut Pcg32) -> Expr {
    gen_cond_with(rng, &GenConfig::default())
}

/// Generates a boolean condition (comparisons and their combinations).
pub fn gen_cond_with(rng: &mut Pcg32, cfg: &GenConfig) -> Expr {
    gen_cond_at(rng, cfg, cfg.cond_depth)
}

fn gen_cond_at(rng: &mut Pcg32, cfg: &GenConfig, depth: usize) -> Expr {
    if depth == 0 || rng.below(2) == 0 {
        return Expr::Binary {
            op: gen_cmp_op(rng),
            lhs: Box::new(gen_int_expr_with(rng, cfg)),
            rhs: Box::new(gen_int_expr_with(rng, cfg)),
            span: sp(),
        };
    }
    match rng.below(3) {
        0 => Expr::Binary {
            op: BinOp::And,
            lhs: Box::new(gen_cond_at(rng, cfg, depth - 1)),
            rhs: Box::new(gen_cond_at(rng, cfg, depth - 1)),
            span: sp(),
        },
        1 => Expr::Binary {
            op: BinOp::Or,
            lhs: Box::new(gen_cond_at(rng, cfg, depth - 1)),
            rhs: Box::new(gen_cond_at(rng, cfg, depth - 1)),
            span: sp(),
        },
        _ => Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(gen_cond_at(rng, cfg, depth - 1)),
            span: sp(),
        },
    }
}

/// Generates a statement with the default knobs.
pub fn gen_stmt(rng: &mut Pcg32) -> Stmt {
    gen_stmt_with(rng, &GenConfig::default())
}

/// Generates a statement (assignment, store, check, print, if, bounded
/// loop).
pub fn gen_stmt_with(rng: &mut Pcg32, cfg: &GenConfig) -> Stmt {
    gen_stmt_at(rng, cfg, cfg.stmt_depth)
}

fn gen_simple_stmt(rng: &mut Pcg32, cfg: &GenConfig) -> Stmt {
    match rng.below(4) {
        0 => Stmt::Assign {
            name: cfg.var_name(pick(rng, cfg.int_vars)),
            value: gen_int_expr_with(rng, cfg),
            span: sp(),
        },
        1 => Stmt::Store {
            target: "buf".to_string(),
            index: bounded_index_with(gen_int_expr_with(rng, cfg), cfg.buf_len),
            value: gen_int_expr_with(rng, cfg),
            span: sp(),
        },
        2 => Stmt::Expr {
            expr: Expr::call("print", vec![gen_int_expr_with(rng, cfg)]),
            span: sp(),
        },
        // check(cond || 1) — a user assertion that can never fail, so
        // instrumented builds stay crash-free.
        _ => Stmt::Check {
            cond: Expr::binary(BinOp::Or, gen_cond_with(rng, cfg), Expr::int(1)),
            span: sp(),
        },
    }
}

fn gen_block(rng: &mut Pcg32, cfg: &GenConfig, depth: usize) -> Block {
    let n = 1 + pick(rng, 3);
    Block::new((0..n).map(|_| gen_stmt_at(rng, cfg, depth)).collect())
}

fn gen_stmt_at(rng: &mut Pcg32, cfg: &GenConfig, depth: usize) -> Stmt {
    if depth == 0 || rng.below(2) == 0 {
        return gen_simple_stmt(rng, cfg);
    }
    if rng.below(2) == 0 {
        let cond = gen_cond_with(rng, cfg);
        let then_block = gen_block(rng, cfg, depth - 1);
        let else_block = if rng.below(2) == 0 {
            Some(gen_block(rng, cfg, depth - 1))
        } else {
            None
        };
        Stmt::If {
            cond,
            then_block,
            else_block,
            span: sp(),
        }
    } else {
        let k = int_in(rng, 1, cfg.loop_bound);
        let body = gen_block(rng, cfg, depth - 1);
        bounded_loop(cfg, k, body)
    }
}

fn bounded_loop(cfg: &GenConfig, k: i64, body: Block) -> Stmt {
    // Nested loops reuse distinct counters by depth; generation recursion
    // depth is bounded by `stmt_depth`, and the configuration declares one
    // counter per level, so termination is structural.  Reassignment of
    // the same counter at the same depth is harmless: the loop resets it
    // to zero.
    let depth = loop_depth(&body).min(cfg.loop_counters() - 1);
    let counter = cfg.loop_counter(depth);
    let mut stmts = vec![Stmt::Assign {
        name: counter.clone(),
        value: Expr::int(0),
        span: sp(),
    }];
    let mut inner = body.stmts;
    inner.push(Stmt::Assign {
        name: counter.clone(),
        value: Expr::binary(BinOp::Add, Expr::var(&counter), Expr::int(1)),
        span: sp(),
    });
    stmts.push(Stmt::While {
        cond: Expr::binary(BinOp::Lt, Expr::var(&counter), Expr::int(k)),
        body: Block::new(inner),
        span: sp(),
    });
    Stmt::If {
        cond: Expr::int(1),
        then_block: Block::new(stmts),
        else_block: None,
        span: sp(),
    }
}

fn loop_depth(b: &Block) -> usize {
    b.stmts
        .iter()
        .map(|s| match s {
            Stmt::While { body, .. } => 1 + loop_depth(body),
            Stmt::If {
                then_block,
                else_block,
                ..
            } => loop_depth(then_block).max(else_block.as_ref().map_or(0, loop_depth)),
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Generates a whole program with the default knobs.
pub fn gen_program(rng: &mut Pcg32) -> Program {
    gen_program_with(rng, &GenConfig::default())
}

/// Generates a whole program: `main` declares the configured variables, a
/// heap buffer, optionally reads scripted input into the first few
/// variables, runs 2–8 generated statements, prints a digest of all
/// state, and exits 0.
pub fn gen_program_with(rng: &mut Pcg32, cfg: &GenConfig) -> Program {
    let n = 2 + pick(rng, 6);
    let stmts: Vec<Stmt> = (0..n).map(|_| gen_stmt_with(rng, cfg)).collect();
    let mut body = Vec::new();
    for c in 0..cfg.loop_counters() {
        body.push(Stmt::Decl {
            ty: Type::Int,
            name: cfg.loop_counter(c),
            init: None,
            span: sp(),
        });
    }
    for i in 0..cfg.int_vars {
        body.push(Stmt::Decl {
            ty: Type::Int,
            name: cfg.var_name(i),
            init: Some(Expr::int(i as i64 + 1)),
            span: sp(),
        });
    }
    body.push(Stmt::Decl {
        ty: Type::Ptr,
        name: "buf".to_string(),
        init: Some(Expr::call("alloc", vec![Expr::int(cfg.buf_len)])),
        span: sp(),
    });
    // Scripted input, if configured: trial tokens overwrite the leading
    // variables, so different inputs exercise different program states.
    // Draws nothing from the generator RNG, keeping seeds stable.
    for i in 0..cfg.input_vars.min(cfg.int_vars) {
        body.push(Stmt::If {
            cond: Expr::binary(BinOp::Ne, Expr::call("has_input", vec![]), Expr::int(0)),
            then_block: Block::new(vec![Stmt::Assign {
                name: cfg.var_name(i),
                value: Expr::call("read", vec![]),
                span: sp(),
            }]),
            else_block: None,
            span: sp(),
        });
    }
    body.extend(stmts);
    // Digest: print all variables and the buffer contents.
    for i in 0..cfg.int_vars {
        body.push(Stmt::Expr {
            expr: Expr::call("print", vec![Expr::var(cfg.var_name(i))]),
            span: sp(),
        });
    }
    // The digest loop iterates exactly buf_len times over valid indices
    // by construction.
    let digest_loop = bounded_loop(
        cfg,
        cfg.buf_len,
        Block::new(vec![Stmt::Expr {
            expr: Expr::call(
                "print",
                vec![Expr::Load {
                    ptr: Box::new(Expr::var("buf")),
                    index: Box::new(Expr::var(cfg.loop_counter(0))),
                    span: sp(),
                }],
            ),
            span: sp(),
        }]),
    );
    body.push(digest_loop);
    body.push(Stmt::Expr {
        expr: Expr::call("free", vec![Expr::var("buf")]),
        span: sp(),
    });
    body.push(Stmt::Return {
        value: Some(Expr::int(0)),
        span: sp(),
    });
    Program {
        globals: vec![],
        functions: vec![Function {
            name: "main".to_string(),
            params: vec![],
            ret: Some(Type::Int),
            body: Block::new(body),
            span: sp(),
        }],
    }
}

/// Convenience: the program generated by a fresh PRNG at `seed` with the
/// default knobs.
pub fn program_for_seed(seed: u64) -> Program {
    gen_program(&mut Pcg32::new(seed))
}

/// Convenience: the program generated by a fresh PRNG at `seed` with the
/// given knobs.
pub fn program_for_seed_with(seed: u64, cfg: &GenConfig) -> Program {
    gen_program_with(&mut Pcg32::new(seed), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_minic::{parse, pretty, resolve};

    #[test]
    fn generated_programs_resolve() {
        for seed in 0..64 {
            let p = program_for_seed(seed);
            resolve(&p).unwrap_or_else(|e| panic!("seed {seed}: must resolve: {e}"));
        }
    }

    #[test]
    fn generated_programs_round_trip() {
        for seed in 0..64 {
            let p = program_for_seed(seed);
            // One parse normalizes generator-built ASTs (the parser folds
            // `-literal` into negative literals); from then on
            // pretty∘parse must be a fixed point.
            let p1 = parse(&pretty(&p)).expect("pretty output must parse");
            let s1 = pretty(&p1);
            let p2 = parse(&s1).expect("normalized output must parse");
            assert_eq!(s1, pretty(&p2), "seed {seed}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(pretty(&program_for_seed(7)), pretty(&program_for_seed(7)));
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let distinct: std::collections::HashSet<String> =
            (0..16).map(|s| pretty(&program_for_seed(s))).collect();
        assert!(
            distinct.len() > 8,
            "only {} distinct programs",
            distinct.len()
        );
    }

    #[test]
    fn default_config_matches_legacy_constants() {
        let cfg = GenConfig::default();
        assert_eq!(
            (cfg.expr_depth, cfg.cond_depth, cfg.stmt_depth),
            (3, 2, 2),
            "depth knobs must default to the historical constants"
        );
        assert_eq!((cfg.int_vars, cfg.buf_len, cfg.loop_bound), (4, 8, 6));
        assert_eq!(cfg.input_vars, 0);
        // The explicit-config path reproduces the legacy path exactly.
        for seed in [0, 7, 23, 61] {
            assert_eq!(
                pretty(&program_for_seed(seed)),
                pretty(&program_for_seed_with(seed, &cfg)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn scaled_config_generates_bigger_programs() {
        let big = GenConfig {
            expr_depth: 4,
            stmt_depth: 3,
            int_vars: 6,
            buf_len: 16,
            ..GenConfig::default()
        };
        for seed in 0..32 {
            let p = program_for_seed_with(seed, &big);
            resolve(&p).unwrap_or_else(|e| panic!("seed {seed}: must resolve: {e}"));
        }
        let small_len: usize = (0..16).map(|s| pretty(&program_for_seed(s)).len()).sum();
        let big_len: usize = (0..16)
            .map(|s| pretty(&program_for_seed_with(s, &big)).len())
            .sum();
        assert!(
            big_len > small_len,
            "deeper knobs should yield larger programs ({big_len} <= {small_len})"
        );
    }

    #[test]
    fn input_vars_consume_scripted_input() {
        use cbi_vm::Vm;
        let cfg = GenConfig {
            input_vars: 2,
            ..GenConfig::default()
        };
        for seed in 0..16 {
            let p = program_for_seed_with(seed, &cfg);
            resolve(&p).unwrap_or_else(|e| panic!("seed {seed}: must resolve: {e}"));
            let empty = Vm::new(&p).run().unwrap();
            let fed = Vm::new(&p).with_input(vec![37, -12]).run().unwrap();
            assert!(
                empty.outcome.is_success(),
                "seed {seed}: {:?}",
                empty.outcome
            );
            assert!(fed.outcome.is_success(), "seed {seed}: {:?}", fed.outcome);
        }
        // At least one seed's digest must actually depend on the input.
        let depends = (0..16).any(|seed| {
            let p = program_for_seed_with(seed, &cfg);
            let a = Vm::new(&p).run().unwrap().output;
            let b = Vm::new(&p).with_input(vec![37, -12]).run().unwrap().output;
            a != b
        });
        assert!(depends, "input vars never influenced any digest");
    }
}
