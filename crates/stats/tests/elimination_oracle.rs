//! Differential testing of the elimination strategies against a
//! brute-force oracle that works directly on raw reports.

use cbi_reports::{Label, Report, SufficientStats};
use cbi_stats::elimination::{apply, combine, survivors, Strategy as Elim};
use proptest::prelude::*;

/// Random report sets: `sites` triples (3 counters each), sparse counts.
fn arb_reports() -> impl Strategy<Value = (Vec<Report>, Vec<(usize, usize)>)> {
    (1usize..6, 1usize..40).prop_flat_map(|(sites, runs)| {
        let counters = sites * 3;
        let report = (
            any::<bool>(),
            prop::collection::vec(0u64..3, counters),
        );
        prop::collection::vec(report, runs).prop_map(move |rows| {
            let reports = rows
                .into_iter()
                .enumerate()
                .map(|(i, (failed, counters))| {
                    Report::new(
                        i as u64,
                        if failed { Label::Failure } else { Label::Success },
                        counters,
                    )
                })
                .collect();
            let groups = (0..sites).map(|s| (s * 3, 3)).collect();
            (reports, groups)
        })
    })
}

fn oracle(reports: &[Report], groups: &[(usize, usize)], strategy: Elim) -> Vec<usize> {
    let n = reports.first().map_or(0, Report::len);
    let keep = |c: usize| -> bool {
        match strategy {
            Elim::UniversalFalsehood => reports.iter().any(|r| r.observed(c)),
            Elim::LackOfFailingExample => reports
                .iter()
                .filter(|r| r.label == Label::Failure)
                .any(|r| r.observed(c)),
            Elim::SuccessfulCounterexample => !reports
                .iter()
                .filter(|r| r.label == Label::Success)
                .any(|r| r.observed(c)),
            Elim::LackOfFailingCoverage => {
                let (base, arity) = *groups
                    .iter()
                    .find(|(b, a)| c >= *b && c < b + a)
                    .expect("counter belongs to a group");
                (base..base + arity).any(|cc| {
                    reports
                        .iter()
                        .filter(|r| r.label == Label::Failure)
                        .any(|r| r.observed(cc))
                })
            }
        }
    };
    (0..n).filter(|&c| keep(c)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn strategies_match_brute_force((reports, groups) in arb_reports()) {
        let stats: SufficientStats = reports.iter().cloned().collect();
        for strategy in [
            Elim::UniversalFalsehood,
            Elim::LackOfFailingCoverage,
            Elim::LackOfFailingExample,
            Elim::SuccessfulCounterexample,
        ] {
            let fast = survivors(&apply(&stats, strategy, &groups));
            let slow = oracle(&reports, &groups, strategy);
            prop_assert_eq!(&fast, &slow, "strategy {}", strategy);
        }
    }

    #[test]
    fn combination_is_set_intersection((reports, groups) in arb_reports()) {
        let stats: SufficientStats = reports.iter().cloned().collect();
        let uf = apply(&stats, Elim::UniversalFalsehood, &groups);
        let sc = apply(&stats, Elim::SuccessfulCounterexample, &groups);
        let both = survivors(&combine(&[uf.clone(), sc.clone()]));
        let uf_set = survivors(&uf);
        let sc_set = survivors(&sc);
        for c in &both {
            prop_assert!(uf_set.contains(c) && sc_set.contains(c));
        }
        for c in &uf_set {
            if sc_set.contains(c) {
                prop_assert!(both.contains(c));
            }
        }
    }

    /// §3.2.2 subset relations hold on arbitrary data: anything discarded
    /// by universal falsehood or lack-of-failing-coverage is also
    /// discarded by lack-of-failing-example.
    #[test]
    fn subset_relations_universal((reports, groups) in arb_reports()) {
        let stats: SufficientStats = reports.iter().cloned().collect();
        let uf = apply(&stats, Elim::UniversalFalsehood, &groups);
        let cov = apply(&stats, Elim::LackOfFailingCoverage, &groups);
        let ex = apply(&stats, Elim::LackOfFailingExample, &groups);
        for c in 0..uf.len() {
            if ex[c] {
                prop_assert!(uf[c], "counter {c}: ex ⊆ uf");
                prop_assert!(cov[c], "counter {c}: ex ⊆ cov");
            }
        }
    }
}
