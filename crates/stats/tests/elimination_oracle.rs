//! Differential testing of the elimination strategies against a
//! brute-force oracle that works directly on raw reports.

use cbi_reports::{Label, Report, SufficientStats};
use cbi_sampler::Pcg32;
use cbi_stats::elimination::{apply, combine, survivors, Strategy as Elim};

/// Random report sets: `sites` triples (3 counters each), sparse counts.
fn random_reports(rng: &mut Pcg32) -> (Vec<Report>, Vec<(usize, usize)>) {
    let sites = 1 + rng.below(5) as usize;
    let runs = 1 + rng.below(39) as usize;
    let counters = sites * 3;
    let reports = (0..runs)
        .map(|i| {
            let failed = rng.below(2) == 1;
            let row: Vec<u64> = (0..counters).map(|_| rng.below(3)).collect();
            Report::new(
                i as u64,
                if failed {
                    Label::Failure
                } else {
                    Label::Success
                },
                row,
            )
        })
        .collect();
    let groups = (0..sites).map(|s| (s * 3, 3)).collect();
    (reports, groups)
}

fn oracle(reports: &[Report], groups: &[(usize, usize)], strategy: Elim) -> Vec<usize> {
    let n = reports.first().map_or(0, Report::len);
    let keep = |c: usize| -> bool {
        match strategy {
            Elim::UniversalFalsehood => reports.iter().any(|r| r.observed(c)),
            Elim::LackOfFailingExample => reports
                .iter()
                .filter(|r| r.label == Label::Failure)
                .any(|r| r.observed(c)),
            Elim::SuccessfulCounterexample => !reports
                .iter()
                .filter(|r| r.label == Label::Success)
                .any(|r| r.observed(c)),
            Elim::LackOfFailingCoverage => {
                let (base, arity) = *groups
                    .iter()
                    .find(|(b, a)| c >= *b && c < b + a)
                    .expect("counter belongs to a group");
                (base..base + arity).any(|cc| {
                    reports
                        .iter()
                        .filter(|r| r.label == Label::Failure)
                        .any(|r| r.observed(cc))
                })
            }
        }
    };
    (0..n).filter(|&c| keep(c)).collect()
}

#[test]
fn strategies_match_brute_force() {
    let mut rng = Pcg32::new(0xe1a3);
    for _ in 0..256 {
        let (reports, groups) = random_reports(&mut rng);
        let stats: SufficientStats = reports.iter().cloned().collect();
        for strategy in [
            Elim::UniversalFalsehood,
            Elim::LackOfFailingCoverage,
            Elim::LackOfFailingExample,
            Elim::SuccessfulCounterexample,
        ] {
            let fast = survivors(&apply(&stats, strategy, &groups));
            let slow = oracle(&reports, &groups, strategy);
            assert_eq!(&fast, &slow, "strategy {strategy}");
        }
    }
}

#[test]
fn combination_is_set_intersection() {
    let mut rng = Pcg32::new(0xc0b1);
    for _ in 0..256 {
        let (reports, groups) = random_reports(&mut rng);
        let stats: SufficientStats = reports.iter().cloned().collect();
        let uf = apply(&stats, Elim::UniversalFalsehood, &groups);
        let sc = apply(&stats, Elim::SuccessfulCounterexample, &groups);
        let both = survivors(&combine(&[uf.clone(), sc.clone()]));
        let uf_set = survivors(&uf);
        let sc_set = survivors(&sc);
        for c in &both {
            assert!(uf_set.contains(c) && sc_set.contains(c));
        }
        for c in &uf_set {
            if sc_set.contains(c) {
                assert!(both.contains(c));
            }
        }
    }
}

/// §3.2.2 subset relations hold on arbitrary data: anything discarded
/// by universal falsehood or lack-of-failing-coverage is also discarded
/// by lack-of-failing-example.
#[test]
fn subset_relations_universal() {
    let mut rng = Pcg32::new(0x5e7a);
    for _ in 0..256 {
        let (reports, groups) = random_reports(&mut rng);
        let stats: SufficientStats = reports.iter().cloned().collect();
        let uf = apply(&stats, Elim::UniversalFalsehood, &groups);
        let cov = apply(&stats, Elim::LackOfFailingCoverage, &groups);
        let ex = apply(&stats, Elim::LackOfFailingExample, &groups);
        for c in 0..uf.len() {
            if ex[c] {
                assert!(uf[c], "counter {c}: ex ⊆ uf");
                assert!(cov[c], "counter {c}: ex ⊆ cov");
            }
        }
    }
}
