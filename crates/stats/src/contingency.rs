//! Per-predicate contingency tables extracted from sufficient statistics.
//!
//! Every coverage-based fault-localisation measure in the literature —
//! Ochiai, Tarantula, Jaccard, the paper's §3.2 Increase statistic, the
//! probabilistic measures Doric formalises — is a function of the same
//! four cells: in how many failing and successful runs a predicate was
//! observed true, against the failing and successful run totals.  All
//! four are already present in [`SufficientStats`], so a scorer never
//! needs a resident report: this module exposes the aggregates as one
//! [`Contingency`] record per counter, ready for any measure to consume.
//!
//! The `obs_*` fields additionally estimate in how many runs of each
//! class the predicate's *site* was reached (the denominator of the
//! §3.2 "Context" term).  Sufficient statistics count nonzero runs per
//! counter, not per site, so the site-level figure is reconstructed as
//! the clamped sum over the site's counters — exact whenever a run
//! observes at most one outcome of the site, an upper bound otherwise.

use cbi_reports::SufficientStats;

/// The 2×2 observation table (plus site-reach estimates) for one
/// predicate.  All fields are run counts, so every derived score can be
/// computed in integer arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Contingency {
    /// Failing runs in which the predicate was observed true.
    pub ef: u64,
    /// Successful runs in which the predicate was observed true.
    pub ep: u64,
    /// Failing runs in total.
    pub f: u64,
    /// Successful runs in total.
    pub s: u64,
    /// Failing runs in which the predicate's site was reached (clamped
    /// sum over the site's counters; exact for single-outcome runs).
    pub obs_f: u64,
    /// Successful runs in which the predicate's site was reached.
    pub obs_s: u64,
}

/// Builds one [`Contingency`] per counter from folded sufficient
/// statistics.  `groups` is the site layout as `(counter_base, arity)`
/// pairs, the same shape [`crate::elimination::apply`] consumes; any
/// counter not covered by a group falls back to its own observation
/// counts as the site-reach estimate.
pub fn contingency_tables(stats: &SufficientStats, groups: &[(usize, usize)]) -> Vec<Contingency> {
    let n = stats.counter_count();
    let f = stats.failure_runs();
    let s = stats.success_runs();
    let mut tables: Vec<Contingency> = (0..n)
        .map(|i| Contingency {
            ef: stats.nonzero_failures(i),
            ep: stats.nonzero_successes(i),
            f,
            s,
            obs_f: stats.nonzero_failures(i),
            obs_s: stats.nonzero_successes(i),
        })
        .collect();
    for &(base, arity) in groups {
        let members = base..(base + arity).min(n);
        let site_f: u64 = members
            .clone()
            .map(|i| stats.nonzero_failures(i))
            .sum::<u64>()
            .min(f);
        let site_s: u64 = members
            .clone()
            .map(|i| stats.nonzero_successes(i))
            .sum::<u64>()
            .min(s);
        for i in members {
            tables[i].obs_f = site_f;
            tables[i].obs_s = site_s;
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::{Label, Report};

    fn stats() -> SufficientStats {
        let mut s = SufficientStats::new(4);
        s.update(&Report::new(0, Label::Failure, vec![1, 0, 2, 0]));
        s.update(&Report::new(1, Label::Failure, vec![0, 1, 1, 0]));
        s.update(&Report::new(2, Label::Success, vec![0, 3, 0, 0]));
        s
    }

    #[test]
    fn per_counter_cells_match_aggregates() {
        let t = contingency_tables(&stats(), &[]);
        assert_eq!(t.len(), 4);
        assert_eq!((t[0].ef, t[0].ep, t[0].f, t[0].s), (1, 0, 2, 1));
        assert_eq!((t[1].ef, t[1].ep), (1, 1));
        assert_eq!((t[2].ef, t[2].ep), (2, 0));
        assert_eq!((t[3].ef, t[3].ep), (0, 0));
        // Without groups the site-reach estimate is the counter's own.
        assert_eq!((t[0].obs_f, t[0].obs_s), (1, 0));
    }

    #[test]
    fn site_groups_clamp_reach_to_run_totals() {
        // Counters 0 and 1 form one site: their failing-run sums (1 + 1)
        // stay within the 2 failing runs, and the shared estimate lands
        // on both members.
        let t = contingency_tables(&stats(), &[(0, 2), (2, 2)]);
        assert_eq!(t[0].obs_f, 2);
        assert_eq!(t[1].obs_f, 2);
        assert_eq!(t[0].obs_s, 1);
        // Counter 2 fires in both failing runs; counter 3 never — the
        // clamp keeps the site estimate at the failing-run total.
        assert_eq!(t[2].obs_f, 2);
        assert_eq!(t[3].obs_f, 2);
        assert_eq!(t[2].obs_s, 0);
    }

    #[test]
    fn group_past_layout_end_is_truncated() {
        let t = contingency_tables(&stats(), &[(3, 5)]);
        assert_eq!(t.len(), 4);
        assert_eq!(t[3].obs_f, 0);
    }
}
