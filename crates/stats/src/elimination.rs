//! Predicate elimination strategies for deterministic bugs (§3.2.2).
//!
//! Starting from the hypothesis that every predicate "should always be
//! false during correct execution", each strategy discards predicates the
//! observed runs disprove:
//!
//! * **universal falsehood** — discard counters zero on *all* runs;
//! * **lack of failing coverage** — discard counter *triples* whose site
//!   was never even reached in any failed run;
//! * **lack of failing example** — discard counters zero on all *failed*
//!   runs;
//! * **successful counterexample** — discard counters nonzero on *any*
//!   successful run (assumes the bug is deterministic).
//!
//! All four need only the per-class nonzero-run counts retained by
//! [`SufficientStats`], so they run without access to raw reports.

use cbi_reports::SufficientStats;
use std::fmt;

/// One of the four elimination strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Discard counters zero on all runs.
    UniversalFalsehood,
    /// Discard whole sites never observed (any counter) in failed runs.
    LackOfFailingCoverage,
    /// Discard counters zero on all failed runs.
    LackOfFailingExample,
    /// Discard counters nonzero on any successful run.
    SuccessfulCounterexample,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::UniversalFalsehood => "universal falsehood",
            Strategy::LackOfFailingCoverage => "lack of failing coverage",
            Strategy::LackOfFailingExample => "lack of failing example",
            Strategy::SuccessfulCounterexample => "successful counterexample",
        };
        f.write_str(s)
    }
}

/// A keep/discard mask over counters: `true` means the counter survives.
pub type KeepMask = Vec<bool>;

/// Applies a strategy, returning the survivor mask.
///
/// `site_groups` gives each site's `(counter_base, arity)`; it is only
/// consulted by [`Strategy::LackOfFailingCoverage`] (the paper's "triples").
pub fn apply(
    stats: &SufficientStats,
    strategy: Strategy,
    site_groups: &[(usize, usize)],
) -> KeepMask {
    let n = stats.counter_count();
    match strategy {
        Strategy::UniversalFalsehood => (0..n).map(|i| stats.ever_observed(i)).collect(),
        Strategy::LackOfFailingExample => (0..n).map(|i| stats.nonzero_failures(i) > 0).collect(),
        Strategy::SuccessfulCounterexample => {
            (0..n).map(|i| stats.nonzero_successes(i) == 0).collect()
        }
        Strategy::LackOfFailingCoverage => {
            let mut mask = vec![false; n];
            for &(base, arity) in site_groups {
                let covered = (base..base + arity).any(|i| stats.nonzero_failures(i) > 0);
                for slot in mask.iter_mut().skip(base).take(arity) {
                    *slot = covered;
                }
            }
            mask
        }
    }
}

/// Intersects masks: a counter survives only if it survives every mask.
pub fn combine(masks: &[KeepMask]) -> KeepMask {
    assert!(!masks.is_empty(), "need at least one mask");
    let n = masks[0].len();
    assert!(
        masks.iter().all(|m| m.len() == n),
        "mask lengths must agree"
    );
    (0..n).map(|i| masks.iter().all(|m| m[i])).collect()
}

/// Indices of surviving counters.
pub fn survivors(mask: &KeepMask) -> Vec<usize> {
    mask.iter()
        .enumerate()
        .filter_map(|(i, &keep)| keep.then_some(i))
        .collect()
}

/// Number of surviving counters.
pub fn survivor_count(mask: &KeepMask) -> usize {
    mask.iter().filter(|&&k| k).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_reports::{Label, Report};

    /// Six counters = two triples.  Failure profile:
    ///   c0: only in failures        (the smoking gun)
    ///   c1: in both                 (innocuous, common)
    ///   c2: never observed
    ///   c3: only in successes
    ///   c4: never observed          (site 1 untouched by failures after c5)
    ///   c5: only in failures
    fn stats() -> SufficientStats {
        let mut s = SufficientStats::new(6);
        s.update(&Report::new(0, Label::Success, vec![0, 2, 0, 1, 0, 0]));
        s.update(&Report::new(1, Label::Success, vec![0, 1, 0, 0, 0, 0]));
        s.update(&Report::new(2, Label::Failure, vec![3, 1, 0, 0, 0, 1]));
        s
    }

    const GROUPS: &[(usize, usize)] = &[(0, 3), (3, 3)];

    #[test]
    fn universal_falsehood_drops_never_observed() {
        let mask = apply(&stats(), Strategy::UniversalFalsehood, GROUPS);
        assert_eq!(mask, vec![true, true, false, true, false, true]);
    }

    #[test]
    fn lack_of_failing_example_keeps_failure_observed() {
        let mask = apply(&stats(), Strategy::LackOfFailingExample, GROUPS);
        assert_eq!(mask, vec![true, true, false, false, false, true]);
    }

    #[test]
    fn successful_counterexample_keeps_never_in_success() {
        let mask = apply(&stats(), Strategy::SuccessfulCounterexample, GROUPS);
        assert_eq!(mask, vec![true, false, true, false, true, true]);
    }

    #[test]
    fn coverage_works_on_whole_sites() {
        // Site 0 (c0-c2) reached in the failure; site 1 (c3-c5) also
        // reached (c5 nonzero) — both survive wholesale.
        let mask = apply(&stats(), Strategy::LackOfFailingCoverage, GROUPS);
        assert_eq!(mask, vec![true; 6]);

        // Remove c5's failure observation: site 1 becomes uncovered.
        let mut s = SufficientStats::new(6);
        s.update(&Report::new(0, Label::Failure, vec![1, 0, 0, 0, 0, 0]));
        let mask = apply(&s, Strategy::LackOfFailingCoverage, GROUPS);
        assert_eq!(mask, vec![true, true, true, false, false, false]);
    }

    #[test]
    fn combination_isolates_smoking_gun() {
        // universal falsehood ∧ successful counterexample = "sometimes true
        // in failures, never in successes" — the paper's winning combination.
        let s = stats();
        let uf = apply(&s, Strategy::UniversalFalsehood, GROUPS);
        let sc = apply(&s, Strategy::SuccessfulCounterexample, GROUPS);
        let both = combine(&[uf, sc]);
        assert_eq!(survivors(&both), vec![0, 5]);
        assert_eq!(survivor_count(&both), 2);
    }

    #[test]
    fn subset_relations_hold() {
        // (universal falsehood) and (lack of failing coverage) each
        // eliminate a subset of what (lack of failing example) eliminates —
        // i.e. their survivor sets are supersets of its survivors.
        let s = stats();
        let uf = apply(&s, Strategy::UniversalFalsehood, GROUPS);
        let cov = apply(&s, Strategy::LackOfFailingCoverage, GROUPS);
        let ex = apply(&s, Strategy::LackOfFailingExample, GROUPS);
        for i in 0..6 {
            assert!(!ex[i] || uf[i], "counter {i}: ex ⊆ uf violated");
            assert!(!ex[i] || cov[i], "counter {i}: ex ⊆ cov violated");
        }
    }

    #[test]
    fn nondeterministic_bug_defeats_successful_counterexample() {
        // §3.3: "if we have enough runs no predicates will satisfy
        // elimination by successful counterexample" — a predicate true in
        // both classes is discarded.
        let mut s = SufficientStats::new(1);
        s.update(&Report::new(0, Label::Failure, vec![5]));
        s.update(&Report::new(1, Label::Success, vec![2])); // got lucky
        let mask = apply(&s, Strategy::SuccessfulCounterexample, &[(0, 1)]);
        assert_eq!(survivor_count(&mask), 0);
    }

    #[test]
    #[should_panic(expected = "at least one mask")]
    fn combine_rejects_empty() {
        let _ = combine(&[]);
    }

    #[test]
    fn strategy_display() {
        assert_eq!(
            Strategy::SuccessfulCounterexample.to_string(),
            "successful counterexample"
        );
    }
}
