//! Online (streaming) training — the §5 privacy argument for regression.
//!
//! "Once the logistic regression parameters have been updated with a new
//! trace, the trace itself may be discarded.  If the analysis host is
//! compromised, an attacker cannot recover the precise details of any
//! single past trace."
//!
//! [`OnlineTrainer`] consumes one report at a time: it updates the model
//! parameters (and the running feature-scaling statistics) and retains
//! nothing else.  Feature scaling uses running min/max and variance
//! estimates rather than the batch statistics of
//! [`crate::scaling::FeatureScaler`], so early updates see slightly
//! different scales than late ones — the price of never storing traces.

use crate::logistic::{sigmoid, LogisticModel};

/// Streaming trainer for the crash-prediction model.
#[derive(Debug, Clone)]
pub struct OnlineTrainer {
    weights: Vec<f64>,
    bias: f64,
    learning_rate: f64,
    lambda: f64,
    seen: u64,
    // Running scaling state.
    mins: Vec<f64>,
    maxs: Vec<f64>,
    sums: Vec<f64>,
    sq_sums: Vec<f64>,
    // Cumulative-penalty bookkeeping.
    u: f64,
    q: Vec<f64>,
}

impl OnlineTrainer {
    /// Creates a trainer for reports with `features` counters.
    pub fn new(features: usize, learning_rate: f64, lambda: f64) -> Self {
        OnlineTrainer {
            weights: vec![0.0; features],
            bias: 0.0,
            learning_rate,
            lambda,
            seen: 0,
            mins: vec![f64::INFINITY; features],
            maxs: vec![f64::NEG_INFINITY; features],
            sums: vec![0.0; features],
            sq_sums: vec![0.0; features],
            u: 0.0,
            q: vec![0.0; features],
        }
    }

    /// Number of reports folded in so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Number of features.
    pub fn feature_count(&self) -> usize {
        self.weights.len()
    }

    /// Folds in one run: raw counter values plus the failure flag.  The
    /// caller may discard the counters immediately afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `counters` has the wrong length.
    pub fn update(&mut self, counters: &[u64], failed: bool) {
        assert_eq!(
            counters.len(),
            self.feature_count(),
            "feature count mismatch"
        );
        self.seen += 1;
        let n = self.seen as f64;

        // Update running scale statistics, then scale this row with them.
        let mut row = vec![0.0; counters.len()];
        for (j, &c) in counters.iter().enumerate() {
            let v = c as f64;
            self.mins[j] = self.mins[j].min(v);
            self.maxs[j] = self.maxs[j].max(v);
            let range = (self.maxs[j] - self.mins[j]).max(1.0);
            let unit = (v - self.mins[j]) / range;
            self.sums[j] += unit;
            self.sq_sums[j] += unit * unit;
            let mean = self.sums[j] / n;
            let var = (self.sq_sums[j] / n - mean * mean).max(0.0);
            let sd = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
            row[j] = unit / sd;
        }

        let y = if failed { 1.0 } else { 0.0 };
        let z = self.bias + dot(&self.weights, &row);
        let err = y - sigmoid(z);
        self.bias += self.learning_rate * err;
        self.u += self.learning_rate * self.lambda;
        for ((w, &x), q) in self.weights.iter_mut().zip(&row).zip(self.q.iter_mut()) {
            if x != 0.0 {
                *w += self.learning_rate * err * x;
            }
            let before = *w;
            if before > 0.0 {
                *w = (before - (self.u + *q)).max(0.0);
            } else if before < 0.0 {
                *w = (before + (self.u - *q)).min(0.0);
            }
            *q += *w - before;
        }
    }

    /// A snapshot of the current model.
    pub fn model(&self) -> LogisticModel {
        LogisticModel {
            bias: self.bias,
            weights: self.weights.clone(),
        }
    }
}

fn dot(w: &[f64], x: &[f64]) -> f64 {
    w.iter().zip(x).map(|(a, b)| a * b).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbi_sampler::Pcg32;

    /// Stream of runs where feature 1 predicts failure.
    fn stream(n: usize, seed: u64) -> Vec<(Vec<u64>, bool)> {
        let mut rng = Pcg32::new(seed);
        (0..n)
            .map(|_| {
                let crash = rng.next_f64() < 0.3;
                let counters: Vec<u64> = (0..5)
                    .map(|j| {
                        if j == 1 && crash {
                            6 + rng.below(6)
                        } else {
                            rng.below(3)
                        }
                    })
                    .collect();
                (counters, crash)
            })
            .collect()
    }

    #[test]
    fn online_training_finds_the_signal() {
        let mut t = OnlineTrainer::new(5, 0.05, 0.02);
        // Stream three epochs' worth of fresh runs, discarding each.
        for seed in 0..3 {
            for (counters, failed) in stream(2000, seed) {
                t.update(&counters, failed);
            }
        }
        let model = t.model();
        assert_eq!(
            model.ranked_features()[0],
            1,
            "weights: {:?}",
            model.weights
        );
        assert!(model.weights[1] > 0.0);
        assert_eq!(t.seen(), 6000);
    }

    #[test]
    fn online_model_predicts_held_out_runs() {
        let mut t = OnlineTrainer::new(5, 0.05, 0.02);
        for (counters, failed) in stream(4000, 9) {
            t.update(&counters, failed);
        }
        let model = t.model();
        // Score on a fresh stream, scaling roughly like the trainer does.
        let mut correct = 0;
        let test = stream(1000, 99);
        for (counters, failed) in &test {
            let row: Vec<f64> = counters.iter().map(|&c| c as f64 / 4.0).collect();
            if model.classify(&row) == *failed {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.8, "online accuracy {acc}");
    }

    #[test]
    fn trainer_retains_no_traces() {
        // The trainer's entire state is parameter vectors of fixed size —
        // independent of how many runs were folded in.
        let mut t = OnlineTrainer::new(5, 0.05, 0.02);
        let before = std::mem::size_of_val(&t)
            + t.weights.capacity() * 8
            + t.q.capacity() * 8
            + t.mins.capacity() * 8 * 4;
        for (counters, failed) in stream(500, 3) {
            t.update(&counters, failed);
        }
        let after = std::mem::size_of_val(&t)
            + t.weights.capacity() * 8
            + t.q.capacity() * 8
            + t.mins.capacity() * 8 * 4;
        assert_eq!(before, after, "state must not grow with the stream");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_width_panics() {
        let mut t = OnlineTrainer::new(3, 0.1, 0.1);
        t.update(&[1, 2], false);
    }
}
